#!/usr/bin/env bash
# Tier-1 verification in one command: formatting, lints, the full test
# suite, and a small-scale smoke run of both benchmark binaries (which
# exercises dataset generation, both execution paths, and the JSON
# writers end to end).
#
# Usage: scripts/check.sh [--no-bench]
#
# The bench smoke runs at --scale 64 (seconds, not minutes). The benches
# overwrite BENCH_eval.json / BENCH_frames.json with small-scale numbers,
# so the script snapshots the working-tree versions first and restores
# them afterwards — uncommitted full-scale results survive the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
if [[ "${1:-}" == "--no-bench" ]]; then
    run_bench=0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo test"
cargo test -q

# Thread-count invariance: the whole suite again with the work-stealing
# pool on. Any test whose result, work count, or error type depends on
# the number of engine threads is a determinism-contract violation and
# fails here.
echo "==> cargo test (RDFFRAMES_THREADS=4)"
RDFFRAMES_THREADS=4 cargo test -q

# Batch-size invariance: the whole suite again with a tiny ambient cursor
# batch (7 rows), so every embedded execution streams hundreds of batches
# through the pull-based pipeline instead of a handful. Any test whose
# result or work count depends on the batch size fails here. (Suites that
# must control batching — e.g. the parallel-gate assertions — pin their
# own batch size and are unaffected.)
echo "==> cargo test (RDFFRAMES_BATCH_ROWS=7)"
RDFFRAMES_BATCH_ROWS=7 cargo test -q

# Budget-meter arithmetic is saturating by contract; run the enforcement
# suite under the dev profile (debug assertions ON, so any overflow in
# meter arithmetic aborts instead of wrapping). `cargo test -q` above
# already covers this — the explicit step keeps the overflow coverage
# from silently vanishing if the main run ever moves to --release.
echo "==> budget enforcement (debug assertions on)"
cargo test -q -p sparql-engine --test budget_enforcement

# Fixed-seed chaos smoke: the paper workload through a fault-injecting
# endpoint — retried runs must be byte-identical, give-ups typed, partial
# results whole-chunk prefixes.
echo "==> chaos smoke (fixed seed)"
cargo test -q -p bench --test chaos_suite
cargo test -q -p rdfframes-core --test chaos_retry --test corrupt_wire

# Crash-recovery smoke: the paper workload (scale 64) committed through
# the durable store, crashed at fixed fault points, recovered, and
# checked for full Q1–Q19 result/row-scan parity against an in-memory
# oracle — plus the snapshot codec's round-trip proptests (fixed seeds).
echo "==> crash-recovery smoke (fixed seed, scale 64)"
cargo test -q -p bench --test crash_recovery scale_64_smoke_with_full_query_parity
cargo test -q -p rdf-model --test persist_roundtrip
cargo test -q -p rdfframes-core --test restart_semantics

# Serving-resilience smoke: the same workload (scale 64) through the
# durable serving layer — crash points swept across the byte timeline
# while epochs publish, recovery landing on the committed epoch with full
# Q1–Q19 parity; plus the overload contract with deterministic
# shed-vs-accepted counts (saturation pinned via governor permits, no
# timing involved).
echo "==> serving-resilience smoke (crash-while-serving, scale 64 + overload)"
cargo test -q -p bench --test serving_resilience scale_64_crash_while_serving_smoke_with_query_parity
cargo test -q -p bench --test serving_resilience overload_sheds_typed_retryable_and_accepted_results_are_unaffected

if [[ "$run_bench" == 1 ]]; then
    snapshot=$(mktemp -d)
    trap 'rm -rf "$snapshot"' EXIT
    cp BENCH_eval.json BENCH_frames.json BENCH_concurrent.json "$snapshot"/ 2>/dev/null || true
    echo "==> eval_bench smoke (--scale 64)"
    cargo run --release -p bench --bin eval_bench -- --scale 64
    echo "==> frame_bench smoke (--scale 64)"
    cargo run --release -p bench --bin frame_bench -- --scale 64
    echo "==> concurrent_bench smoke (--scale 64)"
    cargo run --release -p bench --bin concurrent_bench -- --scale 64
    # Restore the pre-run results files (working tree, not HEAD — do not
    # clobber uncommitted full-scale measurements).
    cp "$snapshot"/BENCH_eval.json "$snapshot"/BENCH_frames.json \
       "$snapshot"/BENCH_concurrent.json . 2>/dev/null || true
fi

echo "==> all checks passed"
