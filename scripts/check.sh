#!/usr/bin/env bash
# Tier-1 verification in one command: formatting, lints, the full test
# suite, and a small-scale smoke run of both benchmark binaries (which
# exercises dataset generation, both execution paths, and the JSON
# writers end to end).
#
# Usage: scripts/check.sh [--no-bench]
#
# The bench smoke runs at --scale 64 (seconds, not minutes). The benches
# overwrite BENCH_eval.json / BENCH_frames.json with small-scale numbers,
# so the script snapshots the working-tree versions first and restores
# them afterwards — uncommitted full-scale results survive the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
if [[ "${1:-}" == "--no-bench" ]]; then
    run_bench=0
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo test"
cargo test -q

if [[ "$run_bench" == 1 ]]; then
    snapshot=$(mktemp -d)
    trap 'rm -rf "$snapshot"' EXIT
    cp BENCH_eval.json BENCH_frames.json "$snapshot"/ 2>/dev/null || true
    echo "==> eval_bench smoke (--scale 64)"
    cargo run --release -p bench --bin eval_bench -- --scale 64
    echo "==> frame_bench smoke (--scale 64)"
    cargo run --release -p bench --bin frame_bench -- --scale 64
    # Restore the pre-run results files (working tree, not HEAD — do not
    # clobber uncommitted full-scale measurements).
    cp "$snapshot"/BENCH_eval.json "$snapshot"/BENCH_frames.json . 2>/dev/null || true
fi

echo "==> all checks passed"
