//! End-to-end tests for the exploration operators (paper Section 3.2 and
//! the keyword-search future work of Section 7).

use std::sync::Arc;

use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
use rdfframes::df::Cell;
use rdfframes::rdf::Dataset;
use rdfframes::{InProcessEndpoint, KnowledgeGraph};

fn setup() -> (InProcessEndpoint, KnowledgeGraph) {
    let mut ds = Dataset::new();
    ds.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig::tiny()),
    );
    (
        InProcessEndpoint::new(Arc::new(ds)),
        KnowledgeGraph::new("http://dbpedia.org")
            .with_prefix("dbpp", "http://dbpedia.org/property/")
            .with_prefix("dbpr", "http://dbpedia.org/resource/"),
    )
}

#[test]
fn classes_and_frequencies_finds_every_class() {
    let (endpoint, graph) = setup();
    let df = graph.classes_and_frequencies().execute(&endpoint).unwrap();
    let classes: Vec<String> = df.column("class").unwrap().map(|c| c.to_string()).collect();
    for expected in [
        "Actor",
        "Film",
        "BasketballPlayer",
        "BasketballTeam",
        "Athlete",
        "Book",
        "Writer",
    ] {
        assert!(
            classes.iter().any(|c| c.contains(expected)),
            "missing class {expected}: {classes:?}"
        );
    }
    // Sorted by descending frequency.
    let freqs: Vec<i64> = df
        .column("frequency")
        .unwrap()
        .map(|c| c.as_i64().unwrap())
        .collect();
    assert!(freqs.windows(2).all(|w| w[0] >= w[1]), "{freqs:?}");
}

#[test]
fn predicates_and_frequencies_counts_triples() {
    let (endpoint, graph) = setup();
    let df = graph
        .predicates_and_frequencies()
        .execute(&endpoint)
        .unwrap();
    assert!(df.len() > 10, "expected many predicates, got {}", df.len());
    let total: i64 = df
        .column("frequency")
        .unwrap()
        .map(|c| c.as_i64().unwrap())
        .sum();
    // Sum of per-predicate counts = graph size.
    let mut ds2 = Dataset::new();
    ds2.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig::tiny()),
    );
    assert_eq!(
        total as usize,
        ds2.graph("http://dbpedia.org").unwrap().len()
    );
}

#[test]
fn search_by_label_matches_keyword_case_insensitively() {
    let (endpoint, graph) = setup();
    // Movie titles are built from a fixed word list incl. "query".
    let df = graph.search_by_label("QUERY").execute(&endpoint).unwrap();
    assert!(!df.is_empty(), "no labels matched");
    for row in df.rows() {
        let label = row[df.column_index("label").unwrap()]
            .as_str()
            .unwrap()
            .to_lowercase();
        assert!(label.contains("query"), "{label}");
    }
}

#[test]
fn class_predicates_profiles_a_class() {
    let (endpoint, graph) = setup();
    let df = graph
        .class_predicates("dbpr:BasketballPlayer")
        .execute(&endpoint)
        .unwrap();
    let preds: Vec<String> = df
        .column("predicate")
        .unwrap()
        .map(|c| c.to_string())
        .collect();
    for expected in ["team", "nationality", "birthPlace", "birthDate"] {
        assert!(
            preds.iter().any(|p| p.contains(expected)),
            "missing predicate {expected}: {preds:?}"
        );
    }
    // Every player has exactly one team ⇒ the team predicate's frequency
    // equals the class size.
    let team_freq = df
        .rows()
        .iter()
        .find(|r| r[0].to_string().contains("property/team"))
        .and_then(|r| r[1].as_i64())
        .unwrap();
    let players = graph
        .entities("dbpr:BasketballPlayer", "player")
        .execute(&endpoint)
        .unwrap();
    assert_eq!(team_freq as usize, players.len());
}

#[test]
fn describe_summarizes_prepared_dataframe() {
    let (endpoint, graph) = setup();
    let df = graph
        .feature_domain_range("dbpp:starring", "movie", "actor")
        .expand_optional("movie", "<http://dbpedia.org/ontology/genre>", "genre")
        .execute(&endpoint)
        .unwrap();
    let summary = rdfframes::df::describe(&df);
    assert_eq!(summary.len(), 3);
    let genre = summary.iter().find(|s| s.name == "genre").unwrap();
    assert!(genre.nulls > 0, "genre should be sparse/optional");
    assert!(genre.count > 0);
    let movie = summary.iter().find(|s| s.name == "movie").unwrap();
    assert_eq!(movie.nulls, 0);
    // Everything in the movie column is a URI cell.
    assert!(matches!(movie.min, Some(Cell::Uri(_))));
}
