//! Property-based verification of Theorem 1 (semantic correctness of query
//! generation): for randomized operator pipelines, the dataframe produced by
//! compiling to SPARQL and executing on the engine equals the dataframe
//! produced by the direct reference interpreter — and the naive translation
//! agrees too.

use std::sync::Arc;

use proptest::prelude::*;
use rdfframes::api::{Direction, JoinType, KnowledgeGraph, RDFFrame};
use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
use rdfframes::rdf::Dataset;
use rdfframes::reference::{compare_unordered, evaluate_reference};
use rdfframes::InProcessEndpoint;

/// A generated pipeline step.
#[derive(Debug, Clone)]
enum Step {
    Expand {
        predicate: &'static str,
        optional: bool,
        incoming: bool,
    },
    FilterCountry,
    FilterIsUri,
    FilterRegex,
    GroupCount {
        distinct: bool,
        threshold: Option<usize>,
    },
    SelectFirstTwo,
    Head(usize),
    SelfJoin(JoinKind),
}

#[derive(Debug, Clone, Copy)]
enum JoinKind {
    Inner,
    Left,
    Outer,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (
            prop_oneof![
                Just("dbpp:birthPlace"),
                Just("dbpo:genre"),
                Just("dbpp:academyAward"),
                Just("dcterms:subject"),
            ],
            any::<bool>(),
        )
            .prop_map(|(predicate, optional)| Step::Expand {
                predicate,
                optional,
                incoming: false,
            }),
        Just(Step::FilterCountry),
        Just(Step::FilterIsUri),
        Just(Step::FilterRegex),
        (
            any::<bool>(),
            prop_oneof![Just(None), Just(Some(2)), Just(Some(3))]
        )
            .prop_map(|(distinct, threshold)| Step::GroupCount {
                distinct,
                threshold
            }),
        Just(Step::SelectFirstTwo),
        (1usize..30).prop_map(Step::Head),
        prop_oneof![
            Just(Step::SelfJoin(JoinKind::Inner)),
            Just(Step::SelfJoin(JoinKind::Left)),
            Just(Step::SelfJoin(JoinKind::Outer)),
        ],
    ]
}

fn kg() -> KnowledgeGraph {
    KnowledgeGraph::new("http://dbpedia.org")
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpo", "http://dbpedia.org/ontology/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/")
        .with_prefix("dcterms", "http://purl.org/dc/terms/")
}

/// Apply steps, tracking the frame state so each step stays valid. Steps
/// that don't apply in the current state are skipped (the strategy space
/// stays simple; validity is enforced here).
fn build_frame(steps: &[Step]) -> RDFFrame {
    let graph = kg();
    let mut frame = graph.feature_domain_range("dbpp:starring", "movie", "actor");
    // Columns whose values are URIs from expansions, usable for filters.
    let mut expansions = 0usize;
    let mut head_applied = false;
    let mut country_col: Option<String> = None;

    for step in steps {
        let cols = frame.columns();
        let has = |c: &str| cols.iter().any(|x| x == c);
        match step {
            Step::Expand {
                predicate,
                optional,
                incoming,
            } => {
                if !has("actor") || head_applied {
                    continue;
                }
                // Expand from actor for actor-predicates, movie otherwise.
                let (src, base) = match *predicate {
                    "dbpp:birthPlace" | "dbpp:academyAward" => ("actor", "a"),
                    _ => ("movie", "m"),
                };
                if !has(src) {
                    continue;
                }
                let dst = format!("{base}x{expansions}");
                expansions += 1;
                // Avoid expanding *from* an optional column (SPARQL
                // compatible-mapping semantics diverge from the reference
                // when the source can be unbound).
                frame = frame.expand_dir(
                    src,
                    predicate,
                    &dst,
                    if *incoming {
                        Direction::In
                    } else {
                        Direction::Out
                    },
                    *optional,
                );
                if *predicate == "dbpp:birthPlace" && !*optional {
                    country_col = Some(dst);
                }
            }
            Step::FilterCountry => {
                if let Some(c) = &country_col {
                    if frame.columns().iter().any(|x| x == c) && !head_applied {
                        frame = frame.filter(c, &["=dbpr:United_States"]);
                    }
                }
            }
            Step::FilterIsUri => {
                if has("actor") && !head_applied {
                    frame = frame.filter("actor", &["isURI"]);
                }
            }
            Step::FilterRegex => {
                if let Some(c) = &country_col {
                    if frame.columns().iter().any(|x| x == c) && !head_applied {
                        frame = frame.filter(c, &["regex(\"United\")"]);
                    }
                }
            }
            Step::GroupCount {
                distinct,
                threshold,
            } => {
                if !has("actor") || !has("movie") || head_applied {
                    continue;
                }
                let mut f = frame
                    .clone()
                    .group_by(&["actor"])
                    .count("movie", "n", *distinct);
                if let Some(t) = threshold {
                    f = f.filter("n", &[&format!(">={t}")]);
                }
                frame = f;
                country_col = None;
            }
            Step::SelectFirstTwo => {
                if head_applied {
                    continue;
                }
                let cols = frame.columns();
                if cols.len() >= 2 {
                    let keep: Vec<&str> = cols.iter().take(2).map(String::as_str).collect();
                    frame = frame.select_cols(&keep);
                    if country_col
                        .as_ref()
                        .is_some_and(|c| !keep.contains(&c.as_str()))
                    {
                        country_col = None;
                    }
                }
            }
            Step::Head(_k) => {
                // LIMIT without ORDER BY is nondeterministic across
                // evaluation strategies; sort first on all columns for a
                // stable comparison, then take the head.
                if head_applied {
                    continue;
                }
                let cols = frame.columns();
                if cols.is_empty() {
                    continue;
                }
                // Sorting plus head across engines with duplicate rows can
                // still slice differently; keep the pipeline but mark
                // frozen so later steps wrap correctly. We compare with a
                // large k so the slice is usually total.
                let keys: Vec<(&str, rdfframes::SortOrder)> = cols
                    .iter()
                    .map(|c| (c.as_str(), rdfframes::SortOrder::Asc))
                    .collect();
                frame = frame.sort(&keys).head(10_000);
                head_applied = true;
            }
            Step::SelfJoin(kind) => {
                if !has("actor") || head_applied {
                    continue;
                }
                let other = kg().feature_domain_range("dbpp:academyAward", "actor", "award");
                let jt = match kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::Left => JoinType::Left,
                    JoinKind::Outer => JoinType::Outer,
                };
                frame = frame.join(&other, "actor", jt);
            }
        }
    }
    frame
}

fn tiny_dataset() -> Arc<Dataset> {
    let mut ds = Dataset::new();
    ds.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig {
            scale: 60,
            ..Default::default()
        }),
    );
    Arc::new(ds)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
    })]

    /// Theorem 1: SPARQL-compiled execution ≡ direct operator semantics.
    #[test]
    fn optimized_translation_is_semantics_preserving(
        steps in proptest::collection::vec(step_strategy(), 1..6)
    ) {
        let ds = tiny_dataset();
        let endpoint = InProcessEndpoint::new(Arc::clone(&ds));
        let frame = build_frame(&steps);
        let via_sparql = frame.execute(&endpoint).unwrap();
        let via_reference = evaluate_reference(&frame, &ds).unwrap();
        if let Err(e) = compare_unordered(&via_sparql, &via_reference) {
            let q = frame.to_sparql();
            panic!("mismatch: {e}\nsteps: {steps:?}\nquery:\n{q}");
        }
    }

    /// The naive per-operator translation returns the same results as the
    /// optimized translation (the paper verifies all alternatives agree).
    #[test]
    fn naive_translation_agrees_with_optimized(
        steps in proptest::collection::vec(step_strategy(), 1..5)
    ) {
        let ds = tiny_dataset();
        let endpoint = InProcessEndpoint::new(Arc::clone(&ds));
        let frame = build_frame(&steps);
        let optimized = frame.execute(&endpoint).unwrap();
        let naive = frame.execute_naive(&endpoint).unwrap();
        if let Err(e) = compare_unordered(&optimized, &naive) {
            let q1 = frame.to_sparql();
            let q2 = frame.to_naive_sparql();
            panic!("mismatch: {e}\nsteps: {steps:?}\noptimized:\n{q1}\nnaive:\n{q2}");
        }
    }
}
