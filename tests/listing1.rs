//! The paper's motivating example (Listings 1 & 2): the RDFFrames code for
//! "prolific American actors and their academy awards" must produce the
//! same dataframe as the expert-written SPARQL query.

use std::sync::Arc;

use rdfframes::api::Direction;
use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
use rdfframes::rdf::Dataset;
use rdfframes::reference::compare_unordered;
use rdfframes::{Executor, InProcessEndpoint, KnowledgeGraph, RDFFrame};

fn setup() -> (InProcessEndpoint, KnowledgeGraph) {
    let mut ds = Dataset::new();
    ds.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig::tiny()),
    );
    let endpoint = InProcessEndpoint::new(Arc::new(ds));
    let graph = KnowledgeGraph::new("http://dbpedia.org")
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/");
    (endpoint, graph)
}

/// Listing 1, with the prolific threshold lowered to fit the tiny graph.
fn listing1(graph: &KnowledgeGraph, threshold: usize) -> RDFFrame {
    let movies = graph.feature_domain_range("dbpp:starring", "movie", "actor");
    let american = movies
        .expand("actor", "dbpp:birthPlace", "country")
        .filter("country", &["=dbpr:United_States"]);
    let prolific = american
        .group_by(&["actor"])
        .count("movie", "movie_count", true)
        .filter("movie_count", &[&format!(">={threshold}")]);
    prolific
        .expand_dir("actor", "dbpp:starring", "movie", Direction::In, false)
        .expand_dir("actor", "dbpp:academyAward", "award", Direction::Out, true)
}

/// Listing 2: the expert-written query (threshold parameterized).
fn listing2(threshold: usize) -> String {
    format!(
        "PREFIX dbpp: <http://dbpedia.org/property/>\n\
         PREFIX dbpr: <http://dbpedia.org/resource/>\n\
         SELECT *\n\
         FROM <http://dbpedia.org>\n\
         WHERE\n\
         {{ ?movie dbpp:starring ?actor\n\
            {{ SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)\n\
               WHERE\n\
               {{ ?movie dbpp:starring ?actor .\n\
                  ?actor dbpp:birthPlace ?actor_country\n\
                  FILTER ( ?actor_country = dbpr:United_States )\n\
               }}\n\
               GROUP BY ?actor\n\
               HAVING ( COUNT(DISTINCT ?movie) >= {threshold} )\n\
            }}\n\
            OPTIONAL\n\
            {{ ?actor dbpp:academyAward ?award }}\n\
         }}"
    )
}

#[test]
fn generated_sparql_has_the_expert_shape() {
    let (_, graph) = setup();
    let q = listing1(&graph, 50).to_sparql();
    assert!(q.contains("GROUP BY ?actor"), "{q}");
    assert!(q.contains("HAVING ( COUNT(DISTINCT ?movie) >= 50 )"), "{q}");
    assert!(q.contains("OPTIONAL"), "{q}");
    // One nested subquery for the grouped frame, none deeper.
    let nesting = q.matches("SELECT DISTINCT").count();
    assert_eq!(nesting, 1, "{q}");
}

#[test]
fn rdfframes_equals_expert_sparql() {
    let (endpoint, graph) = setup();
    let threshold = 4;
    let frame = listing1(&graph, threshold);
    let ours = frame.execute(&endpoint).unwrap();
    assert!(!ours.is_empty(), "threshold too high for the tiny graph");

    let expert = Executor::new()
        .run(&listing2(threshold), &endpoint)
        .unwrap();
    // The expert query binds ?actor_country inside the subquery only, so
    // the column sets match after projecting ours onto the expert's.
    let ours_proj = ours.select(
        &expert
            .columns()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    compare_unordered(&ours_proj, &expert).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn prolific_actors_actually_prolific() {
    let (endpoint, graph) = setup();
    let threshold = 4;
    let df = listing1(&graph, threshold).execute(&endpoint).unwrap();
    let count_idx = df.column_index("movie_count").unwrap();
    for row in df.rows() {
        let n = row[count_idx].as_i64().unwrap();
        assert!(n >= threshold as i64);
    }
    // Every returned actor is American by construction of the filter; the
    // award column is optional so some rows may be null there.
    let award_idx = df.column_index("award").unwrap();
    let with_award = df.rows().iter().filter(|r| !r[award_idx].is_null()).count();
    let without = df.len() - with_award;
    assert!(without > 0 || with_award > 0);
}
