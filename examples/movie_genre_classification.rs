//! Case study 1 (paper Section 6.1.1): preparing a movie-genre
//! classification dataset, then training a tiny one-rule classifier on it.
//!
//! The data-preparation step is exactly the paper's Listing 3: movies
//! starring American actors or prolific actors, with actor/movie names,
//! subjects, countries, and the (sparse, optional) genre. Movies with a
//! known genre become training rows; the rest are the prediction set.
//!
//! Run with: `cargo run --release --example movie_genre_classification`

use std::collections::HashMap;
use std::sync::Arc;

use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
use rdfframes::df::Cell;
use rdfframes::rdf::Dataset;
use rdfframes::{InProcessEndpoint, JoinType, KnowledgeGraph};

fn main() {
    let mut dataset = Dataset::new();
    dataset.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig::with_scale(2_000)),
    );
    let endpoint = InProcessEndpoint::new(Arc::new(dataset));

    let graph = KnowledgeGraph::new("http://dbpedia.org")
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpo", "http://dbpedia.org/ontology/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/")
        .with_prefix("dcterms", "http://purl.org/dc/terms/");

    // ---- data preparation (Listing 3) --------------------------------
    let movies = graph
        .feature_domain_range("dbpp:starring", "movie", "actor")
        .expand("actor", "dbpp:birthPlace", "actor_country")
        .expand("actor", "rdfs:label", "actor_name")
        .expand("movie", "rdfs:label", "movie_name")
        .expand("movie", "dcterms:subject", "subject")
        .expand("movie", "dbpp:country", "movie_country")
        .expand_optional("movie", "dbpo:genre", "genre")
        .cache();
    let american = movies
        .clone()
        .filter("actor_country", &["regex(\"United_States\")"]);
    let prolific = movies
        .clone()
        .group_by(&["actor"])
        .count("movie", "movie_count", true)
        .filter("movie_count", &[">=10"]);
    let dataset_frame =
        american
            .join(&prolific, "actor", JoinType::Outer)
            .join(&movies, "actor", JoinType::Inner);

    let df = dataset_frame.execute(&endpoint).expect("query failed");
    println!(
        "prepared dataframe: {} rows, columns {:?}",
        df.len(),
        df.columns()
    );

    // ---- a deliberately tiny "model": majority genre per subject ------
    // (The paper uses scikit-learn here; the preparation step above is
    // what it measures. Any model can consume the dataframe.)
    let genre_idx = df.column_index("genre").unwrap();
    let subject_idx = df.column_index("subject").unwrap();
    let labeled = df.filter_col("genre", |c| !c.is_null());
    let unlabeled = df.filter_col("genre", Cell::is_null);
    println!(
        "training rows (genre known): {}, prediction rows: {}",
        labeled.len(),
        unlabeled.len()
    );

    let mut votes: HashMap<(String, String), usize> = HashMap::new();
    for row in labeled.rows() {
        let subject = row[subject_idx].to_string();
        let genre = row[genre_idx].to_string();
        *votes.entry((subject, genre)).or_default() += 1;
    }
    let mut best: HashMap<String, (String, usize)> = HashMap::new();
    for ((subject, genre), n) in votes {
        let entry = best.entry(subject).or_insert_with(|| (genre.clone(), n));
        if n > entry.1 {
            *entry = (genre, n);
        }
    }

    // Leave-nothing-out training accuracy of the one-rule model.
    let mut correct = 0usize;
    for row in labeled.rows() {
        let subject = row[subject_idx].to_string();
        if let Some((predicted, _)) = best.get(&subject) {
            if *predicted == row[genre_idx].to_string() {
                correct += 1;
            }
        }
    }
    println!(
        "one-rule classifier: {} subjects learned, training accuracy {:.1}%",
        best.len(),
        100.0 * correct as f64 / labeled.len().max(1) as f64
    );
    let predictions = unlabeled
        .rows()
        .iter()
        .filter(|row| best.contains_key(&row[subject_idx].to_string()))
        .count();
    println!("predicted genres for {predictions} unlabeled movies");
}
