//! Case study 3 (paper Section 6.1.3): knowledge-graph embedding input.
//!
//! The embedding models the paper cites (TransE/ComplEx) train on
//! entity-to-entity triples. The one-line RDFFrames pipeline (Listing 7)
//! filters literals out in the engine and streams the result into a
//! dataframe, paginated. A miniature margin-based embedding sampler then
//! consumes it, standing in for the paper's ampligraph training run.
//!
//! Run with: `cargo run --release --example kg_embedding`

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rdfframes::datagen::{generate_dblp, DblpConfig};
use rdfframes::rdf::Dataset;
use rdfframes::{EmbeddedEndpoint, EndpointConfig, Executor, InProcessEndpoint, KnowledgeGraph};

fn main() {
    let mut dataset = Dataset::new();
    dataset.insert_graph(
        "http://dblp.l3s.de",
        generate_dblp(&DblpConfig::with_papers(10_000)),
    );
    let dataset = Arc::new(dataset);
    // A small page size to show transparent pagination on a bulky result.
    let endpoint = InProcessEndpoint::with_config(
        Arc::clone(&dataset),
        EndpointConfig {
            max_rows_per_request: 10_000,
            ..Default::default()
        },
    );

    let graph = KnowledgeGraph::new("http://dblp.l3s.de");

    // ---- the one-line data preparation (Listing 7) ---------------------
    let triples = graph.seed("?s", "?p", "?o").filter("o", &["isURI"]);
    println!("--- generated SPARQL ---\n{}", triples.to_sparql());

    let wire_start = Instant::now();
    let df = Executor::with_page_size(10_000)
        .execute(&triples, &endpoint)
        .expect("query failed");
    let wire_time = wire_start.elapsed();
    println!(
        "entity-to-entity triples: {} (fetched in {} requests, {:.1} ms over the XML wire)",
        df.len(),
        endpoint.stats().requests(),
        wire_time.as_secs_f64() * 1e3
    );

    // The same frame on the embedded path: no SPARQL text, no pagination,
    // no XML — one columnar evaluation decoded once per distinct term.
    let embedded = EmbeddedEndpoint::new(Arc::clone(&dataset));
    let embedded_start = Instant::now();
    let df_embedded = triples.execute(&embedded).expect("embedded query failed");
    let embedded_time = embedded_start.elapsed();
    assert_eq!(df, df_embedded, "both paths must agree exactly");
    println!(
        "same frame, embedded path: {} rows in {:.1} ms ({:.1}x)",
        df_embedded.len(),
        embedded_time.as_secs_f64() * 1e3,
        wire_time.as_secs_f64() / embedded_time.as_secs_f64().max(1e-9)
    );

    // ---- miniature embedding pass --------------------------------------
    // Assign each entity an id and count co-occurrences per relation — the
    // statistics a negative-sampling embedding trainer consumes first.
    let mut entity_ids: HashMap<String, usize> = HashMap::new();
    let mut relation_freq: HashMap<String, usize> = HashMap::new();
    let (si, pi, oi) = (
        df.column_index("s").unwrap(),
        df.column_index("p").unwrap(),
        df.column_index("o").unwrap(),
    );
    for row in df.rows() {
        for cell in [&row[si], &row[oi]] {
            let next_id = entity_ids.len();
            entity_ids.entry(cell.to_string()).or_insert(next_id);
        }
        *relation_freq.entry(row[pi].to_string()).or_insert(0) += 1;
    }
    println!(
        "embedding vocabulary: {} entities, {} relations",
        entity_ids.len(),
        relation_freq.len()
    );
    let mut relations: Vec<(String, usize)> = relation_freq.into_iter().collect();
    relations.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("relation frequencies:");
    for (rel, n) in relations {
        println!("  {rel:<60} {n}");
    }

    // A train/test split in the style of ampligraph's
    // train_test_split_no_unseen: hold out rows whose entities remain
    // covered by the training set.
    let test_size = (df.len() / 10).max(1);
    let test = df.head(test_size, 0);
    let train = df.head(df.len() - test_size, test_size);
    println!("split: {} train / {} test triples", train.len(), test.len());
}
