//! Quickstart: the paper's motivating example (Listing 1) end to end.
//!
//! Builds a synthetic DBpedia-like knowledge graph, stands up an in-process
//! SPARQL endpoint over it, lazily describes the "prolific American actors
//! and their academy awards" dataframe, shows the generated SPARQL, and
//! executes it.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use rdfframes::api::Direction;
use rdfframes::datagen::{generate_dbpedia, DbpediaConfig};
use rdfframes::rdf::Dataset;
use rdfframes::{InProcessEndpoint, KnowledgeGraph};

fn main() {
    // 1. A knowledge graph in an "RDF engine" (in-process here).
    let mut dataset = Dataset::new();
    dataset.insert_graph(
        "http://dbpedia.org",
        generate_dbpedia(&DbpediaConfig::with_scale(2_000)),
    );
    println!(
        "graph: {} triples",
        dataset.graph("http://dbpedia.org").unwrap().len()
    );
    let endpoint = InProcessEndpoint::new(Arc::new(dataset));

    // 2. A handle naming the graph + prefixes (no data is touched).
    let graph = KnowledgeGraph::new("http://dbpedia.org")
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/");

    // 3. The paper's Listing 1, recorded lazily. The threshold is scaled
    //    down for the synthetic graph.
    let movies = graph.feature_domain_range("dbpp:starring", "movie", "actor");
    let american = movies
        .expand("actor", "dbpp:birthPlace", "country")
        .filter("country", &["=dbpr:United_States"]);
    let prolific = american
        .group_by(&["actor"])
        .count("movie", "movie_count", true)
        .filter("movie_count", &[">=8"]);
    let result = prolific
        .expand_dir("actor", "dbpp:starring", "movie", Direction::In, false)
        .expand_dir("actor", "dbpp:academyAward", "award", Direction::Out, true);

    // 4. Inspect the single compact SPARQL query RDFFrames generated.
    println!("\n--- generated SPARQL ---\n{}", result.to_sparql());

    // 5. Execute: one query, paginated transparently, returned as a dataframe.
    let df = result.execute(&endpoint).expect("query failed");
    println!(
        "--- result: {} rows x {} columns {:?}",
        df.len(),
        df.columns().len(),
        df.columns()
    );
    for row in df.rows().iter().take(5) {
        println!(
            "  actor={} movies={} award={}",
            row[df.column_index("actor").unwrap()],
            row[df.column_index("movie_count").unwrap()],
            row[df.column_index("award").unwrap()],
        );
    }
}
