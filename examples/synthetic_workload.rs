//! Runs the full Q1–Q15 synthetic workload (paper Table 2) against the
//! synthetic dataset, printing each query's description, generated SPARQL
//! size, and result dimensions.
//!
//! Run with: `cargo run --release --example synthetic_workload [scale]`

use bench::{baselines, data, queries};

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    println!("building dataset at scale {scale}...");
    let ds = data::build_dataset(scale);
    let endpoint = data::build_endpoint(ds);

    for def in queries::all_queries() {
        let sparql = def.frame.to_sparql();
        let df = baselines::rdfframes(&def.frame, &endpoint).expect("query failed");
        println!(
            "{:<4} {:<62} | {:>4} SPARQL lines | {:>7} rows x {:>2} cols",
            def.id,
            def.description,
            sparql.lines().count(),
            df.len(),
            df.columns().len()
        );
    }
}
