//! Case study 2 (paper Section 6.1.2): active database research topics.
//!
//! Data preparation per the paper's Listing 5: titles of recent papers by
//! authors with many VLDB/SIGMOD papers. Then a small TF-based keyword
//! extraction stands in for the paper's scikit-learn SVD topic model (the
//! paper measures only the preparation step).
//!
//! Run with: `cargo run --release --example topic_modeling`

use std::collections::HashMap;
use std::sync::Arc;

use rdfframes::datagen::{generate_dblp, DblpConfig};
use rdfframes::rdf::Dataset;
use rdfframes::{InProcessEndpoint, JoinType, KnowledgeGraph};

fn main() {
    let mut dataset = Dataset::new();
    dataset.insert_graph(
        "http://dblp.l3s.de",
        generate_dblp(&DblpConfig::with_papers(20_000)),
    );
    let endpoint = InProcessEndpoint::new(Arc::new(dataset));

    let graph = KnowledgeGraph::new("http://dblp.l3s.de")
        .with_prefix("swrc", "http://swrc.ontoware.org/ontology#")
        .with_prefix("dc", "http://purl.org/dc/elements/1.1/")
        .with_prefix("dcterm", "http://purl.org/dc/terms/")
        .with_prefix("dblprc", "http://dblp.l3s.de/d2r/resource/conferences/");

    // ---- data preparation (Listing 5) ---------------------------------
    let papers = graph
        .entities("swrc:InProceedings", "paper")
        .expand("paper", "dc:creator", "author")
        .expand("paper", "dcterm:issued", "date")
        .expand("paper", "swrc:series", "conference")
        .expand("paper", "dc:title", "title")
        .cache();
    let thought_leaders = papers
        .clone()
        .filter("date", &["year>=2000"])
        .filter("conference", &["In(dblprc:vldb, dblprc:sigmod)"])
        .group_by(&["author"])
        .count("paper", "n_papers", false)
        .filter("n_papers", &[">=15"]);
    let titles = papers
        .filter("date", &["year>=2010"])
        .join(&thought_leaders, "author", JoinType::Inner)
        .select_cols(&["title"]);

    println!("--- generated SPARQL ---\n{}", titles.to_sparql());
    let df = titles.execute(&endpoint).expect("query failed");
    println!("prepared dataframe: {} titles", df.len());

    // ---- stand-in topic extraction: top TF keywords --------------------
    const STOPWORDS: &[&str] = &["a", "an", "and", "for", "of", "on", "the", "with"];
    let mut tf: HashMap<&str, usize> = HashMap::new();
    let title_idx = df.column_index("title").unwrap();
    for row in df.rows() {
        if let Some(title) = row[title_idx].as_str() {
            for word in title.split_whitespace() {
                if word.len() > 3 && !STOPWORDS.contains(&word) {
                    *tf.entry(word).or_insert(0) += 1;
                }
            }
        }
    }
    let mut ranked: Vec<(&str, usize)> = tf.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("top active-research keywords:");
    for (word, count) in ranked.iter().take(10) {
        println!("  {word:<16} {count}");
    }
}
