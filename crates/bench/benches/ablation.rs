//! Criterion benches for the ablations in DESIGN.md: engine optimizer
//! on/off, pagination chunk size, and the wire-format round trip.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data};
use rdfframes_core::{EndpointConfig, InProcessEndpoint, WireFormat};

const SCALE: usize = 600;

fn bench_optimizer(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let p = CaseParams::for_scale(SCALE);
    let frame = casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year);
    let on = data::build_endpoint(Arc::clone(&ds));
    let off = InProcessEndpoint::with_config(
        Arc::clone(&ds),
        EndpointConfig {
            optimize: false,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("ablation/optimizer");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("on", |b| {
        b.iter(|| baselines::rdfframes(&frame, &on).unwrap())
    });
    group.bench_function("off", |b| {
        b.iter(|| baselines::rdfframes(&frame, &off).unwrap())
    });
    group.finish();
}

fn bench_pagination(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let frame = casestudies::kg_embedding();
    let mut group = c.benchmark_group("ablation/pagination");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for chunk in [1_000usize, 10_000, 100_000] {
        let ep = InProcessEndpoint::with_config(
            Arc::clone(&ds),
            EndpointConfig {
                max_rows_per_request: chunk,
                ..Default::default()
            },
        );
        group.bench_function(&format!("chunk_{chunk}"), |b| {
            b.iter(|| baselines::rdfframes(&frame, &ep).unwrap())
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let frame = casestudies::kg_embedding();
    let mut group = c.benchmark_group("ablation/wire");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(1));
    for (name, wire) in [
        ("none", WireFormat::None),
        ("tsv", WireFormat::Tsv),
        ("xml", WireFormat::Xml),
    ] {
        let ep = InProcessEndpoint::with_config(
            Arc::clone(&ds),
            EndpointConfig {
                wire,
                ..Default::default()
            },
        );
        group.bench_function(name, |b| {
            b.iter(|| baselines::rdfframes(&frame, &ep).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizer, bench_pagination, bench_wire);
criterion_main!(benches);
