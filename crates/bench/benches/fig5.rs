//! Criterion bench for Figure 5: the Q1–Q15 synthetic workload, measuring
//! expert SPARQL, naive generation, and RDFFrames per query.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{baselines, data, queries};

const SCALE: usize = 600;

fn bench_workload(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let endpoint = data::build_endpoint(ds);

    for def in queries::all_queries() {
        let mut group = c.benchmark_group(format!("fig5/{}", def.id));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(1));
        group.bench_function("expert", |b| {
            b.iter(|| baselines::expert_sparql(&def.expert, &endpoint).unwrap())
        });
        group.bench_function("rdfframes", |b| {
            b.iter(|| baselines::rdfframes(&def.frame, &endpoint).unwrap())
        });
        group.bench_function("naive", |b| {
            b.iter(|| baselines::naive(&def.frame, &endpoint).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
