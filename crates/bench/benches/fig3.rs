//! Criterion bench for Figure 3: RDFFrames vs naive generation vs
//! Navigation + dataframe on the three case studies.
//!
//! Uses a small scale so `cargo bench` completes quickly; the `fig3`
//! binary runs the full-size experiment.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data};

const SCALE: usize = 600;

fn bench_case_studies(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let endpoint = data::build_endpoint(ds);
    let p = CaseParams::for_scale(SCALE);

    let studies = [
        (
            "movie_genre",
            casestudies::movie_genre_classification(p.prolific),
        ),
        (
            "topic_modeling",
            casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
        ),
        ("kg_embedding", casestudies::kg_embedding()),
    ];

    for (name, frame) in &studies {
        let mut group = c.benchmark_group(format!("fig3/{name}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(1));
        group.bench_function("rdfframes", |b| {
            b.iter(|| baselines::rdfframes(frame, &endpoint).unwrap())
        });
        group.bench_function("naive", |b| {
            b.iter(|| baselines::naive(frame, &endpoint).unwrap())
        });
        group.bench_function("navigation_plus_df", |b| {
            b.iter(|| baselines::navigation_plus_df(frame, &endpoint).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_case_studies);
criterion_main!(benches);
