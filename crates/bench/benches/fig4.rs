//! Criterion bench for Figure 4: RDFFrames vs rdflib+dataframe vs
//! SPARQL+dataframe vs expert SPARQL on the three case studies.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data};
use rdf_model::ntriples;

const SCALE: usize = 600;

fn bench_alternatives(c: &mut Criterion) {
    let ds = data::build_dataset(SCALE);
    let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
    let p = CaseParams::for_scale(SCALE);

    let dbpedia_nt =
        ntriples::write_document(ds.graph(data::uris::DBPEDIA).unwrap().iter_triples());
    let dblp_nt = ntriples::write_document(ds.graph(data::uris::DBLP).unwrap().iter_triples());

    let studies = [
        (
            "movie_genre",
            casestudies::movie_genre_classification(p.prolific),
            casestudies::movie_genre_expert(p.prolific),
            &dbpedia_nt,
        ),
        (
            "topic_modeling",
            casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
            casestudies::topic_modeling_expert(p.since_year, p.threshold, p.recent_year),
            &dblp_nt,
        ),
        (
            "kg_embedding",
            casestudies::kg_embedding(),
            casestudies::kg_embedding_expert(),
            &dblp_nt,
        ),
    ];

    for (name, frame, expert, nt) in &studies {
        let mut group = c.benchmark_group(format!("fig4/{name}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(1));
        group.bench_function("rdfframes", |b| {
            b.iter(|| baselines::rdfframes(frame, &endpoint).unwrap())
        });
        group.bench_function("expert_sparql", |b| {
            b.iter(|| baselines::expert_sparql(expert, &endpoint).unwrap())
        });
        group.bench_function("sparql_plus_df", |b| {
            b.iter(|| baselines::sparql_plus_df(frame, &endpoint).unwrap())
        });
        group.bench_function("rdflib_plus_df", |b| {
            b.iter(|| baselines::rdflib_plus_df(frame, nt).unwrap())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_alternatives);
criterion_main!(benches);
