//! Fault-injected crash-recovery acceptance suite over the paper workload.
//!
//! The property under test is the storage layer's crash-consistency
//! contract: **for any crash point during any interleaving of graph
//! inserts, append batches, and checkpoints, reopening the store recovers
//! exactly the committed prefix of the mutation history** — the state
//! after the last operation that returned `Ok` — and the recovered
//! dataset is indistinguishable from an in-memory oracle at that prefix:
//! every workload query (Q1–Q19) produces cell-identical frames *and*
//! identical `rows_scanned` work counters. Corruption at rest (bit flips)
//! must surface as typed errors or recover a valid prefix — never panic,
//! never produce a silently wrong dataset.
//!
//! Everything is deterministic: crash points are enumerated from a
//! fault-free dry run's byte count, queries run embedded, and the proptest
//! shim derives its cases from the test name.

use std::sync::Arc;

use bench::{data, queries};
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use rdf_model::persist::{FaultPlan, MemVfs, StorageError, Store};
use rdf_model::{Dataset, Graph, Triple};
use rdfframes_core::{EmbeddedEndpoint, Executor};

/// One step of the workload's mutation history.
enum Op {
    Insert {
        uri: &'static str,
        graph: Graph,
    },
    Append {
        uri: &'static str,
        triples: Vec<Triple>,
    },
    Checkpoint,
}

impl Op {
    fn apply(&self, store: &mut Store) -> Result<(), StorageError> {
        match self {
            Op::Insert { uri, graph } => store.insert_graph(uri, graph),
            Op::Append { uri, triples } => store.append_triples(uri, triples.clone()),
            Op::Checkpoint => store.checkpoint(),
        }
    }
}

/// Split one generated graph into an initial insert (60%) plus two append
/// batches, so recovery has to reconstruct mixed slab/delta states.
fn split_graph(uri: &'static str, full: &Graph, threshold: usize) -> (Op, Op, Op) {
    let triples: Vec<Triple> = full.iter_triples().collect();
    let a = triples.len() * 6 / 10;
    let b = triples.len() * 8 / 10;
    let mut base = Graph::with_delta_threshold(threshold);
    for t in &triples[..a] {
        base.insert(t);
    }
    (
        Op::Insert { uri, graph: base },
        Op::Append {
            uri,
            triples: triples[a..b].to_vec(),
        },
        Op::Append {
            uri,
            triples: triples[b..].to_vec(),
        },
    )
}

/// The canonical mutation history at a scale: three graph lifecycles with
/// checkpoints interleaved at awkward places (right after a WAL-heavy
/// stretch, right before more appends land on top of a fresh snapshot).
fn workload_ops(scale: usize) -> Vec<Op> {
    let ds = data::build_dataset(scale);
    // Different thresholds per graph: slab-heavy, mixed, delta-resident.
    let (i1, a1, b1) = split_graph(
        data::uris::DBPEDIA,
        ds.graph(data::uris::DBPEDIA).unwrap(),
        64,
    );
    let (i2, a2, b2) = split_graph(data::uris::DBLP, ds.graph(data::uris::DBLP).unwrap(), 512);
    let (i3, a3, b3) = split_graph(
        data::uris::YAGO,
        ds.graph(data::uris::YAGO).unwrap(),
        1 << 20,
    );
    vec![
        i1,
        a1,
        Op::Checkpoint,
        i2,
        a2,
        b1,
        Op::Checkpoint,
        i3,
        a3,
        b2,
        b3,
        Op::Checkpoint,
    ]
}

/// Run the ops against a store on `vfs` until the first failure, returning
/// the stats generation of the last operation that committed.
fn run_until_failure(vfs: Arc<MemVfs>, ops: &[Op]) -> u64 {
    let mut store = match Store::open(vfs) {
        Ok(s) => s,
        // Crashed while creating the WAL: nothing ever committed.
        Err(_) => return 0,
    };
    let mut last_ok_gen = 0;
    for op in ops {
        match op.apply(&mut store) {
            Ok(()) => last_ok_gen = store.dataset().stats_generation(),
            Err(_) => break,
        }
    }
    // Telemetry invariant: in this workload every checkpoint follows at
    // least one commit, and both counters only count completed operations,
    // so no crash point may leave more checkpoints than commits recorded.
    let stats = store.stats();
    assert!(
        stats.checkpoints <= stats.commits,
        "checkpoints {} exceed commits {}",
        stats.checkpoints,
        stats.commits
    );
    last_ok_gen
}

/// The in-memory oracle: a clean store advanced to exactly generation
/// `gen` of the same op list.
fn oracle_at(ops: &[Op], gen: u64) -> Store {
    let mut store = Store::open(Arc::new(MemVfs::new())).expect("clean open");
    for op in ops {
        if store.dataset().stats_generation() >= gen {
            break;
        }
        if matches!(op, Op::Checkpoint) {
            continue;
        }
        op.apply(&mut store).expect("oracle op");
    }
    assert_eq!(
        store.dataset().stats_generation(),
        gen,
        "oracle could not reach generation {gen}"
    );
    store
}

/// Physical equality: recovered state must be *identical* to the oracle —
/// same slabs, same deltas, same interners, same generation counters —
/// not merely set-equal. This is what makes scan-cost parity possible.
fn assert_physically_identical(a: &Dataset, b: &Dataset) -> Result<(), String> {
    if a.stats_generation() != b.stats_generation() {
        return Err(format!(
            "stats_generation {} != {}",
            a.stats_generation(),
            b.stats_generation()
        ));
    }
    let uris: Vec<&str> = a.graph_uris().collect();
    if uris != b.graph_uris().collect::<Vec<_>>() {
        return Err("graph sets differ".into());
    }
    for uri in uris {
        let (ga, gb) = (a.graph(uri).unwrap(), b.graph(uri).unwrap());
        if ga.spo_slab() != gb.spo_slab() {
            return Err(format!("{uri}: slabs differ"));
        }
        if ga.delta_ids().collect::<Vec<_>>() != gb.delta_ids().collect::<Vec<_>>() {
            return Err(format!("{uri}: deltas differ"));
        }
        if ga.compaction_generation() != gb.compaction_generation() {
            return Err(format!("{uri}: compaction generations differ"));
        }
        if ga.interner().len() != gb.interner().len() {
            return Err(format!("{uri}: graph interners differ"));
        }
    }
    Ok(())
}

/// Full workload parity: every query produces cell-identical frames and
/// identical scan-work counters on both datasets; errors (if any) match
/// by message.
fn assert_query_parity(a: &Dataset, b: &Dataset) -> Result<(), String> {
    let exec = Executor::new();
    for q in queries::all_queries() {
        let ea = EmbeddedEndpoint::new(Arc::new(a.clone()));
        let eb = EmbeddedEndpoint::new(Arc::new(b.clone()));
        match (exec.execute(&q.frame, &ea), exec.execute(&q.frame, &eb)) {
            (Ok(fa), Ok(fb)) => {
                if fa != fb {
                    return Err(format!("{}: frames diverge", q.id));
                }
            }
            (Err(x), Err(y)) => {
                if x.to_string() != y.to_string() {
                    return Err(format!("{}: errors diverge: {x} vs {y}", q.id));
                }
            }
            (ra, rb) => {
                return Err(format!(
                    "{}: one side failed: {:?} vs {:?}",
                    q.id,
                    ra.map(|f| f.len()),
                    rb.map(|f| f.len())
                ))
            }
        }
        if ea.rows_scanned() != eb.rows_scanned() {
            return Err(format!(
                "{}: rows_scanned {} != {}",
                q.id,
                ea.rows_scanned(),
                eb.rows_scanned()
            ));
        }
    }
    Ok(())
}

/// Crash at `crash_point` written bytes, reopen, and check the full
/// contract against the oracle. `queries` gates the (expensive) Q1–Q19
/// parity pass.
fn check_crash_point(ops: &[Op], crash_point: u64, queries: bool) -> Result<(), String> {
    let vfs = Arc::new(MemVfs::faulty(FaultPlan {
        crash_after_bytes: Some(crash_point),
        ..FaultPlan::none()
    }));
    let last_ok_gen = run_until_failure(Arc::clone(&vfs), ops);
    let recovered = Store::open(Arc::new(MemVfs::reopen_from(&vfs)))
        .map_err(|e| format!("crash@{crash_point}: recovery failed: {e}"))?;
    if recovered.dataset().stats_generation() != last_ok_gen {
        return Err(format!(
            "crash@{crash_point}: recovered generation {} != last committed {}",
            recovered.dataset().stats_generation(),
            last_ok_gen
        ));
    }
    let oracle = oracle_at(ops, last_ok_gen);
    assert_physically_identical(oracle.dataset(), recovered.dataset())
        .map_err(|e| format!("crash@{crash_point}: {e}"))?;
    if queries {
        assert_query_parity(oracle.dataset(), recovered.dataset())
            .map_err(|e| format!("crash@{crash_point}: {e}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Sampled crash points across the whole byte timeline, with physical
    /// prefix-equality checks (cheap, so many cases).
    #[test]
    fn any_crash_point_recovers_a_committed_prefix(point in 0u64..=1u64 << 32) {
        let ops = workload_ops(6);
        let dry = Arc::new(MemVfs::new());
        assert_eq!(run_until_failure(Arc::clone(&dry), &ops), 9);
        let total = dry.bytes_written();
        check_crash_point(&ops, point % (total + 1), false)?;
    }

    /// Sampled crash points with the full Q1–Q19 cell + rows_scanned
    /// parity (heavier, fewer implicit cases since each runs 19 queries
    /// twice).
    #[test]
    fn queries_over_recovered_prefix_match_the_oracle(point in 0u64..=1u64 << 32) {
        let ops = workload_ops(6);
        let dry = Arc::new(MemVfs::new());
        run_until_failure(Arc::clone(&dry), &ops);
        let total = dry.bytes_written();
        check_crash_point(&ops, point % (total + 1), true)?;
    }
}

/// Boundary crash points that random sampling can miss: before anything,
/// inside the WAL magic, exactly at the dry-run total, and one byte short
/// of every checkpoint's rename becoming durable.
#[test]
fn boundary_crash_points() {
    let ops = workload_ops(6);
    let dry = Arc::new(MemVfs::new());
    run_until_failure(Arc::clone(&dry), &ops);
    let total = dry.bytes_written();
    for point in [0, 1, 7, 8, 9, total / 2, total - 1, total, total + 1000] {
        check_crash_point(&ops, point, false).unwrap();
    }
}

/// The check.sh smoke configuration: scale 64, fixed crash points, full
/// Q1–Q19 parity including `rows_scanned`.
#[test]
fn scale_64_smoke_with_full_query_parity() {
    let ops = workload_ops(64);
    let dry = Arc::new(MemVfs::new());
    assert_eq!(run_until_failure(Arc::clone(&dry), &ops), 9);
    let total = dry.bytes_written();
    for point in [total / 5, total / 2, total - 1] {
        check_crash_point(&ops, point, true).unwrap();
    }
    // And the fault-free end state: recovered == oracle at full history.
    check_crash_point(&ops, total + 1, true).unwrap();
}

/// ENOSPC mid-history: the process survives, the store stays consistent at
/// the committed prefix, and a reopen from the surviving image agrees.
#[test]
fn enospc_keeps_the_committed_prefix_live_and_durable() {
    let ops = workload_ops(6);
    let dry = Arc::new(MemVfs::new());
    run_until_failure(Arc::clone(&dry), &ops);
    let total = dry.bytes_written();
    for point in [total / 4, total / 2, 3 * total / 4] {
        let vfs = Arc::new(MemVfs::faulty(FaultPlan {
            enospc_after_bytes: Some(point),
            ..FaultPlan::none()
        }));
        let mut store = Store::open(Arc::clone(&vfs) as Arc<dyn rdf_model::persist::Vfs>)
            .expect("open fits in budget");
        let mut last_ok_gen = 0;
        let mut saw_enospc = false;
        for op in &ops {
            match op.apply(&mut store) {
                Ok(()) => last_ok_gen = store.dataset().stats_generation(),
                Err(StorageError::NoSpace) => saw_enospc = true,
                // Cascades of an earlier failure: a failed checkpoint
                // poisons, a failed insert leaves later appends targeting
                // a graph that never came to exist.
                Err(StorageError::Poisoned) | Err(StorageError::UnknownGraph(_)) => {}
                Err(e) => panic!("enospc@{point}: unexpected error {e}"),
            }
        }
        assert!(saw_enospc, "budget {point} never tripped");
        // Live state is the committed prefix...
        let oracle = oracle_at(&ops, last_ok_gen);
        assert_physically_identical(oracle.dataset(), store.dataset()).unwrap();
        // ...and unless a failed checkpoint poisoned the store (documented:
        // reopen to recover), the durable state agrees too.
        let reopened = Store::open(Arc::new(MemVfs::reopen_from(&vfs))).unwrap();
        assert_physically_identical(oracle.dataset(), reopened.dataset()).unwrap();
    }
}

/// Corruption at rest: flip bits across the snapshot and the WAL. A
/// snapshot flip must be a typed error; a WAL flip either truncates to a
/// valid prefix or errors typed. Nothing panics, nothing silently lies.
#[test]
fn bit_flips_never_panic_and_never_corrupt() {
    let ops = workload_ops(6);
    // Build a disk image holding both a snapshot and live WAL records:
    // stop after op 9 of 12 (one checkpoint behind, two appends in WAL).
    let vfs = Arc::new(MemVfs::new());
    let mut store = Store::open(Arc::clone(&vfs) as Arc<dyn rdf_model::persist::Vfs>).unwrap();
    let mut full_gen = 0;
    for op in ops.iter().take(10) {
        op.apply(&mut store).unwrap();
        full_gen = store.dataset().stats_generation();
    }
    drop(store);
    let image = vfs.disk_image();
    let snap_len = image.get("snapshot.rds").expect("snapshot present").len();
    let wal_len = image.get("wal.log").expect("wal present").len();
    assert!(wal_len > 8, "need live WAL records for the sweep");

    // Snapshot flips: the whole-body CRC must catch every single one.
    for byte in (0..snap_len).step_by(snap_len / 97 + 1) {
        let flipped = Arc::new(MemVfs::reopen_from(&vfs));
        assert!(flipped.flip_bit("snapshot.rds", byte, (byte % 8) as u8));
        match Store::open(Arc::clone(&flipped) as Arc<dyn rdf_model::persist::Vfs>) {
            Err(StorageError::Corrupt { .. }) | Err(StorageError::UnsupportedVersion(_)) => {}
            Ok(_) => panic!("snapshot flip at byte {byte} went undetected"),
            Err(e) => panic!("snapshot flip at byte {byte}: wrong error {e}"),
        }
    }

    // WAL flips: recovery keeps a valid prefix (flip lands in a frame →
    // the scan cuts there) or reports typed corruption (flip in the
    // magic). Whatever gen survives must equal the oracle at that gen.
    for byte in 0..wal_len {
        let flipped = Arc::new(MemVfs::reopen_from(&vfs));
        assert!(flipped.flip_bit("wal.log", byte, (byte % 8) as u8));
        match Store::open(Arc::new(MemVfs::reopen_from(&flipped))) {
            Ok(store) => {
                let gen = store.dataset().stats_generation();
                assert!(gen <= full_gen, "wal flip at {byte} invented history");
                let oracle = oracle_at(&ops, gen);
                assert_physically_identical(oracle.dataset(), store.dataset())
                    .unwrap_or_else(|e| panic!("wal flip at {byte}: {e}"));
            }
            Err(StorageError::Corrupt { .. }) => {}
            Err(e) => panic!("wal flip at byte {byte}: wrong error {e}"),
        }
    }
}
