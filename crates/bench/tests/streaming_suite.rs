//! Streaming differential suite over the full example workload.
//!
//! The operator-level contract lives in
//! `sparql-engine/tests/streaming_pipeline.rs`; this suite asserts the
//! same property end to end through the RDFFrames stack: every synthetic
//! Table 2 query and all three case studies must produce **identical
//! DataFrames** (schema, row order, cell values) and identical
//! `rows_scanned` work counts whether the embedded engine streams
//! batches through the pull-based pipeline or fully materializes first —
//! at every batch size in the sweep (1, 7, 256, 65536) and over both
//! storage layouts (compacted slabs and an all-delta overlay).
//!
//! Scan parity is exact here because nothing in this corpus carries a
//! `LIMIT`: the streaming slice's early exit (the one sanctioned scan
//! divergence — see `streaming_pipeline.rs`) never engages.

use std::sync::Arc;

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::{Dataset, Graph};
use rdfframes_core::{EmbeddedEndpoint, RDFFrame};
use sparql_engine::EngineConfig;

/// Big enough for multi-thousand-row intermediates (so batching is
/// genuinely exercised), small enough to keep the 4-batch × 2-layout
/// sweep fast.
const SCALE: usize = 100;

const BATCH_SWEEP: [usize; 4] = [1, 7, 256, 65_536];

fn endpoint(ds: &Arc<Dataset>, streaming: bool, batch_rows: usize) -> EmbeddedEndpoint {
    EmbeddedEndpoint::with_engine_config(
        Arc::clone(ds),
        EngineConfig {
            streaming,
            ..EngineConfig::new()
        },
    )
    .with_batch_rows(batch_rows)
}

/// Rebuild every graph with auto-compaction disabled so all triples sit
/// in the mutable delta overlay instead of frozen slabs — resumable
/// scans must behave identically over both layouts.
fn delta_resident_copy(ds: &Arc<Dataset>) -> Arc<Dataset> {
    let uris: Vec<String> = ds.graph_uris().map(str::to_owned).collect();
    let mut out = Dataset::new();
    for uri in uris {
        let src = ds.graph(&uri).expect("graph listed but missing");
        let mut g = Graph::with_delta_threshold(usize::MAX);
        for t in src.iter_triples() {
            g.insert(&t);
        }
        assert_eq!(
            g.delta_len(),
            src.len(),
            "layout setup: delta must hold every triple of {uri}"
        );
        out.insert_graph(uri, g);
    }
    Arc::new(out)
}

fn workload() -> Vec<(String, RDFFrame)> {
    let p = CaseParams::for_scale(SCALE);
    let mut all: Vec<(String, RDFFrame)> = queries::all_queries()
        .into_iter()
        .map(|def| (def.id.to_string(), def.frame))
        .collect();
    all.push((
        "cs1_movie_genre".into(),
        casestudies::movie_genre_classification(p.prolific),
    ));
    all.push((
        "cs2_topic_modeling".into(),
        casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
    ));
    all.push(("cs3_kg_embedding".into(), casestudies::kg_embedding()));
    all
}

/// One workload execution, returning (DataFrame, rows scanned by it).
fn run(frame: &RDFFrame, ep: &EmbeddedEndpoint, id: &str) -> (dataframe::DataFrame, u64) {
    let before = ep.rows_scanned();
    let df = frame
        .execute(ep)
        .unwrap_or_else(|e| panic!("{id}: execution failed: {e}"));
    (df, ep.rows_scanned() - before)
}

fn sweep_layout(ds: &Arc<Dataset>, layout: &str) {
    // The materializing baseline is batch-size-independent (batching a
    // materialized table only slices it), so compute it once per frame
    // and hold every streaming batch size to it.
    let baseline = endpoint(ds, false, 16_384);
    for (id, frame) in workload() {
        let (df_base, scanned_base) = run(&frame, &baseline, &id);
        assert!(
            !df_base.is_empty(),
            "{id}: empty result at test scale proves nothing"
        );
        for batch_rows in BATCH_SWEEP {
            let streaming = endpoint(ds, true, batch_rows);
            let (df_stream, scanned_stream) = run(&frame, &streaming, &id);
            assert_eq!(
                df_base, df_stream,
                "{id} @ batch {batch_rows} ({layout}): streaming changed the DataFrame"
            );
            assert_eq!(
                scanned_base, scanned_stream,
                "{id} @ batch {batch_rows} ({layout}): streaming changed the scan work count"
            );
        }
    }
}

#[test]
fn workload_streams_identically_over_compacted_slabs() {
    let ds = data::build_dataset(SCALE);
    sweep_layout(&ds, "compacted");
}

#[test]
fn workload_streams_identically_over_delta_overlay() {
    let ds = delta_resident_copy(&data::build_dataset(SCALE));
    sweep_layout(&ds, "delta-resident");
}
