//! Thread-count differential suite over the full example workload.
//!
//! The unit-level determinism contract lives in
//! `sparql-engine/tests/parallel_determinism.rs`; this suite asserts the
//! same property end to end through the RDFFrames stack: every synthetic
//! Table 2 query and all three case studies must produce **identical
//! DataFrames** (schema, row order, cell values) whether the embedded
//! engine evaluates with one thread or a four-worker stealing pool, and
//! must report identical `rows_scanned` work counts. The scale is chosen
//! so the bigger workloads genuinely cross the parallel row threshold —
//! the suite checks that at least some of them did.

use std::sync::Arc;

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::Dataset;
use rdfframes_core::{EmbeddedEndpoint, RDFFrame};
use sparql_engine::EngineConfig;

/// Big enough that multi-pattern workloads exceed the engine's 256-row
/// parallel gate (the DBpedia graph alone has tens of thousands of rows).
const SCALE: usize = 400;

fn endpoint(ds: &Arc<Dataset>, threads: usize) -> EmbeddedEndpoint {
    // Pin a large cursor batch size: this suite asserts that parallel
    // chunking actually engaged, and the streaming pipeline only fans out
    // batches that reach the 256-row parallel gate. A small ambient
    // `RDFFRAMES_BATCH_ROWS` (the CI batch-size re-run) would starve the
    // gate and make the par_chunks assertions vacuous.
    EmbeddedEndpoint::with_engine_config(
        Arc::clone(ds),
        EngineConfig {
            threads,
            ..EngineConfig::new()
        },
    )
    .with_batch_rows(65_536)
}

/// Execute `frame` on both endpoints, assert identical frames and work
/// counts, and return whether the parallel run actually chunked anything.
fn assert_same(id: &str, frame: &RDFFrame, seq: &EmbeddedEndpoint, par: &EmbeddedEndpoint) -> bool {
    let scanned_seq_before = seq.rows_scanned();
    let scanned_par_before = par.rows_scanned();
    let chunks_before = par.stats().par_chunks();
    let df_seq = frame
        .execute(seq)
        .unwrap_or_else(|e| panic!("{id}: sequential execution failed: {e}"));
    let df_par = frame
        .execute(par)
        .unwrap_or_else(|e| panic!("{id}: parallel execution failed: {e}"));
    assert_eq!(df_seq, df_par, "{id}: thread count changed the DataFrame");
    assert!(
        !df_seq.is_empty(),
        "{id}: empty result at test scale proves nothing"
    );
    assert_eq!(
        seq.rows_scanned() - scanned_seq_before,
        par.rows_scanned() - scanned_par_before,
        "{id}: thread count changed the scan work count"
    );
    par.stats().par_chunks() > chunks_before
}

#[test]
fn synthetic_workload_is_thread_count_invariant() {
    let ds = data::build_dataset(SCALE);
    let seq = endpoint(&ds, 1);
    let par = endpoint(&ds, 4);
    let mut any_parallel = false;
    for def in queries::all_queries() {
        any_parallel |= assert_same(def.id, &def.frame, &seq, &par);
    }
    assert_eq!(
        seq.stats().par_chunks(),
        0,
        "single-threaded endpoint must never report parallel chunks"
    );
    assert!(
        any_parallel,
        "no synthetic query crossed the parallel gate — the suite is vacuous"
    );
}

#[test]
fn case_studies_are_thread_count_invariant() {
    let ds = data::build_dataset(SCALE);
    let seq = endpoint(&ds, 1);
    let par = endpoint(&ds, 4);
    let p = CaseParams::for_scale(SCALE);
    let cases: Vec<(&str, RDFFrame)> = vec![
        (
            "cs1_movie_genre",
            casestudies::movie_genre_classification(p.prolific),
        ),
        (
            "cs2_topic_modeling",
            casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
        ),
        ("cs3_kg_embedding", casestudies::kg_embedding()),
    ];
    let mut any_parallel = false;
    for (id, frame) in &cases {
        any_parallel |= assert_same(id, frame, &seq, &par);
    }
    assert!(
        any_parallel,
        "no case study crossed the parallel gate — the suite is vacuous"
    );
}
