//! Fault-injected acceptance suite for the durable serving layer.
//!
//! Three contracts over [`DurableSnapshotServer`]:
//!
//! 1. **Durability before publish.** For any `MemVfs` crash point during a
//!    serving run — mid-commit, mid-publish, mid-checkpoint, with readers
//!    racing the writer — the surviving image reopens to *exactly* the
//!    committed epoch prefix: the state after the last mutation that
//!    returned `Ok`. The recovered dataset is physically identical to an
//!    in-memory oracle at that prefix, and the workload queries (Q1–Q19)
//!    produce cell-identical frames with identical `rows_scanned`. No
//!    reader ever observes a torn or uncommitted epoch.
//! 2. **Overload shedding.** With admission limit `k` and more than `k`
//!    concurrent queries, the excess get a typed, retryable
//!    [`FrameError::Overloaded`] — they never hang and never panic —
//!    while accepted queries return byte-identical results to an unloaded
//!    run, and the `ServerStats` counters reconcile
//!    (`admitted + shed == submitted`, `timed_out <= admitted`).
//! 3. **Graceful degradation.** The ladder sheds wire before embedded
//!    (wire never queues), and budget pressure on the wire path degrades
//!    to an intact result prefix with `Completeness::Partial` instead of
//!    vanishing.
//!
//! Crash points are enumerated from fault-free dry runs, saturation is
//! pinned by holding governor permits directly, and degradation uses the
//! deterministic `max_rows_scanned` budget axis — nothing here races a
//! wall clock.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bench::{data, queries};
use proptest::proptest;
use proptest::test_runner::ProptestConfig;
use rdf_model::persist::{FaultPlan, MemVfs, Store, Vfs};
use rdf_model::{Dataset, Graph, Term, Triple};
use rdfframes_core::{
    Completeness, DurableSnapshotServer, EmbeddedEndpoint, Executor, FrameError, KnowledgeGraph,
    QueryClass, RDFFrame, ServingConfig,
};

/// One step of the workload's mutation history, driven through the server.
enum Op {
    Insert {
        uri: &'static str,
        graph: Graph,
    },
    Append {
        uri: &'static str,
        triples: Vec<Triple>,
    },
    Checkpoint,
}

impl Op {
    /// Apply through the serving front door. Returns the generation of the
    /// epoch this op published (checkpoints publish nothing and return the
    /// previous generation).
    fn apply(&self, server: &DurableSnapshotServer) -> Result<u64, FrameError> {
        match self {
            Op::Insert { uri, graph } => server.insert_graph(uri, graph).map(|e| e.generation()),
            Op::Append { uri, triples } => server
                .append_triples(uri, triples.clone())
                .map(|e| e.generation()),
            Op::Checkpoint => server.checkpoint().map(|()| server.snapshot().generation()),
        }
    }
}

/// Split one generated graph into an initial insert (60%) plus two append
/// batches — same shape as the storage-layer crash suite, so recovery has
/// to reconstruct mixed slab/delta states through the serving stack too.
fn split_graph(uri: &'static str, full: &Graph, threshold: usize) -> (Op, Op, Op) {
    let triples: Vec<Triple> = full.iter_triples().collect();
    let a = triples.len() * 6 / 10;
    let b = triples.len() * 8 / 10;
    let mut base = Graph::with_delta_threshold(threshold);
    for t in &triples[..a] {
        base.insert(t);
    }
    (
        Op::Insert { uri, graph: base },
        Op::Append {
            uri,
            triples: triples[a..b].to_vec(),
        },
        Op::Append {
            uri,
            triples: triples[b..].to_vec(),
        },
    )
}

fn workload_ops(scale: usize) -> Vec<Op> {
    let ds = data::build_dataset(scale);
    let (i1, a1, b1) = split_graph(
        data::uris::DBPEDIA,
        ds.graph(data::uris::DBPEDIA).unwrap(),
        64,
    );
    let (i2, a2, b2) = split_graph(data::uris::DBLP, ds.graph(data::uris::DBLP).unwrap(), 512);
    let (i3, a3, b3) = split_graph(
        data::uris::YAGO,
        ds.graph(data::uris::YAGO).unwrap(),
        1 << 20,
    );
    vec![
        i1,
        a1,
        Op::Checkpoint,
        i2,
        a2,
        b1,
        Op::Checkpoint,
        i3,
        a3,
        b2,
        b3,
        Op::Checkpoint,
    ]
}

/// A serving config with no background checkpoint policy, so the explicit
/// `Op::Checkpoint` steps fully control the byte timeline.
fn explicit_checkpoint_config() -> ServingConfig {
    ServingConfig {
        checkpoint_wal_bytes: None,
        ..ServingConfig::default()
    }
}

/// Drive the ops through a durable server on `vfs` until the first storage
/// failure. Returns the server (if it opened at all) and the generation of
/// the last committed-and-published epoch.
fn serve_until_failure(
    vfs: Arc<MemVfs>,
    config: ServingConfig,
    ops: &[Op],
) -> (Option<DurableSnapshotServer>, u64) {
    let server = match DurableSnapshotServer::open(vfs as Arc<dyn Vfs>, config) {
        Ok(s) => s,
        // Crashed while creating the WAL: nothing was ever served.
        Err(_) => return (None, 0),
    };
    let mut last_ok_gen = server.snapshot().generation();
    for op in ops {
        match op.apply(&server) {
            Ok(gen) => last_ok_gen = gen,
            Err(_) => break,
        }
    }
    (Some(server), last_ok_gen)
}

/// The in-memory oracle: a clean store advanced to exactly generation
/// `gen` of the same op list (checkpoints don't touch the dataset).
fn oracle_at(ops: &[Op], gen: u64) -> Store {
    let mut store = Store::open(Arc::new(MemVfs::new())).expect("clean open");
    for op in ops {
        if store.dataset().stats_generation() >= gen {
            break;
        }
        match op {
            Op::Checkpoint => continue,
            Op::Insert { uri, graph } => store.insert_graph(uri, graph).expect("oracle op"),
            Op::Append { uri, triples } => store
                .append_triples(uri, triples.clone())
                .expect("oracle op"),
        }
    }
    assert_eq!(
        store.dataset().stats_generation(),
        gen,
        "oracle could not reach generation {gen}"
    );
    store
}

/// Physical equality: same slabs, same deltas, same interners, same
/// generation counters — what makes scan-cost parity possible.
fn assert_physically_identical(a: &Dataset, b: &Dataset) -> Result<(), String> {
    if a.stats_generation() != b.stats_generation() {
        return Err(format!(
            "stats_generation {} != {}",
            a.stats_generation(),
            b.stats_generation()
        ));
    }
    let uris: Vec<&str> = a.graph_uris().collect();
    if uris != b.graph_uris().collect::<Vec<_>>() {
        return Err("graph sets differ".into());
    }
    for uri in uris {
        let (ga, gb) = (a.graph(uri).unwrap(), b.graph(uri).unwrap());
        if ga.spo_slab() != gb.spo_slab() {
            return Err(format!("{uri}: slabs differ"));
        }
        if ga.delta_ids().collect::<Vec<_>>() != gb.delta_ids().collect::<Vec<_>>() {
            return Err(format!("{uri}: deltas differ"));
        }
        if ga.compaction_generation() != gb.compaction_generation() {
            return Err(format!("{uri}: compaction generations differ"));
        }
        if ga.interner().len() != gb.interner().len() {
            return Err(format!("{uri}: graph interners differ"));
        }
    }
    Ok(())
}

/// Q1–Q19 parity: cell-identical frames and identical `rows_scanned` on
/// both datasets; errors (if any) match by message.
fn assert_query_parity(a: &Dataset, b: &Dataset) -> Result<(), String> {
    let exec = Executor::new();
    for q in queries::all_queries() {
        let ea = EmbeddedEndpoint::new(Arc::new(a.clone()));
        let eb = EmbeddedEndpoint::new(Arc::new(b.clone()));
        match (exec.execute(&q.frame, &ea), exec.execute(&q.frame, &eb)) {
            (Ok(fa), Ok(fb)) => {
                if fa != fb {
                    return Err(format!("{}: frames diverge", q.id));
                }
            }
            (Err(x), Err(y)) => {
                if x.to_string() != y.to_string() {
                    return Err(format!("{}: errors diverge: {x} vs {y}", q.id));
                }
            }
            (ra, rb) => {
                return Err(format!(
                    "{}: one side failed: {:?} vs {:?}",
                    q.id,
                    ra.map(|f| f.len()),
                    rb.map(|f| f.len())
                ))
            }
        }
        if ea.rows_scanned() != eb.rows_scanned() {
            return Err(format!(
                "{}: rows_scanned {} != {}",
                q.id,
                ea.rows_scanned(),
                eb.rows_scanned()
            ));
        }
    }
    Ok(())
}

/// Crash at `crash_point` written bytes during a (single-threaded) serving
/// run, then check the full contract: the still-live server keeps serving
/// the committed epoch, and a reopened server recovers exactly that epoch.
fn check_crash_point(ops: &[Op], crash_point: u64, queries: bool) -> Result<(), String> {
    let vfs = Arc::new(MemVfs::faulty(FaultPlan {
        crash_after_bytes: Some(crash_point),
        ..FaultPlan::none()
    }));
    let (live, last_ok_gen) =
        serve_until_failure(Arc::clone(&vfs), explicit_checkpoint_config(), ops);
    let oracle = oracle_at(ops, last_ok_gen);

    // The crash never un-publishes: the live server still serves the last
    // committed epoch (a failed mutation publishes nothing).
    if let Some(server) = &live {
        let snap = server.snapshot();
        if snap.generation() != last_ok_gen {
            return Err(format!(
                "crash@{crash_point}: live server serves generation {} != committed {}",
                snap.generation(),
                last_ok_gen
            ));
        }
        assert_physically_identical(oracle.dataset(), snap.dataset())
            .map_err(|e| format!("crash@{crash_point}: live epoch: {e}"))?;
    }

    // Restart path: open → recover → serve, landing on the committed epoch.
    let reopened = DurableSnapshotServer::open(
        Arc::new(MemVfs::reopen_from(&vfs)),
        explicit_checkpoint_config(),
    )
    .map_err(|e| format!("crash@{crash_point}: recovery failed: {e}"))?;
    let snap = reopened.snapshot();
    if snap.generation() != last_ok_gen {
        return Err(format!(
            "crash@{crash_point}: recovered generation {} != last committed {}",
            snap.generation(),
            last_ok_gen
        ));
    }
    assert_physically_identical(oracle.dataset(), snap.dataset())
        .map_err(|e| format!("crash@{crash_point}: {e}"))?;
    if queries {
        assert_query_parity(oracle.dataset(), snap.dataset())
            .map_err(|e| format!("crash@{crash_point}: {e}"))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Sampled crash points across the whole serving byte timeline, with
    /// physical prefix-equality checks on both the live and the reopened
    /// server (cheap, so many cases).
    #[test]
    fn any_crash_point_during_serving_recovers_the_committed_epoch(point in 0u64..=1u64 << 32) {
        let ops = workload_ops(6);
        let dry = Arc::new(MemVfs::new());
        let (_, dry_gen) = serve_until_failure(Arc::clone(&dry), explicit_checkpoint_config(), &ops);
        assert_eq!(dry_gen, 9, "fault-free run must commit the whole history");
        let total = dry.bytes_written();
        check_crash_point(&ops, point % (total + 1), false)?;
    }
}

/// The check.sh smoke configuration: scale 64, fixed crash points swept
/// across the byte timeline, full Q1–Q19 + `rows_scanned` parity against
/// the in-memory oracle.
#[test]
fn scale_64_crash_while_serving_smoke_with_query_parity() {
    let ops = workload_ops(64);
    let dry = Arc::new(MemVfs::new());
    let (_, dry_gen) = serve_until_failure(Arc::clone(&dry), explicit_checkpoint_config(), &ops);
    assert_eq!(dry_gen, 9);
    let total = dry.bytes_written();
    for point in [total / 5, total / 2, total - 1] {
        check_crash_point(&ops, point, true).unwrap();
    }
    // And the fault-free end state: recovered == oracle at full history.
    check_crash_point(&ops, total + 1, true).unwrap();
}

/// Crash under racing readers, with the WAL-size checkpoint policy armed
/// so the crash can land inside a threshold-triggered checkpoint that runs
/// while readers serve. Readers assert they only ever observe committed
/// epochs, in monotonic order; recovery lands on the last committed
/// generation.
#[test]
fn crash_under_racing_readers_lands_on_a_committed_epoch() {
    let ops = workload_ops(6);
    let config = || ServingConfig {
        // Small threshold: mutations routinely trigger checkpoints, so
        // crash points land mid-checkpoint too.
        checkpoint_wal_bytes: Some(1 << 12),
        ..ServingConfig::default()
    };
    let dry = Arc::new(MemVfs::new());
    let (_, dry_gen) = serve_until_failure(Arc::clone(&dry), config(), &ops);
    assert_eq!(dry_gen, 9);
    let total = dry.bytes_written();

    let probe = queries::all_queries().remove(0).frame;
    for point in [
        total / 6,
        total / 3,
        total / 2,
        2 * total / 3,
        5 * total / 6,
        total - 1,
    ] {
        let vfs = Arc::new(MemVfs::faulty(FaultPlan {
            crash_after_bytes: Some(point),
            ..FaultPlan::none()
        }));
        let server = DurableSnapshotServer::open(Arc::clone(&vfs) as Arc<dyn Vfs>, config())
            .expect("open fits in every swept budget");

        // Generations a reader is allowed to observe. A mutation's target
        // generation is registered *before* the call (publish makes it
        // visible before the caller returns); a failed mutation publishes
        // nothing, so deregistering afterwards cannot race a reader.
        let committed: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::from([0]));
        let stop = AtomicBool::new(false);
        let mut last_ok_gen = 0;

        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    let mut last_epoch = 0u64;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = server.snapshot();
                        assert!(snap.epoch() >= last_epoch, "epochs went backwards");
                        last_epoch = snap.epoch();
                        assert!(
                            committed.lock().unwrap().contains(&snap.generation()),
                            "reader observed uncommitted generation {}",
                            snap.generation()
                        );
                        // A real query through the snapshot must complete
                        // or fail typed — never panic, never see torn data.
                        let _ = Executor::new().execute(&probe, snap.embedded());
                        reads += 1;
                    }
                    reads
                }));
            }

            let mut expected = server.snapshot().generation();
            for op in &ops {
                if !matches!(op, Op::Checkpoint) {
                    expected += 1;
                    committed.lock().unwrap().insert(expected);
                }
                match op.apply(&server) {
                    Ok(gen) => last_ok_gen = gen,
                    Err(_) => {
                        if !matches!(op, Op::Checkpoint) {
                            committed.lock().unwrap().remove(&expected);
                        }
                        break;
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
            let total_reads: u64 = readers
                .into_iter()
                .map(|r| r.join().expect("reader panicked"))
                .sum();
            assert!(total_reads > 0, "readers never ran");
        });

        // The crash happened mid-run (budgets are all below the fault-free
        // total), the live server still serves the committed epoch, and a
        // reopen recovers exactly it.
        // A late crash point can land inside the final explicit checkpoint
        // with every mutation already committed, so `last_ok_gen` may equal
        // the full history — but the disk must actually have crashed.
        assert!(vfs.crashed(), "budget {point} never tripped");
        assert_eq!(server.snapshot().generation(), last_ok_gen);
        let oracle = oracle_at(&ops, last_ok_gen);
        let reopened = DurableSnapshotServer::open(Arc::new(MemVfs::reopen_from(&vfs)), config())
            .expect("recovery");
        assert_eq!(reopened.snapshot().generation(), last_ok_gen);
        assert_physically_identical(oracle.dataset(), reopened.snapshot().dataset())
            .unwrap_or_else(|e| panic!("crash@{point}: {e}"));
        assert!(reopened.store_stats().recoveries <= 1);
        if point == total / 2 {
            assert_query_parity(oracle.dataset(), reopened.snapshot().dataset())
                .unwrap_or_else(|e| panic!("crash@{point}: {e}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Overload & degradation
// ---------------------------------------------------------------------------

fn load_triple(i: usize) -> Triple {
    Triple::new(
        Term::iri(format!("http://g/s{i}")),
        Term::iri("http://x/p"),
        Term::iri(format!("http://g/o{}", i % 53)),
    )
}

fn load_frame() -> RDFFrame {
    KnowledgeGraph::new("http://g").feature_domain_range("<http://x/p>", "s", "o")
}

fn load_server(config: ServingConfig, rows: usize) -> DurableSnapshotServer {
    let server =
        DurableSnapshotServer::open(Arc::new(MemVfs::new()) as Arc<dyn Vfs>, config).unwrap();
    let mut g = Graph::new();
    for i in 0..rows {
        g.insert(&load_triple(i));
    }
    server.insert_graph("http://g", &g).unwrap();
    server
}

/// The check.sh overload smoke: admission limit `k`, more than `k`
/// concurrent queries, deterministic shed-vs-accepted counts.
#[test]
fn overload_sheds_typed_retryable_and_accepted_results_are_unaffected() {
    let server = load_server(
        ServingConfig {
            max_in_flight: 2,
            max_waiters: 0,
            max_wait: Duration::ZERO,
            ..ServingConfig::default()
        },
        300,
    );
    let frame = load_frame();

    // Unloaded baselines on both surfaces.
    let unloaded_embedded = server.execute(&frame).unwrap();
    let unloaded_wire = server.execute_wire(&frame).unwrap();
    assert!(matches!(unloaded_wire.completeness, Completeness::Complete));

    // Pin the server at saturation: hold every slot directly.
    let p1 = server.governor().admit(QueryClass::Embedded).unwrap();
    let p2 = server.governor().admit(QueryClass::Embedded).unwrap();

    // >k concurrent queries from real threads: every one must come back
    // (never hang) with a typed, retryable Overloaded — and nothing else.
    const THREADS: usize = 6;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let frame = &frame;
            let server = &server;
            handles.push(scope.spawn(move || {
                if t % 2 == 0 {
                    server.execute(frame).expect_err("saturated")
                } else {
                    server.execute_wire(frame).expect_err("saturated")
                }
            }));
        }
        for h in handles {
            let err = h.join().expect("sheded query panicked");
            assert!(
                matches!(err, FrameError::Overloaded(_)),
                "wrong error: {err}"
            );
            assert!(err.is_retryable(), "Overloaded must be retryable");
        }
    });

    // Release the slots: the same queries are admitted again and return
    // byte-identical results to the unloaded run — shed load corrupted
    // nothing.
    drop(p1);
    drop(p2);
    assert_eq!(server.execute(&frame).unwrap(), unloaded_embedded);
    let after_wire = server.execute_wire(&frame).unwrap();
    assert!(matches!(after_wire.completeness, Completeness::Complete));
    assert_eq!(after_wire.frame, unloaded_wire.frame);

    // Counters reconcile exactly: 2 unloaded + 2 permits + 6 shed + 2 after.
    let stats = server.stats();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.admitted, 6);
    assert_eq!(stats.shed, THREADS as u64);
    assert_eq!(stats.admitted + stats.shed, stats.submitted);
    assert!(stats.timed_out <= stats.admitted);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.wal_commits, 1);
}

/// Degradation ladder rung 1 vs rung 2: at saturation, wire sheds
/// immediately even though the waiting room has space, while embedded
/// queues and completes once a slot frees.
#[test]
fn wire_sheds_before_embedded_queues() {
    let server = load_server(
        ServingConfig {
            max_in_flight: 1,
            max_waiters: 4,
            max_wait: Duration::from_secs(30),
            ..ServingConfig::default()
        },
        100,
    );
    let frame = load_frame();
    let unloaded = server.execute(&frame).unwrap();

    let permit = server.governor().admit(QueryClass::Embedded).unwrap();
    // Wire: sheds instantly while the slot is held — no queueing.
    let err = server.execute_wire(&frame).expect_err("wire must shed");
    assert!(matches!(err, FrameError::Overloaded(_)));
    // Embedded: queues (bounded) and completes after the release.
    std::thread::scope(|scope| {
        let waiter = scope.spawn(|| server.execute(&frame));
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        let df = waiter.join().expect("queued query panicked").unwrap();
        assert_eq!(df, unloaded);
    });

    let stats = server.stats();
    assert_eq!(stats.shed, 1, "only the wire query sheds");
    assert_eq!(stats.admitted + stats.shed, stats.submitted);
}

/// Degradation ladder rung 3: pressure on the paginated wire path returns
/// an intact result prefix (`Completeness::Partial`) rather than nothing.
/// Three axes:
///
/// - `max_wire_result_rows` (deterministic): pagination stops at the cap,
///   cut at a chunk boundary, prefix cell-identical to the full result.
/// - the cross-chunk deadline: a zero deadline lets the first chunk
///   through (per-chunk engine evaluation has no deadline) and then stops
///   between chunks with exactly one page assembled.
/// - the engine scan budget: a budget the first chunk cannot meet fails
///   the whole query with a typed error — degraded never means corrupted.
#[test]
fn wire_pressure_degrades_to_an_intact_prefix() {
    const ROWS: usize = 240;
    const PAGE: usize = 16;
    let paged_endpoint = || rdfframes_core::EndpointConfig {
        max_rows_per_request: PAGE,
        ..rdfframes_core::EndpointConfig::default()
    };
    let full = {
        let server = load_server(
            ServingConfig {
                endpoint_config: paged_endpoint(),
                ..ServingConfig::default()
            },
            ROWS,
        );
        let partial = server.execute_wire(&load_frame()).unwrap();
        assert!(matches!(partial.completeness, Completeness::Complete));
        assert_eq!(partial.frame.len(), ROWS);
        partial.frame
    };

    // Row-cap axis: the served prefix is the first ceil(cap/page) chunks of
    // the full result, bit-for-bit.
    for cap in [1u64, 16, 64, 100, 224] {
        let server = load_server(
            ServingConfig {
                endpoint_config: paged_endpoint(),
                max_wire_result_rows: Some(cap),
                ..ServingConfig::default()
            },
            ROWS,
        );
        let partial = server.execute_wire(&load_frame()).unwrap();
        let Completeness::Partial { error } = partial.completeness else {
            panic!("cap {cap} must degrade to a prefix");
        };
        assert!(matches!(error, FrameError::ResourceExhausted(_)), "{error}");
        let n = partial.frame.len();
        let expected = (cap as usize).div_ceil(PAGE) * PAGE;
        assert_eq!(n, expected, "cap {cap}: prefix cut at the wrong chunk");
        assert_eq!(
            partial.frame,
            full.head(n, 0),
            "cap {cap}: prefix not intact"
        );
        // Degradation is not a timeout: the counters must not conflate them.
        assert_eq!(server.stats().timed_out, 0);
    }
    // A cap the full result never reaches changes nothing.
    let server = load_server(
        ServingConfig {
            endpoint_config: paged_endpoint(),
            max_wire_result_rows: Some(1000),
            ..ServingConfig::default()
        },
        ROWS,
    );
    let uncapped = server.execute_wire(&load_frame()).unwrap();
    assert!(matches!(uncapped.completeness, Completeness::Complete));
    assert_eq!(uncapped.frame, full);

    // Cross-chunk deadline axis, pinned at zero so it is deterministic:
    // chunk one evaluates (no per-chunk deadline), then pagination stops.
    let model = rdfframes_core::model::generator::build_query_model(&load_frame()).unwrap();
    let sparql = rdfframes_core::model::render::render(&model);
    let exec = Executor::new().with_wire_deadline(Duration::ZERO);
    let degraded = exec.run_partial(&sparql, server.snapshot().wire()).unwrap();
    let Completeness::Partial { error } = degraded.completeness else {
        panic!("zero cross-chunk deadline must degrade");
    };
    assert!(error.to_string().contains("deadline"), "{error}");
    assert_eq!(
        degraded.frame.len(),
        PAGE,
        "exactly the first chunk survives"
    );
    assert_eq!(degraded.frame, full.head(PAGE, 0));

    // Engine scan-budget axis: per-chunk evaluation cost is constant (the
    // engine evaluates fully and slices), so a budget below it fails the
    // very first chunk — typed, with nothing fabricated.
    let mut strangled = paged_endpoint();
    strangled.budget.max_rows_scanned = Some(1);
    let server = load_server(
        ServingConfig {
            endpoint_config: strangled,
            ..ServingConfig::default()
        },
        ROWS,
    );
    let err = server.execute_wire(&load_frame()).expect_err("over budget");
    assert!(matches!(err, FrameError::ResourceExhausted(_)), "{err}");
}
