//! Embedded-vs-wire differential suite.
//!
//! The embedded execution path (query model → engine plan → columnar
//! cursor → typed DataFrame, no SPARQL text anywhere) must be perfectly
//! interchangeable with the paper-faithful wire path (render → parse →
//! evaluate per page → XML/TSV round trip → per-cell decode). This suite
//! drives every example workload — the 15 synthetic queries of Table 2 and
//! the three case studies — through both and asserts:
//!
//! 1. **Plan mirror**: the direct compiler produces a plan *structurally
//!    equal* to `translate(parse(render(model)))`, pre-optimizer, plus the
//!    same `FROM` list. This is the strongest guarantee: after the shared
//!    optimizer pass both paths execute the identical plan.
//! 2. **DataFrame identity**: both paths produce the *same* DataFrame —
//!    schema, row order, cell types and values — against the XML wire
//!    format (and TSV for the case studies).
//! 3. **Work parity**: `rows_scanned` on the embedded cursor equals the
//!    engine's count for the rendered text (pagination permitting — the
//!    wire side is checked to have served a single chunk).

use std::sync::Arc;

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::Dataset;
use rdfframes_core::model::{compile, generator, render};
use rdfframes_core::{EmbeddedEndpoint, EndpointConfig, InProcessEndpoint, RDFFrame, WireFormat};
use sparql_engine::algebra::translate_query;
use sparql_engine::parser::parse_query;

const SCALE: usize = 150;

fn wire_endpoint(ds: Arc<Dataset>, wire: WireFormat) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        ds,
        EndpointConfig {
            wire,
            ..Default::default()
        },
    )
}

/// Assert all three equivalence layers for one frame.
fn assert_equivalent(id: &str, frame: &RDFFrame, ds: &Arc<Dataset>, wire: WireFormat) {
    // 1. Plan mirror.
    let model = generator::build_query_model(frame)
        .unwrap_or_else(|e| panic!("{id}: model generation failed: {e}"));
    let compiled = compile::compile(&model)
        .unwrap_or_else(|e| panic!("{id}: embedded compilation failed: {e}"));
    let sparql = render::render(&model);
    let parsed = parse_query(&sparql)
        .unwrap_or_else(|e| panic!("{id}: render produced unparseable SPARQL: {e}\n{sparql}"));
    let via_text = translate_query(&parsed).unwrap();
    assert_eq!(
        compiled.plan, via_text,
        "{id}: compiled plan diverges from render→parse→translate\n{sparql}"
    );
    assert_eq!(compiled.from, parsed.from, "{id}: FROM lists diverge");

    // 2. Identical DataFrames end to end.
    let embedded = EmbeddedEndpoint::new(Arc::clone(ds));
    let wire_ep = wire_endpoint(Arc::clone(ds), wire);
    let scanned_before = embedded.rows_scanned();
    let df_embedded = frame
        .execute(&embedded)
        .unwrap_or_else(|e| panic!("{id}: embedded execution failed: {e}"));
    let df_wire = frame
        .execute(&wire_ep)
        .unwrap_or_else(|e| panic!("{id}: wire execution failed: {e}"));
    assert_eq!(
        df_embedded, df_wire,
        "{id}: embedded and wire dataframes differ ({wire:?} wire format)"
    );
    assert!(
        !df_embedded.is_empty(),
        "{id}: empty result at test scale proves nothing"
    );

    // 3. rows_scanned parity (single-chunk wire executions only — the
    // paper's HTTP model re-evaluates per page, which multiplies the wire
    // side's work by the page count).
    if wire_ep.stats().requests() == 1 {
        let (_, stats) = wire_ep
            .engine()
            .execute_with_stats(&sparql)
            .unwrap_or_else(|e| panic!("{id}: direct engine execution failed: {e}"));
        assert_eq!(
            embedded.rows_scanned() - scanned_before,
            stats.rows_scanned,
            "{id}: embedded cursor scanned a different number of index entries"
        );
    }
}

#[test]
fn synthetic_workload_embedded_matches_xml_wire() {
    let ds = data::build_dataset(SCALE);
    for def in queries::all_queries() {
        assert_equivalent(def.id, &def.frame, &ds, WireFormat::Xml);
    }
}

#[test]
fn case_studies_embedded_matches_both_wire_formats() {
    let ds = data::build_dataset(SCALE);
    let p = CaseParams::for_scale(SCALE);
    let cases: Vec<(&str, RDFFrame)> = vec![
        (
            "cs1_movie_genre",
            casestudies::movie_genre_classification(p.prolific),
        ),
        (
            "cs2_topic_modeling",
            casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
        ),
        ("cs3_kg_embedding", casestudies::kg_embedding()),
    ];
    for (id, frame) in &cases {
        assert_equivalent(id, frame, &ds, WireFormat::Xml);
        assert_equivalent(id, frame, &ds, WireFormat::Tsv);
    }
}

/// Paginated wire executions must still agree with the embedded result
/// (modulo the work-parity check, which pagination legitimately breaks).
#[test]
fn pagination_does_not_break_equivalence() {
    let ds = data::build_dataset(SCALE);
    let frame = casestudies::kg_embedding();
    let embedded = EmbeddedEndpoint::new(Arc::clone(&ds));
    let wire_ep = InProcessEndpoint::with_config(
        Arc::clone(&ds),
        EndpointConfig {
            max_rows_per_request: 500,
            wire: WireFormat::Xml,
            ..Default::default()
        },
    );
    let df_embedded = frame.execute(&embedded).unwrap();
    let df_wire = frame.execute(&wire_ep).unwrap();
    assert!(
        wire_ep.stats().requests() > 1,
        "test should actually paginate"
    );
    assert_eq!(df_embedded, df_wire);
    // The wire path re-planned nothing after the first chunk.
    assert_eq!(wire_ep.cached_plans(), 1);
}

/// Float cells produced by the embedded typed-column path must round-trip
/// through display/CSV exactly like the wire path's (no `1` vs `1.0`
/// drift) — the regression the columnar decode could have introduced.
#[test]
fn float_columns_round_trip_identically() {
    let ds = data::build_dataset(SCALE);
    let frame = data::dbpedia_graph()
        .feature_domain_range("dbpp:starring", "movie", "actor")
        .expand("movie", "dbpp:runtime", "runtime")
        .group_by(&["actor"])
        .avg("runtime", "mean_runtime");

    let embedded = EmbeddedEndpoint::new(Arc::clone(&ds));
    let wire_ep = wire_endpoint(Arc::clone(&ds), WireFormat::Xml);
    let df_embedded = frame.execute(&embedded).unwrap();
    let df_wire = frame.execute(&wire_ep).unwrap();
    assert_eq!(df_embedded, df_wire);

    // AVG over integers yields doubles; find one with an integral value so
    // the formatting distinction actually bites, and check the text forms.
    let csv_embedded = dataframe::csv::to_csv(&df_embedded);
    let csv_wire = dataframe::csv::to_csv(&df_wire);
    assert_eq!(csv_embedded, csv_wire);
    let back = dataframe::csv::from_csv(&csv_embedded).unwrap();
    assert_eq!(back, df_embedded, "CSV round trip must preserve cell types");
    let has_integral_float = df_embedded
        .column("mean_runtime")
        .unwrap()
        .any(|c| matches!(c, dataframe::Cell::Float(f) if f.fract() == 0.0));
    if has_integral_float {
        assert!(
            csv_embedded.contains(".0"),
            "integral floats must keep their decimal point in CSV:\n{csv_embedded}"
        );
    }
}
