//! Fixed-seed chaos acceptance suite over the paper workload.
//!
//! The rdfframes-core chaos tests exercise the retry machinery on toy
//! graphs; this suite drives the **real experiment workload** — the
//! paper's Q1–Q15 plus the perf cases Q16–Q19 — through a
//! [`FaultyEndpoint`] with a small page size (so every query paginates)
//! and asserts the resilience contract end to end:
//!
//! - faults under the retry limit → the assembled dataframe is
//!   **byte-identical** to the fault-free run;
//! - faults past the retry limit → [`Executor::run`] surfaces a typed
//!   retryable error, and [`Executor::run_partial`] keeps the intact
//!   prefix tagged [`Completeness::Partial`];
//! - a fixed-seed random chaos run replays identically and never
//!   corrupts a result it manages to assemble.
//!
//! Everything here is deterministic: scripted fault plans or one fixed
//! seed, never wall-clock randomness.

use std::sync::Arc;

use bench::data;
use bench::queries;
use rdf_model::Dataset;
use rdfframes_core::{
    Completeness, EndpointConfig, Executor, Fault, FaultyEndpoint, InProcessEndpoint, RetryPolicy,
};

const SCALE: usize = 60;
/// Small enough that every workload query needs several chunks.
const PAGE: usize = 16;
const CHAOS_SEED: u64 = 0xC0FFEE;

fn endpoint(ds: &Arc<Dataset>) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        Arc::clone(ds),
        EndpointConfig {
            max_rows_per_request: PAGE,
            ..Default::default()
        },
    )
}

/// One retryable fault before every chunk: requests alternate
/// fault/clean, so `max_attempts = 2` is exactly enough. Schema drift is
/// kept off the first chunk, where it is undetectable by construction
/// (no reference header exists yet).
fn alternating_script(requests: usize) -> Vec<Option<Fault>> {
    let mut script = Vec::with_capacity(requests * 2);
    for i in 0..requests {
        script.push(Some(match i % 3 {
            0 => Fault::Transient,
            1 => Fault::TruncatedChunk,
            _ => Fault::SchemaDrift,
        }));
        script.push(None);
    }
    script
}

#[test]
fn every_workload_query_survives_scripted_faults_byte_identically() {
    let ds = data::build_dataset(SCALE);
    let clean = endpoint(&ds);
    for q in queries::all_queries() {
        let expected = q
            .frame
            .execute(&clean)
            .unwrap_or_else(|e| panic!("{}: clean run failed: {e}", q.id));
        // Enough faulted slots to cover every chunk of the largest result.
        let faulty = FaultyEndpoint::scripted(endpoint(&ds), alternating_script(256));
        // Per-query executor so its stats isolate this query's retries.
        let executor = Executor::new().with_retry(RetryPolicy::fast(2));
        let got = executor
            .execute(&q.frame, &faulty)
            .unwrap_or_else(|e| panic!("{}: faulted run failed: {e}", q.id));
        assert_eq!(got, expected, "{}: retried result diverged", q.id);
        assert!(
            faulty.faults_injected() > 0,
            "{}: script injected nothing — page too large?",
            q.id
        );
        // Observability: every injected fault was answered by exactly one
        // re-request (the alternating script never needs a second), and
        // fast() policies sleep zero time.
        assert_eq!(
            executor.stats().retries(),
            faulty.faults_injected(),
            "{}: retry counter out of step with injected faults",
            q.id
        );
        assert_eq!(
            executor.stats().backoff_total(),
            std::time::Duration::ZERO,
            "{}: fast() policy must not sleep",
            q.id
        );
    }
}

#[test]
fn fixed_seed_chaos_replays_identically_and_never_corrupts() {
    let ds = data::build_dataset(SCALE);
    let clean = endpoint(&ds);
    let executor = Executor::new().with_retry(RetryPolicy::fast(4));
    let run_all = || {
        queries::all_queries()
            .into_iter()
            .map(|q| {
                let faulty = FaultyEndpoint::seeded(endpoint(&ds), CHAOS_SEED, 0.3);
                (q.id, executor.execute(&q.frame, &faulty))
            })
            .collect::<Vec<_>>()
    };
    let first = run_all();
    let second = run_all();
    for ((id, a), (_, b)) in first.iter().zip(&second) {
        assert_eq!(a.is_ok(), b.is_ok(), "{id}: chaos run did not replay");
    }
    for (id, result) in &first {
        match result {
            // Whatever survives the chaos must match the fault-free run.
            Ok(df) => {
                let q = queries::all_queries()
                    .into_iter()
                    .find(|q| &q.id == id)
                    .unwrap();
                let expected = q.frame.execute(&clean).unwrap();
                assert_eq!(*df, expected, "{id}: chaos corrupted the result");
            }
            // A give-up must be a typed retryable transport error.
            Err(e) => assert!(e.is_retryable(), "{id}: non-transport chaos error {e}"),
        }
    }
}

#[test]
fn faults_past_the_retry_limit_keep_the_intact_prefix() {
    let ds = data::build_dataset(SCALE);
    let q = queries::all_queries()
        .into_iter()
        .find(|q| q.id == "Q16")
        .expect("sort-heavy Q16 in workload");
    let sparql = q.frame.to_sparql();
    let clean = endpoint(&ds);
    let executor = Executor::new().with_retry(RetryPolicy::fast(2));
    let expected = executor.run(&sparql, &clean).unwrap();
    assert!(expected.len() > 2 * PAGE, "Q16 must paginate");

    // Chunks 0 and 1 arrive (chunk 1 after one retry); chunk 2 fails twice
    // — past the budget of 2 attempts.
    let script = vec![
        None,
        Some(Fault::Transient),
        None,
        Some(Fault::TruncatedChunk),
        Some(Fault::Transient),
    ];
    let faulty = FaultyEndpoint::scripted(endpoint(&ds), script);
    let partial = executor.run_partial(&sparql, &faulty).unwrap();
    match &partial.completeness {
        Completeness::Partial { error } => {
            assert!(error.is_retryable(), "wrong give-up error: {error}")
        }
        Completeness::Complete => panic!("expected a partial result"),
    }
    // Attempt accounting: 3 faults injected, but only 2 earned a
    // re-request — the third fault exhausted the 2-attempt budget, so the
    // executor gave up instead of retrying again.
    assert_eq!(faulty.faults_injected(), 3);
    assert_eq!(executor.stats().retries(), 2);
    assert_eq!(partial.frame.len(), 2 * PAGE, "prefix must be whole chunks");
    assert_eq!(
        partial.frame,
        expected.head(2 * PAGE, 0),
        "prefix diverged from the fault-free rows"
    );

    // The all-or-nothing surface reports the same failure as an error.
    let faulty = FaultyEndpoint::scripted(
        endpoint(&ds),
        vec![
            None,
            Some(Fault::Transient),
            None,
            Some(Fault::TruncatedChunk),
            Some(Fault::Transient),
        ],
    );
    let err = executor.run(&sparql, &faulty).unwrap_err();
    assert!(err.is_retryable(), "run() must surface the transport error");
}
