//! The synthetic workload: the paper's 15 queries exercising different
//! RDFFrames
//! features (paper Section 6.2 / Table 2), each with its RDFFrames pipeline
//! and an expert-written SPARQL query.

use rdfframes_core::{JoinType, RDFFrame, SortOrder};

use crate::data::{self, expert_prefixes};

/// One workload query.
pub struct QueryDef {
    /// Identifier (`Q1` ... `Q15`).
    pub id: &'static str,
    /// Table 2's English description.
    pub description: &'static str,
    /// The RDFFrames pipeline.
    pub frame: RDFFrame,
    /// The expert-written SPARQL query.
    pub expert: String,
}

fn q(id: &'static str, description: &'static str, frame: RDFFrame, expert: String) -> QueryDef {
    QueryDef {
        id,
        description,
        frame,
        expert,
    }
}

fn expert(body: &str) -> String {
    format!("{}{body}", expert_prefixes())
}

/// Build the workload queries (the paper's Q1–Q15 plus the perf cases:
/// sort-heavy Q16, star-join Q17, merge-left-join Q18, and sorted
/// aggregation Q19).
pub fn all_queries() -> Vec<QueryDef> {
    let dbp = data::dbpedia_graph();
    let yago = data::yago_graph();
    let mut out = Vec::with_capacity(19);

    // Q1: players with nationality/birthPlace/birthDate + optional team
    // sponsor/name/president.
    out.push(q(
        "Q1",
        "Basketball players with team attributes if available",
        dbp.seed("?player", "rdf:type", "dbpr:BasketballPlayer")
            .expand("player", "dbpp:nationality", "nationality")
            .expand("player", "dbpp:birthPlace", "place")
            .expand("player", "dbpp:birthDate", "bdate")
            .expand("player", "dbpp:team", "team")
            .expand_optional("team", "dbpp:sponsor", "sponsor")
            .expand_optional("team", "dbpp:name", "name")
            .expand_optional("team", "dbpp:president", "president"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?player rdf:type dbpr:BasketballPlayer ;\n\
                       dbpp:nationality ?nationality ;\n\
                       dbpp:birthPlace ?place ;\n\
                       dbpp:birthDate ?bdate ;\n\
                       dbpp:team ?team\n\
               OPTIONAL { ?team dbpp:sponsor ?sponsor }\n\
               OPTIONAL { ?team dbpp:name ?name }\n\
               OPTIONAL { ?team dbpp:president ?president }\n}",
        ),
    ));

    // Q2: team attributes (required) + player count per team.
    out.push(q(
        "Q2",
        "Teams with sponsor/name/president and number of players",
        dbp.seed("?player", "dbpp:team", "?team")
            .group_by(&["team"])
            .count("player", "player_count", false)
            .expand("team", "dbpp:sponsor", "sponsor")
            .expand("team", "dbpp:name", "name")
            .expand("team", "dbpp:president", "president"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?team dbpp:sponsor ?sponsor ; dbpp:name ?name ; dbpp:president ?president\n\
               { SELECT DISTINCT ?team (COUNT(?player) AS ?player_count)\n\
                 WHERE { ?player dbpp:team ?team } GROUP BY ?team }\n}",
        ),
    ));

    // Q3: like Q2 but attributes optional.
    out.push(q(
        "Q3",
        "Teams with optional attributes and player count",
        dbp.seed("?player", "dbpp:team", "?team")
            .group_by(&["team"])
            .count("player", "player_count", false)
            .expand_optional("team", "dbpp:sponsor", "sponsor")
            .expand_optional("team", "dbpp:name", "name")
            .expand_optional("team", "dbpp:president", "president"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               { SELECT DISTINCT ?team (COUNT(?player) AS ?player_count)\n\
                 WHERE { ?player dbpp:team ?team } GROUP BY ?team }\n\
               OPTIONAL { ?team dbpp:sponsor ?sponsor }\n\
               OPTIONAL { ?team dbpp:name ?name }\n\
               OPTIONAL { ?team dbpp:president ?president }\n}",
        ),
    ));

    // Q4: American actors present in both DBpedia and YAGO.
    out.push(q(
        "Q4",
        "American actors available in both DBpedia and YAGO",
        dbp.seed("?actor", "dbpp:birthPlace", "dbpr:United_States")
            .join(
                &yago.seed("?actor", "rdf:type", "yago:Actor"),
                "actor",
                JoinType::Inner,
            ),
        expert(
            "SELECT * WHERE {\n\
               GRAPH <http://dbpedia.org> { ?actor dbpp:birthPlace dbpr:United_States }\n\
               GRAPH <http://yago-knowledge.org> { ?actor rdf:type yago:Actor }\n}",
        ),
    ));

    // Q5: films from Indian/US studios (excluding Eskay Movies) in selected
    // genres, with actor/director/producer/language.
    out.push(q(
        "Q5",
        "Films by studio country and genre with cast attributes",
        dbp.seed("?movie", "rdf:type", "dbpr:Film")
            .expand("movie", "dbpp:country", "country")
            .filter("country", &["In(dbpr:India, dbpr:United_States)"])
            .expand("movie", "dbpp:studio", "studio")
            .filter("studio", &["NotIn(dbpr:Eskay_Movies)"])
            .expand("movie", "dbpo:genre", "genre")
            .filter(
                "genre",
                &["In(dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep)"],
            )
            .expand("movie", "dbpp:starring", "actor")
            .expand("movie", "dbpo:director", "director")
            .expand("movie", "dbpp:producer", "producer")
            .expand("movie", "dbpp:language", "language"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?movie rdf:type dbpr:Film ;\n\
                      dbpp:country ?country ;\n\
                      dbpp:studio ?studio ;\n\
                      dbpo:genre ?genre ;\n\
                      dbpp:starring ?actor ;\n\
                      dbpo:director ?director ;\n\
                      dbpp:producer ?producer ;\n\
                      dbpp:language ?language\n\
               FILTER ( ?country IN (dbpr:India, dbpr:United_States) )\n\
               FILTER ( ?studio NOT IN (dbpr:Eskay_Movies) )\n\
               FILTER ( ?genre IN (dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep) )\n}",
        ),
    ));

    // Q6: Q1 with required team attributes.
    out.push(q(
        "Q6",
        "Basketball players with required team attributes",
        dbp.seed("?player", "rdf:type", "dbpr:BasketballPlayer")
            .expand("player", "dbpp:nationality", "nationality")
            .expand("player", "dbpp:birthPlace", "place")
            .expand("player", "dbpp:birthDate", "bdate")
            .expand("player", "dbpp:team", "team")
            .expand("team", "dbpp:sponsor", "sponsor")
            .expand("team", "dbpp:name", "name")
            .expand("team", "dbpp:president", "president"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?player rdf:type dbpr:BasketballPlayer ;\n\
                       dbpp:nationality ?nationality ;\n\
                       dbpp:birthPlace ?place ;\n\
                       dbpp:birthDate ?bdate ;\n\
                       dbpp:team ?team .\n\
               ?team dbpp:sponsor ?sponsor ; dbpp:name ?name ; dbpp:president ?president\n}",
        ),
    ));

    // Q7: players, their teams, and each team's size.
    let players = dbp.seed("?player", "dbpp:team", "?team");
    let team_sizes = players
        .clone()
        .group_by(&["team"])
        .count("player", "team_size", false);
    out.push(q(
        "Q7",
        "Players with their team and team size",
        players.clone().join(&team_sizes, "team", JoinType::Inner),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?player dbpp:team ?team\n\
               { SELECT DISTINCT ?team (COUNT(?player) AS ?team_size)\n\
                 WHERE { ?player dbpp:team ?team } GROUP BY ?team }\n}",
        ),
    ));

    // Q8: films with many attributes and several filters.
    out.push(q(
        "Q8",
        "Films with full attributes filtered on country/studio/genre/runtime",
        dbp.seed("?movie", "rdf:type", "dbpr:Film")
            .expand("movie", "dbpp:starring", "actor")
            .expand("movie", "dbpo:director", "director")
            .expand("movie", "dbpp:country", "country")
            .filter("country", &["In(dbpr:India, dbpr:United_States)"])
            .expand("movie", "dbpp:producer", "producer")
            .expand("movie", "dbpp:language", "language")
            .expand("movie", "dbpp:title", "title")
            .expand("movie", "dbpo:genre", "genre")
            .filter(
                "genre",
                &["In(dbpr:Drama, dbpr:Comedy, dbpr:Action, dbpr:Film_score)"],
            )
            .expand("movie", "dbpp:story", "story")
            .expand("movie", "dbpp:studio", "studio")
            .filter("studio", &["NotIn(dbpr:Eskay_Movies)"])
            .expand("movie", "dbpp:runtime", "runtime")
            .filter("runtime", &[">=100"]),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?movie rdf:type dbpr:Film ;\n\
                      dbpp:starring ?actor ;\n\
                      dbpo:director ?director ;\n\
                      dbpp:country ?country ;\n\
                      dbpp:producer ?producer ;\n\
                      dbpp:language ?language ;\n\
                      dbpp:title ?title ;\n\
                      dbpo:genre ?genre ;\n\
                      dbpp:story ?story ;\n\
                      dbpp:studio ?studio ;\n\
                      dbpp:runtime ?runtime\n\
               FILTER ( ?country IN (dbpr:India, dbpr:United_States) )\n\
               FILTER ( ?genre IN (dbpr:Drama, dbpr:Comedy, dbpr:Action, dbpr:Film_score) )\n\
               FILTER ( ?studio NOT IN (dbpr:Eskay_Movies) )\n\
               FILTER ( ?runtime >= 100 )\n}",
        ),
    ));

    // Q9: pairs of films sharing genre and country.
    let film_side = |film: &str, actor: &str, director: &str| {
        dbp.seed(&format!("?{film}"), "rdf:type", "dbpr:Film")
            .expand(film, "dbpo:genre", "genre")
            .expand(film, "dbpp:country", "country")
            .expand(film, "dbpp:starring", actor)
            .expand_dir(
                film,
                "dbpo:director",
                director,
                rdfframes_core::Direction::Out,
                true,
            )
    };
    out.push(q(
        "Q9",
        "Pairs of films sharing genre and production country",
        film_side("film1", "actor1", "director1").join(
            &film_side("film2", "actor2", "director2"),
            "genre",
            JoinType::Inner,
        ),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?film1 rdf:type dbpr:Film ; dbpo:genre ?genre ; dbpp:country ?country ;\n\
                      dbpp:starring ?actor1\n\
               OPTIONAL { ?film1 dbpo:director ?director1 }\n\
               ?film2 rdf:type dbpr:Film ; dbpo:genre ?genre ; dbpp:country ?country ;\n\
                      dbpp:starring ?actor2\n\
               OPTIONAL { ?film2 dbpo:director ?director2 }\n}",
        ),
    ));

    // Q10: athletes with birthplace and the number of athletes born there.
    let athletes = dbp.seed("?athlete", "rdf:type", "dbpr:Athlete").expand(
        "athlete",
        "dbpp:birthPlace",
        "place",
    );
    let by_place = athletes
        .clone()
        .group_by(&["place"])
        .count("athlete", "born_there", false);
    out.push(q(
        "Q10",
        "Athletes with per-birthplace athlete counts",
        athletes.clone().join(&by_place, "place", JoinType::Inner),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?athlete rdf:type dbpr:Athlete ; dbpp:birthPlace ?place\n\
               { SELECT DISTINCT ?place (COUNT(?athlete) AS ?born_there)\n\
                 WHERE { ?athlete rdf:type dbpr:Athlete ; dbpp:birthPlace ?place }\n\
                 GROUP BY ?place }\n}",
        ),
    ));

    // Q11: actors in DBpedia or YAGO (full outer join across graphs).
    out.push(q(
        "Q11",
        "Actors available in DBpedia or YAGO",
        dbp.seed("?actor", "rdf:type", "dbpr:Actor")
            .expand("actor", "dbpp:birthPlace", "place")
            .join(
                &yago.seed("?actor", "rdf:type", "yago:Actor"),
                "actor",
                JoinType::Outer,
            ),
        expert(
            "SELECT * WHERE {\n\
               {\n\
                 { SELECT * WHERE { GRAPH <http://dbpedia.org> {\n\
                     ?actor rdf:type dbpr:Actor ; dbpp:birthPlace ?place } } }\n\
                 OPTIONAL { SELECT * WHERE { GRAPH <http://yago-knowledge.org> {\n\
                     ?actor rdf:type yago:Actor } } }\n\
               } UNION {\n\
                 { SELECT * WHERE { GRAPH <http://yago-knowledge.org> {\n\
                     ?actor rdf:type yago:Actor } } }\n\
                 OPTIONAL { SELECT * WHERE { GRAPH <http://dbpedia.org> {\n\
                     ?actor rdf:type dbpr:Actor ; dbpp:birthPlace ?place } } }\n\
               }\n}",
        ),
    ));

    // Q12: team sizes with team names (expand after grouping).
    out.push(q(
        "Q12",
        "Team player counts with team names",
        dbp.seed("?player", "dbpp:team", "?team")
            .group_by(&["team"])
            .count("player", "player_count", false)
            .expand("team", "dbpp:name", "name"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?team dbpp:name ?name\n\
               { SELECT DISTINCT ?team (COUNT(?player) AS ?player_count)\n\
                 WHERE { ?player dbpp:team ?team } GROUP BY ?team }\n}",
        ),
    ));

    // Q13: films with required attributes and optional director/producer/title.
    out.push(q(
        "Q13",
        "Films with optional director/producer/title",
        dbp.seed("?movie", "rdf:type", "dbpr:Film")
            .expand("movie", "dbpp:starring", "actor")
            .expand("movie", "dbpp:language", "language")
            .expand("movie", "dbpp:country", "country")
            .expand("movie", "dbpo:genre", "genre")
            .expand("movie", "dbpp:story", "story")
            .expand("movie", "dbpp:studio", "studio")
            .expand_optional("movie", "dbpo:director", "director")
            .expand_optional("movie", "dbpp:producer", "producer")
            .expand_optional("movie", "dbpp:title", "title"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?movie rdf:type dbpr:Film ;\n\
                      dbpp:starring ?actor ;\n\
                      dbpp:language ?language ;\n\
                      dbpp:country ?country ;\n\
                      dbpo:genre ?genre ;\n\
                      dbpp:story ?story ;\n\
                      dbpp:studio ?studio\n\
               OPTIONAL { ?movie dbpo:director ?director }\n\
               OPTIONAL { ?movie dbpp:producer ?producer }\n\
               OPTIONAL { ?movie dbpp:title ?title }\n}",
        ),
    ));

    // Q14: Q5's filters with optional producer/director/title.
    out.push(q(
        "Q14",
        "Filtered films with optional attributes",
        dbp.seed("?movie", "rdf:type", "dbpr:Film")
            .expand("movie", "dbpp:country", "country")
            .filter("country", &["In(dbpr:India, dbpr:United_States)"])
            .expand("movie", "dbpp:studio", "studio")
            .filter("studio", &["NotIn(dbpr:Eskay_Movies)"])
            .expand("movie", "dbpo:genre", "genre")
            .filter(
                "genre",
                &["In(dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep)"],
            )
            .expand("movie", "dbpp:starring", "actor")
            .expand("movie", "dbpp:language", "language")
            .expand_optional("movie", "dbpp:producer", "producer")
            .expand_optional("movie", "dbpo:director", "director")
            .expand_optional("movie", "dbpp:title", "title"),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?movie rdf:type dbpr:Film ;\n\
                      dbpp:country ?country ;\n\
                      dbpp:studio ?studio ;\n\
                      dbpo:genre ?genre ;\n\
                      dbpp:starring ?actor ;\n\
                      dbpp:language ?language\n\
               OPTIONAL { ?movie dbpp:producer ?producer }\n\
               OPTIONAL { ?movie dbpo:director ?director }\n\
               OPTIONAL { ?movie dbpp:title ?title }\n\
               FILTER ( ?country IN (dbpr:India, dbpr:United_States) )\n\
               FILTER ( ?studio NOT IN (dbpr:Eskay_Movies) )\n\
               FILTER ( ?genre IN (dbpr:Film_score, dbpr:Soundtrack, dbpr:Rock_music, dbpr:House_music, dbpr:Dubstep) )\n}",
        ),
    ));

    // Q15: books by American authors who wrote more than two books.
    let books = dbp
        .seed("?book", "dbpo:author", "?author")
        .expand("author", "dbpp:birthPlace", "bplace")
        .expand("author", "dbpp:country", "country")
        .expand_optional("author", "dbpp:education", "education")
        .expand("book", "dbpp:title", "title")
        .expand("book", "dcterms:subject", "subject")
        .expand_optional("book", "dbpp:publisher", "publisher");
    let american_prolific = dbp
        .seed("?book", "dbpo:author", "?author")
        .expand("author", "dbpp:birthPlace", "bplace")
        .filter("bplace", &["=dbpr:United_States"])
        .group_by(&["author"])
        .count("book", "book_count", true)
        .filter("book_count", &[">2"]);
    out.push(q(
        "Q15",
        "Books by prolific American authors with author/book attributes",
        books.join(&american_prolific, "author", JoinType::Inner),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?book dbpo:author ?author ;\n\
                     dbpp:title ?title ;\n\
                     dcterms:subject ?subject .\n\
               ?author dbpp:birthPlace ?bplace ;\n\
                       dbpp:country ?country\n\
               OPTIONAL { ?author dbpp:education ?education }\n\
               OPTIONAL { ?book dbpp:publisher ?publisher }\n\
               { SELECT DISTINCT ?author (COUNT(DISTINCT ?book) AS ?book_count)\n\
                 WHERE { ?book dbpo:author ?author .\n\
                         ?author dbpp:birthPlace ?bplace\n\
                         FILTER ( ?bplace = dbpr:United_States ) }\n\
                 GROUP BY ?author\n\
                 HAVING ( COUNT(DISTINCT ?book) > 2 ) }\n}",
        ),
    ));

    // Q16: sort-heavy — every starring pair, fully ordered. Exercises the
    // engine's term-rank ORDER BY (plain variables, no LIMIT, so nothing
    // fuses to TopK and the whole result sorts).
    out.push(q(
        "Q16",
        "All starring pairs sorted by actor then movie",
        dbp.seed("?movie", "dbpp:starring", "?actor")
            .sort(&[("actor", SortOrder::Asc), ("movie", SortOrder::Asc)]),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               ?movie dbpp:starring ?actor\n\
             } ORDER BY ?actor ?movie",
        ),
    ));

    // Q17: star join — two single-pattern groups sharing ?film, each a POS
    // scan with a bound (predicate, object) prefix, so both arrive sorted
    // on ?film and the optimizer's merge-join rewrite fires.
    let films = dbp.seed("?film", "rdf:type", "dbpr:Film");
    let us_films = dbp.seed("?film", "dbpp:country", "dbpr:United_States");
    out.push(q(
        "Q17",
        "US-produced films (star join on film)",
        films.join(&us_films, "film", JoinType::Inner),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               { ?film rdf:type dbpr:Film }\n\
               { ?film dbpp:country dbpr:United_States }\n}",
        ),
    ));

    // Q18: OPTIONAL-heavy — every film, left-joined with its Film_score
    // tag and runtime. Both sides lead with POS scans bound on
    // (predicate, object), so both arrive sorted on ?film and the
    // optimizer's merge-left-join rewrite fires (unmatched films survive
    // with unbound runtime, as OPTIONAL requires).
    let films = dbp.seed("?film", "rdf:type", "dbpr:Film");
    let scored = dbp.seed("?film", "dbpo:genre", "dbpr:Film_score").expand(
        "film",
        "dbpp:runtime",
        "runtime",
    );
    out.push(q(
        "Q18",
        "Films with optional Film_score tag and runtime (merge left join)",
        films.join(&scored, "film", JoinType::Left),
        expert(
            "SELECT * FROM <http://dbpedia.org> WHERE {\n\
               { ?film rdf:type dbpr:Film }\n\
               OPTIONAL { ?film dbpo:genre dbpr:Film_score . ?film dbpp:runtime ?runtime }\n}",
        ),
    ));

    // Q19: sorted aggregation — movie counts per actor off the POS
    // starring scan, whose output arrives sorted on [?actor, ?movie]:
    // GROUP BY ?actor is an order prefix, so grouping degenerates to run
    // detection over raw id columns instead of hashing.
    out.push(q(
        "Q19",
        "Movies per actor (sorted-input aggregation)",
        dbp.seed("?movie", "dbpp:starring", "?actor")
            .group_by(&["actor"])
            .count("movie", "movie_count", true),
        expert(
            "SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count)\n\
             FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor }\n\
             GROUP BY ?actor",
        ),
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::data;
    use rdfframes_core::reference::compare_unordered;

    #[test]
    fn all_queries_generate_parseable_sparql() {
        for def in all_queries() {
            let optimized = def.frame.to_sparql();
            sparql_engine::parser::parse_query(&optimized)
                .unwrap_or_else(|e| panic!("{} optimized rejected: {e}\n{optimized}", def.id));
            let naive = def.frame.to_naive_sparql();
            sparql_engine::parser::parse_query(&naive)
                .unwrap_or_else(|e| panic!("{} naive rejected: {e}\n{naive}", def.id));
            sparql_engine::parser::parse_query(&def.expert)
                .unwrap_or_else(|e| panic!("{} expert rejected: {e}\n{}", def.id, def.expert));
        }
    }

    #[test]
    fn rdfframes_matches_expert_on_all_queries() {
        let ds = data::build_dataset(200);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        for def in all_queries() {
            let ours = baselines::rdfframes(&def.frame, &endpoint)
                .unwrap_or_else(|e| panic!("{} rdfframes failed: {e}", def.id));
            let expert = baselines::expert_sparql(&def.expert, &endpoint)
                .unwrap_or_else(|e| panic!("{} expert failed: {e}", def.id));
            // Project onto the expert's columns (RDFFrames may expose
            // helper columns like aggregation inputs).
            let cols: Vec<&str> = expert.columns().iter().map(String::as_str).collect();
            let ours_proj = ours.select(&cols);
            compare_unordered(&ours_proj, &expert)
                .unwrap_or_else(|e| panic!("{} mismatch: {e}", def.id));
            assert!(
                !ours.is_empty(),
                "{} returned no rows at test scale",
                def.id
            );
        }
    }

    #[test]
    fn naive_matches_optimized_on_all_queries() {
        let ds = data::build_dataset(150);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        for def in all_queries() {
            let ours = baselines::rdfframes(&def.frame, &endpoint).unwrap();
            let naive = baselines::naive(&def.frame, &endpoint)
                .unwrap_or_else(|e| panic!("{} naive failed: {e}", def.id));
            compare_unordered(&ours, &naive)
                .unwrap_or_else(|e| panic!("{} naive mismatch: {e}", def.id));
        }
    }
}
