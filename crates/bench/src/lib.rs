//! Experiment harness reproducing the RDFFrames evaluation (Section 6).
//!
//! - [`data`]: dataset builders at configurable scale.
//! - [`baselines`]: every alternative compared in the paper — naive query
//!   generation, Navigation + dataframe, rdflib + dataframe,
//!   SPARQL-dump + dataframe, and expert-written SPARQL.
//! - [`casestudies`]: the three case studies (movie-genre classification,
//!   topic modeling, knowledge-graph embedding) with their RDFFrames code
//!   and expert queries.
//! - [`queries`]: the 15-query synthetic workload of Table 2.
//! - [`harness`]: timing/reporting utilities shared by the `fig3`, `fig4`,
//!   `fig5` binaries and the Criterion benches.

pub mod baselines;
pub mod casestudies;
pub mod data;
pub mod harness;
pub mod queries;
