//! The three case studies of Section 6.1, parameterized by the thresholds
//! so they select non-empty results at synthetic scale.
//!
//! Each case study provides the RDFFrames pipeline (mirroring the paper's
//! listings) and the corresponding expert-written SPARQL query.

use rdfframes_core::{JoinType, RDFFrame};

use crate::data::{self, expert_prefixes};

/// Case study 1 — movie genre classification (paper Listing 3).
///
/// Movies starring American actors OR prolific actors (≥ `prolific`
/// movies), with name/subject/country attributes and optional genre.
pub fn movie_genre_classification(prolific: usize) -> RDFFrame {
    let graph = data::dbpedia_graph();
    let movies = graph
        .feature_domain_range("dbpp:starring", "movie", "actor")
        .expand("actor", "dbpp:birthPlace", "actor_country")
        .expand("actor", "rdfs:label", "actor_name")
        .expand("movie", "rdfs:label", "movie_name")
        .expand("movie", "dcterms:subject", "subject")
        .expand("movie", "dbpp:country", "movie_country")
        .expand_optional("movie", "dbpo:genre", "genre")
        .cache();
    let american = movies
        .clone()
        .filter("actor_country", &["regex(\"United_States\")"]);
    let prolific_frame = movies
        .clone()
        .group_by(&["actor"])
        .count("movie", "movie_count", true)
        .filter("movie_count", &[&format!(">={prolific}")]);
    american
        .join(&prolific_frame, "actor", JoinType::Outer)
        .join(&movies, "actor", JoinType::Inner)
}

/// Expert SPARQL for case study 1 (paper Listing 4 shape).
pub fn movie_genre_expert(prolific: usize) -> String {
    let patterns = "?movie dbpp:starring ?actor .\n\
         ?actor dbpp:birthPlace ?actor_country ;\n\
                rdfs:label ?actor_name .\n\
         ?movie rdfs:label ?movie_name ;\n\
                dcterms:subject ?subject ;\n\
                dbpp:country ?movie_country\n\
         OPTIONAL { ?movie dbpo:genre ?genre }\n";
    format!(
        "{prefixes}\
         SELECT *\n\
         FROM <http://dbpedia.org>\n\
         WHERE {{\n\
           {patterns}\
           {{\n\
             {{ SELECT * WHERE {{\n\
                 {{ SELECT * WHERE {{\n\
                     {patterns}\
                     FILTER regex(str(?actor_country), \"United_States\")\n\
                 }} }}\n\
                 OPTIONAL {{\n\
                   SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) WHERE {{\n\
                     {patterns}\
                   }}\n\
                   GROUP BY ?actor\n\
                   HAVING ( COUNT(DISTINCT ?movie) >= {prolific} )\n\
                 }}\n\
             }} }}\n\
             UNION\n\
             {{ SELECT * WHERE {{\n\
                 {{ SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) WHERE {{\n\
                     {patterns}\
                 }}\n\
                 GROUP BY ?actor\n\
                 HAVING ( COUNT(DISTINCT ?movie) >= {prolific} )\n\
                 }}\n\
                 OPTIONAL {{\n\
                   SELECT * WHERE {{\n\
                     {patterns}\
                     FILTER regex(str(?actor_country), \"United_States\")\n\
                   }}\n\
                 }}\n\
             }} }}\n\
           }}\n\
         }}",
        prefixes = expert_prefixes(),
    )
}

/// Case study 2 — topic modeling (paper Listing 5).
///
/// Titles of papers published since `recent_year` by authors with ≥
/// `threshold` VLDB/SIGMOD papers since `since_year`.
pub fn topic_modeling(since_year: i64, threshold: usize, recent_year: i64) -> RDFFrame {
    let graph = data::dblp_graph();
    let papers = graph
        .entities("swrc:InProceedings", "paper")
        .expand("paper", "dc:creator", "author")
        .expand("paper", "dcterm:issued", "date")
        .expand("paper", "swrc:series", "conference")
        .expand("paper", "dc:title", "title")
        .cache();
    let authors = papers
        .clone()
        .filter("date", &[&format!("year>={since_year}")])
        .filter("conference", &["In(dblprc:vldb, dblprc:sigmod)"])
        .group_by(&["author"])
        .count("paper", "n_papers", false)
        .filter("n_papers", &[&format!(">={threshold}")]);
    papers
        .filter("date", &[&format!("year>={recent_year}")])
        .join(&authors, "author", JoinType::Inner)
        .select_cols(&["title"])
}

/// Expert SPARQL for case study 2 (paper Listing 6 shape).
pub fn topic_modeling_expert(since_year: i64, threshold: usize, recent_year: i64) -> String {
    format!(
        "{prefixes}\
         SELECT ?title\n\
         FROM <http://dblp.l3s.de>\n\
         WHERE {{\n\
           ?paper dc:title ?title ;\n\
                  rdf:type swrc:InProceedings ;\n\
                  dcterm:issued ?date ;\n\
                  swrc:series ?conference ;\n\
                  dc:creator ?author\n\
           FILTER ( year(xsd:dateTime(?date)) >= {recent_year} )\n\
           {{ SELECT ?author WHERE {{\n\
                ?paper rdf:type swrc:InProceedings ;\n\
                       swrc:series ?conference ;\n\
                       dc:creator ?author ;\n\
                       dcterm:issued ?date\n\
                FILTER ( ( year(xsd:dateTime(?date)) >= {since_year} )\n\
                         && ( ?conference IN (dblprc:vldb, dblprc:sigmod) ) )\n\
              }}\n\
              GROUP BY ?author\n\
              HAVING ( COUNT(?paper) >= {threshold} )\n\
           }}\n\
         }}",
        prefixes = expert_prefixes(),
    )
}

/// Case study 3 — knowledge-graph embedding (paper Listing 7): all
/// entity-to-entity triples of DBLP.
pub fn kg_embedding() -> RDFFrame {
    data::dblp_graph()
        .seed("?s", "?p", "?o")
        .filter("o", &["isURI"])
}

/// Expert SPARQL for case study 3 (paper Listing 8).
pub fn kg_embedding_expert() -> String {
    format!(
        "{}SELECT *\nFROM <http://dblp.l3s.de>\nWHERE {{\n  ?s ?p ?o .\n  FILTER ( isIRI(?o) )\n}}",
        expert_prefixes()
    )
}

/// Case-study parameter sets tuned per dataset scale so each study returns
/// a non-trivial, non-empty dataframe.
#[derive(Debug, Clone, Copy)]
pub struct CaseParams {
    /// CS1 prolific-actor threshold.
    pub prolific: usize,
    /// CS2 thought-leader window start.
    pub since_year: i64,
    /// CS2 paper-count threshold.
    pub threshold: usize,
    /// CS2 recent-titles window start.
    pub recent_year: i64,
}

impl CaseParams {
    /// Parameters appropriate for a given DBpedia scale.
    pub fn for_scale(scale: usize) -> Self {
        // Thresholds grow sub-linearly with scale (Zipf head sizes do too).
        let prolific = (scale / 200).clamp(3, 50);
        let threshold = (scale / 400).clamp(3, 20);
        CaseParams {
            prolific,
            since_year: 2000,
            threshold,
            recent_year: 2010,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use crate::data;
    use rdfframes_core::reference::compare_unordered;

    #[test]
    fn cs1_all_alternatives_agree() {
        let ds = data::build_dataset(200);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let p = CaseParams::for_scale(200);
        let frame = movie_genre_classification(p.prolific);
        let ours = baselines::rdfframes(&frame, &endpoint).unwrap();
        assert!(!ours.is_empty(), "empty CS1 result at test scale");
        let expert = baselines::expert_sparql(&movie_genre_expert(p.prolific), &endpoint).unwrap();
        // Project ours onto the expert's columns (internal naming only).
        let cols: Vec<&str> = expert.columns().iter().map(String::as_str).collect();
        let ours_proj = ours.select(&cols);
        compare_unordered(&ours_proj, &expert).unwrap();
        let nav = baselines::navigation_plus_df(&frame, &endpoint).unwrap();
        compare_unordered(&ours, &nav).unwrap();
        let naive = baselines::naive(&frame, &endpoint).unwrap();
        compare_unordered(&ours, &naive).unwrap();
    }

    #[test]
    fn cs2_all_alternatives_agree() {
        let ds = data::build_dataset(200);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let p = CaseParams::for_scale(200);
        let frame = topic_modeling(p.since_year, p.threshold, p.recent_year);
        let ours = baselines::rdfframes(&frame, &endpoint).unwrap();
        assert!(!ours.is_empty(), "empty CS2 result at test scale");
        let expert = baselines::expert_sparql(
            &topic_modeling_expert(p.since_year, p.threshold, p.recent_year),
            &endpoint,
        )
        .unwrap();
        compare_unordered(&ours, &expert).unwrap();
        let naive = baselines::naive(&frame, &endpoint).unwrap();
        compare_unordered(&ours, &naive).unwrap();
        let nav = baselines::navigation_plus_df(&frame, &endpoint).unwrap();
        compare_unordered(&ours, &nav).unwrap();
    }

    #[test]
    fn cs3_all_alternatives_agree() {
        let ds = data::build_dataset(150);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let frame = kg_embedding();
        let ours = baselines::rdfframes(&frame, &endpoint).unwrap();
        assert!(!ours.is_empty());
        let expert = baselines::expert_sparql(&kg_embedding_expert(), &endpoint).unwrap();
        compare_unordered(&ours, &expert).unwrap();
        // Every object is an entity.
        let oi = ours.column_index("o").unwrap();
        assert!(ours.rows().iter().all(|r| r[oi].is_uri()));
    }
}
