//! The alternatives RDFFrames is compared against (Section 6.3.3).
//!
//! | name | what it models |
//! |---|---|
//! | [`rdfframes`] | optimized query generation, all work in the engine |
//! | [`naive`] | one subquery per operator, all work in the engine |
//! | [`navigation_plus_df`] | seed/expand via the engine, relational ops client-side |
//! | [`rdflib_plus_df`] | no engine at all: parse an N-Triples dump, everything client-side |
//! | [`sparql_plus_df`] | dump the graph with one trivial SPARQL query, everything client-side |
//! | [`expert_sparql`] | a hand-written query (the gold standard) |

use dataframe::DataFrame;
use rdf_model::{ntriples, Dataset};
use rdfframes_core::api::operators::{Node, Operator};
use rdfframes_core::reference::{apply_operators, DatasetResolver, FrameResolver};
use rdfframes_core::Result;
use rdfframes_core::{Executor, FrameError, InProcessEndpoint, RDFFrame};

/// RDFFrames proper: optimized single query, pushed to the engine.
pub fn rdfframes(frame: &RDFFrame, endpoint: &InProcessEndpoint) -> Result<DataFrame> {
    frame.execute(endpoint)
}

/// Naive query generation: per-operator subqueries, pushed to the engine.
pub fn naive(frame: &RDFFrame, endpoint: &InProcessEndpoint) -> Result<DataFrame> {
    frame.execute_naive(endpoint)
}

/// Expert-written SPARQL executed directly (with pagination).
pub fn expert_sparql(query: &str, endpoint: &InProcessEndpoint) -> Result<DataFrame> {
    Executor::new().run(query, endpoint)
}

/// Resolver that answers patterns and joined frames by querying the engine
/// for the *navigational* parts and doing relational work client-side.
struct EndpointResolver<'a> {
    endpoint: &'a InProcessEndpoint,
}

impl FrameResolver for EndpointResolver<'_> {
    fn resolve_frame(&self, frame: &RDFFrame) -> Result<DataFrame> {
        navigation_plus_df(frame, self.endpoint)
    }

    fn resolve_pattern(
        &self,
        frame: &RDFFrame,
        subject: &Node,
        predicate: &Node,
        object: &Node,
    ) -> Result<DataFrame> {
        let text = |n: &Node| match n {
            Node::Var(v) => format!("?{v}"),
            Node::Term(t) => t.clone(),
        };
        let pattern = frame
            .graph()
            .seed(&text(subject), &text(predicate), &text(object));
        pattern.execute(self.endpoint)
    }
}

/// "Navigation + pandas": only the navigational prefix (seed + expands up to
/// the first relational operator) runs as one SPARQL query; every remaining
/// operator executes client-side on dataframes. Joined frames are resolved
/// the same way, recursively.
pub fn navigation_plus_df(frame: &RDFFrame, endpoint: &InProcessEndpoint) -> Result<DataFrame> {
    let ops = frame.operators();
    let split = ops
        .iter()
        .position(|op| {
            !matches!(
                op,
                Operator::Seed { .. } | Operator::Expand { .. } | Operator::Cache
            )
        })
        .unwrap_or(ops.len());
    let resolver = EndpointResolver { endpoint };
    if split == 0 {
        return apply_operators(frame, ops, DataFrame::default(), &resolver);
    }
    let nav = RDFFrame::from_operators(frame.graph().clone(), ops[..split].to_vec());
    let df = nav.execute(endpoint)?;
    apply_operators(frame, &ops[split..], df, &resolver)
}

/// "rdflib + pandas": parse the graph from its N-Triples serialization and
/// evaluate every operator client-side. `nt_document` is the pre-serialized
/// dump (producing it is part of this baseline's setup, not its runtime,
/// matching the paper's use of an on-disk `.nt` file).
pub fn rdflib_plus_df(frame: &RDFFrame, nt_document: &str) -> Result<DataFrame> {
    let graph =
        ntriples::parse_into_graph(nt_document).map_err(|e| FrameError::Endpoint(e.to_string()))?;
    let mut ds = Dataset::new();
    ds.insert_graph(frame.graph().uri(), graph);
    let resolver = DatasetResolver::new(&ds);
    resolver.resolve_frame(frame)
}

/// "SPARQL + pandas": fetch the whole graph through the endpoint with one
/// trivial `SELECT ?s ?p ?o` query, rebuild it client-side, and evaluate all
/// operators there.
pub fn sparql_plus_df(frame: &RDFFrame, endpoint: &InProcessEndpoint) -> Result<DataFrame> {
    let dump = Executor::new().run(
        &format!(
            "SELECT ?s ?p ?o FROM <{}> WHERE {{ ?s ?p ?o }}",
            frame.graph().uri()
        ),
        endpoint,
    )?;
    // Rebuild a client-side graph from the dump.
    let mut graph = rdf_model::Graph::new();
    let (si, pi, oi) = (0usize, 1usize, 2usize);
    for row in dump.rows() {
        let term = |c: &dataframe::Cell| -> rdf_model::Term {
            match c {
                dataframe::Cell::Uri(u) => rdf_model::Term::iri(u.clone()),
                dataframe::Cell::Int(i) => rdf_model::Term::integer(*i),
                dataframe::Cell::Float(f) => {
                    rdf_model::Term::Literal(rdf_model::Literal::double(*f))
                }
                dataframe::Cell::Bool(b) => {
                    rdf_model::Term::Literal(rdf_model::Literal::boolean(*b))
                }
                dataframe::Cell::Str(s) => rdf_model::Term::string(s.clone()),
                dataframe::Cell::Null => rdf_model::Term::string(""),
            }
        };
        graph.insert(&rdf_model::Triple::new(
            term(&row[si]),
            term(&row[pi]),
            term(&row[oi]),
        ));
    }
    let mut ds = Dataset::new();
    ds.insert_graph(frame.graph().uri(), graph);
    let resolver = DatasetResolver::new(&ds);
    resolver.resolve_frame(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use rdfframes_core::reference::compare_unordered;

    fn frame() -> RDFFrame {
        data::dbpedia_graph()
            .feature_domain_range("dbpp:starring", "movie", "actor")
            .expand("actor", "dbpp:birthPlace", "country")
            .filter("country", &["=dbpr:United_States"])
            .group_by(&["actor"])
            .count("movie", "n", true)
            .filter("n", &[">=3"])
    }

    #[test]
    fn all_engine_baselines_agree() {
        let ds = data::build_dataset(150);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let f = frame();
        let a = rdfframes(&f, &endpoint).unwrap();
        assert!(!a.is_empty(), "threshold too strict for test scale");
        let b = naive(&f, &endpoint).unwrap();
        compare_unordered(&a, &b).unwrap();
        let c = navigation_plus_df(&f, &endpoint).unwrap();
        compare_unordered(&a, &c).unwrap();
        let d = sparql_plus_df(&f, &endpoint).unwrap();
        compare_unordered(&a, &d).unwrap();
    }

    #[test]
    fn rdflib_baseline_agrees() {
        let ds = data::build_dataset(150);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let f = frame();
        let a = rdfframes(&f, &endpoint).unwrap();
        let nt = rdf_model::ntriples::write_document(
            ds.graph(data::uris::DBPEDIA).unwrap().iter_triples(),
        );
        let e = rdflib_plus_df(&f, &nt).unwrap();
        compare_unordered(&a, &e).unwrap();
    }

    #[test]
    fn navigation_split_handles_relational_only_suffix() {
        // A frame that is purely navigational: the split consumes all ops.
        let ds = data::build_dataset(100);
        let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));
        let f = data::dbpedia_graph().feature_domain_range("dbpp:starring", "movie", "actor");
        let a = rdfframes(&f, &endpoint).unwrap();
        let b = navigation_plus_df(&f, &endpoint).unwrap();
        compare_unordered(&a, &b).unwrap();
    }
}
