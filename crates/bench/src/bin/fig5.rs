//! Figure 5 — the synthetic workload (Q1–Q15).
//!
//! For every query, reports the expert-SPARQL time and the ratios
//! naive/expert and RDFFrames/expert, sorted ascending by naive ratio
//! (matching the paper's presentation).
//!
//! Usage: `fig5 [scale] [runs]` (defaults: scale 2000, 3 runs).

use bench::{baselines, data, harness, queries};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("Figure 5 reproduction — scale {scale}, {runs} runs");

    let ds = data::build_dataset(scale);
    let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));

    let mut rows: Vec<(String, f64, Option<f64>, Option<f64>)> = Vec::new();
    for def in queries::all_queries() {
        eprintln!("running {} — {}", def.id, def.description);
        let expert = harness::measure("expert", runs, || {
            baselines::expert_sparql(&def.expert, &endpoint)
        });
        let naive = harness::measure("naive", runs, || baselines::naive(&def.frame, &endpoint));
        let ours = harness::measure("rdfframes", runs, || {
            baselines::rdfframes(&def.frame, &endpoint)
        });
        let expert_secs = expert.secs().max(1e-9);
        rows.push((
            def.id.to_string(),
            expert_secs * 1e3,
            naive.error.is_none().then(|| naive.secs() / expert_secs),
            ours.error.is_none().then(|| ours.secs() / expert_secs),
        ));
    }
    // Sort by naive/expert ratio ascending, like the paper's x-axis.
    rows.sort_by(|a, b| {
        let ka = a.2.unwrap_or(f64::INFINITY);
        let kb = b.2.unwrap_or(f64::INFINITY);
        ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
    });
    harness::print_ratios("Synthetic workload: ratio to Expert SPARQL", &rows);
}
