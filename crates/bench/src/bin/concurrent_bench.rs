//! Parallel-execution and concurrent-serving benchmark.
//!
//! Two experiments over one synthetic dataset:
//!
//! 1. **Parallel speedup** — the embedded endpoint runs case studies 1 and
//!    3 (plus synthetic Q1) with the engine's work-stealing pool at 1, 2, 4,
//!    and 8 threads. Every thread count must produce the same number of
//!    rows (the evaluator's determinism contract says the *content* is
//!    byte-identical too; the test suite asserts that — here we record
//!    latency). Speedups are relative to `threads = 1` on **this
//!    machine**: on a single-core container the pool adds coordination
//!    overhead and the honest speedup is ≤ 1.
//!
//! 2. **Concurrent serving** — a [`SnapshotServer`] serves 1/2/4/8 reader
//!    threads executing a one-hop RDFFrames query while a writer loops
//!    `update()` (append one triple → publish a new epoch). Reported:
//!    aggregate queries/s, per-query p50/p99 latency, and epochs published
//!    during the window — readers never block on the writer beyond the
//!    epoch pointer swap.
//!
//! 3. **Durability tax** — the same readers-vs-writer race, with the
//!    writer's publications running durability off (plain
//!    [`SnapshotServer`]), WAL-commit-per-update, and WAL-per-update with
//!    threshold-coalesced checkpoints ([`DurableSnapshotServer`] over a
//!    `MemVfs`). Reported per mode: publish p50/p99, epochs, reader
//!    qps/p99, and the store's commit/checkpoint counters. The backing
//!    store is in-memory, so the tax measured is WAL serialization and
//!    checkpoint copying — real `fsync` cost comes on top of this floor.
//!
//! 4. **Overload** — submitters hammer a [`DurableSnapshotServer`] whose
//!    admission limit is far below the offered concurrency; reported:
//!    submitted/admitted/shed counts (which must reconcile exactly) and
//!    the accepted-query throughput while shedding.
//!
//! Results go to `BENCH_concurrent.json`.
//!
//! Usage: `cargo run --release -p bench --bin concurrent_bench [--scale N]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::persist::{MemVfs, Vfs};
use rdf_model::{Term, Triple};
use rdfframes_core::{
    DurableSnapshotServer, EmbeddedEndpoint, FrameError, RDFFrame, ServingConfig, SnapshotServer,
};
use sparql_engine::EngineConfig;

/// Timed repetitions per (workload, thread-count) cell.
const RUNS: usize = 5;
/// Engine thread counts swept in the parallel-speedup experiment.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Reader thread counts swept in the concurrent-serving experiment.
const READERS: [usize; 4] = [1, 2, 4, 8];
/// Measurement window per reader count.
const SERVE_WINDOW: Duration = Duration::from_millis(600);

fn parse_args() -> usize {
    let mut scale = 4000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale requires a number"));
            }
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                } else {
                    panic!("unknown argument {other} (usage: concurrent_bench [--scale N] [N])");
                }
            }
        }
    }
    scale
}

struct Workload {
    id: &'static str,
    frame: RDFFrame,
}

fn workloads(scale: usize) -> Vec<Workload> {
    let p = CaseParams::for_scale(scale);
    let mut out = vec![
        Workload {
            id: "cs1_movie_genre",
            frame: casestudies::movie_genre_classification(p.prolific),
        },
        Workload {
            id: "cs3_kg_embedding",
            frame: casestudies::kg_embedding(),
        },
    ];
    if let Some(q1) = queries::all_queries().into_iter().find(|d| d.id == "Q1") {
        out.push(Workload {
            id: "q1_players",
            frame: q1.frame,
        });
    }
    out
}

struct Cell {
    median: Duration,
    rows: usize,
    par_chunks: u64,
}

fn run(frame: &RDFFrame, endpoint: &EmbeddedEndpoint) -> Cell {
    let warm = frame
        .execute(endpoint)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    let rows = warm.len();
    let chunks_before = endpoint.stats().par_chunks();
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let df = frame.execute(endpoint).unwrap();
        samples.push(start.elapsed());
        assert_eq!(df.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Cell {
        median: samples[samples.len() / 2],
        rows,
        par_chunks: endpoint.stats().par_chunks() - chunks_before,
    }
}

/// Percentile (nearest-rank) of a sorted latency sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

struct ServeOutcome {
    queries: u64,
    qps: f64,
    p50: Duration,
    p99: Duration,
    epochs: u64,
    final_rows: usize,
}

/// Run `n_readers` query loops against a fresh [`SnapshotServer`] while one
/// writer publishes append epochs as fast as it can.
fn serve(scale: usize, n_readers: usize) -> ServeOutcome {
    let server = Arc::new(SnapshotServer::new(data::build_dataset(scale)));
    // One-hop feature extraction: enough work to be a real query, cheap
    // enough that the window collects a meaningful latency sample.
    let frame = data::dbpedia_graph().feature_domain_range("dbpp:starring", "movie", "actor");
    let epochs_before = server.epochs_published();
    let stop = AtomicBool::new(false);
    let (latencies, writer_updates) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..n_readers {
            readers.push(scope.spawn(|| {
                let mut lat = Vec::new();
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = server.snapshot();
                    // Epochs observed by one reader never go backwards.
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    let start = Instant::now();
                    let df = frame.execute(snap.embedded()).expect("reader query failed");
                    lat.push(start.elapsed());
                    assert!(!df.is_empty(), "reader saw an empty result");
                }
                lat
            }));
        }
        let writer = scope.spawn(|| {
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let n = published;
                server
                    .update(|ds| {
                        ds.append_triples(
                            data::uris::DBPEDIA,
                            [Triple::new(
                                Term::iri(format!("http://dbpedia.org/resource/NewMovie{n}")),
                                Term::iri("http://dbpedia.org/property/starring"),
                                Term::iri(format!("http://dbpedia.org/resource/NewActor{n}")),
                            )],
                        );
                    })
                    .expect("publish failed");
                published += 1;
            }
            published
        });
        std::thread::sleep(SERVE_WINDOW);
        stop.store(true, Ordering::Relaxed);
        let mut lat: Vec<Duration> = Vec::new();
        for r in readers {
            lat.extend(r.join().expect("reader panicked"));
        }
        (lat, writer.join().expect("writer panicked"))
    });
    let mut sorted = latencies;
    sorted.sort();
    let queries = sorted.len() as u64;
    // Every published append added exactly one row to the reader query.
    let final_snap = server.snapshot();
    let final_rows = frame
        .execute(final_snap.embedded())
        .expect("final query failed")
        .len();
    let out = ServeOutcome {
        queries,
        qps: queries as f64 / SERVE_WINDOW.as_secs_f64(),
        p50: percentile(&sorted, 50.0),
        p99: percentile(&sorted, 99.0),
        epochs: server.epochs_published() - epochs_before,
        final_rows,
    };
    // Sanity: one epoch per writer update call, no drift.
    assert_eq!(out.epochs, writer_updates, "epoch counter drifted");
    out
}

/// The triple the writer appends on publication `n`.
fn write_triple(n: u64) -> Triple {
    Triple::new(
        Term::iri(format!("http://dbpedia.org/resource/NewMovie{n}")),
        Term::iri("http://dbpedia.org/property/starring"),
        Term::iri(format!("http://dbpedia.org/resource/NewActor{n}")),
    )
}

/// Writer-side durability swept by experiment 3.
#[derive(Clone, Copy, PartialEq)]
enum Durability {
    /// Plain [`SnapshotServer`]: publish is a pointer swap, nothing survives
    /// a crash.
    Off,
    /// [`DurableSnapshotServer`], WAL commit before every publish, no
    /// checkpoints during the window.
    WalEachUpdate,
    /// WAL commit per publish plus threshold-coalesced checkpoints.
    WalCheckpoint,
}

impl Durability {
    fn label(self) -> &'static str {
        match self {
            Durability::Off => "off",
            Durability::WalEachUpdate => "wal_per_update",
            Durability::WalCheckpoint => "wal_checkpoint_coalesced",
        }
    }
}

/// Checkpoint-coalescing threshold for [`Durability::WalCheckpoint`]. Low
/// enough that single-triple appends actually reach it within the window
/// even at full scale (where publishes are slow and only a few dozen
/// epochs fit), so the sweep shows real checkpoint spikes, not an idle
/// policy.
const COALESCE_WAL_BYTES: u64 = 1 << 10;
/// Reader threads held constant across the durability sweep.
const TAX_READERS: usize = 2;

/// A durable server over `MemVfs`, seeded with the benchmark dataset and
/// checkpointed so the measurement window starts from an empty WAL.
fn seed_durable(scale: usize, config: ServingConfig) -> DurableSnapshotServer {
    let server = DurableSnapshotServer::open(Arc::new(MemVfs::new()) as Arc<dyn Vfs>, config)
        .expect("open durable server");
    let ds = data::build_dataset(scale);
    for uri in ds.graph_uris() {
        server
            .insert_graph(uri, ds.graph(uri).unwrap())
            .expect("seed graph");
    }
    server.checkpoint().expect("seed checkpoint");
    server
}

/// One serving surface for the durability sweep: same read path, different
/// writer-side durability.
enum TaxServer {
    Plain(SnapshotServer),
    Durable(Box<DurableSnapshotServer>),
}

impl TaxServer {
    fn build(scale: usize, mode: Durability) -> TaxServer {
        match mode {
            Durability::Off => TaxServer::Plain(SnapshotServer::new(data::build_dataset(scale))),
            Durability::WalEachUpdate => TaxServer::Durable(Box::new(seed_durable(
                scale,
                ServingConfig {
                    checkpoint_wal_bytes: None,
                    ..ServingConfig::default()
                },
            ))),
            Durability::WalCheckpoint => TaxServer::Durable(Box::new(seed_durable(
                scale,
                ServingConfig {
                    checkpoint_wal_bytes: Some(COALESCE_WAL_BYTES),
                    ..ServingConfig::default()
                },
            ))),
        }
    }

    fn snapshot(&self) -> Arc<rdfframes_core::EpochEndpoints> {
        match self {
            TaxServer::Plain(s) => s.snapshot(),
            TaxServer::Durable(s) => s.snapshot(),
        }
    }

    fn publish(&self, n: u64) {
        match self {
            TaxServer::Plain(s) => {
                s.update(|ds| {
                    ds.append_triples(data::uris::DBPEDIA, [write_triple(n)]);
                })
                .expect("publish failed");
            }
            TaxServer::Durable(s) => {
                s.append_triples(data::uris::DBPEDIA, vec![write_triple(n)])
                    .expect("publish failed");
            }
        }
    }

    fn epochs_published(&self) -> u64 {
        match self {
            TaxServer::Plain(s) => s.epochs_published(),
            TaxServer::Durable(s) => s.stats().epochs_published,
        }
    }

    /// `(wal_commits, checkpoints)` so far; zeros for the in-memory server.
    fn store_counters(&self) -> (u64, u64) {
        match self {
            TaxServer::Plain(_) => (0, 0),
            TaxServer::Durable(s) => {
                let st = s.store_stats();
                (st.commits, st.checkpoints)
            }
        }
    }
}

struct TaxOutcome {
    publish_p50: Duration,
    publish_p99: Duration,
    epochs: u64,
    reader_qps: f64,
    reader_p99: Duration,
    wal_commits: u64,
    checkpoints: u64,
}

/// Experiment 3 cell: readers race a writer whose publications run at the
/// given durability level; both sides' latencies are sampled.
fn serve_tax(scale: usize, mode: Durability) -> TaxOutcome {
    let server = TaxServer::build(scale, mode);
    let frame = data::dbpedia_graph().feature_domain_range("dbpp:starring", "movie", "actor");
    let epochs_before = server.epochs_published();
    let (commits_before, checkpoints_before) = server.store_counters();
    let stop = AtomicBool::new(false);
    let (reader_lat, publish_lat) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..TAX_READERS {
            readers.push(scope.spawn(|| {
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let snap = server.snapshot();
                    let start = Instant::now();
                    let df = frame.execute(snap.embedded()).expect("reader query failed");
                    lat.push(start.elapsed());
                    assert!(!df.is_empty(), "reader saw an empty result");
                }
                lat
            }));
        }
        let writer = scope.spawn(|| {
            let mut lat = Vec::new();
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                server.publish(published);
                lat.push(start.elapsed());
                published += 1;
            }
            lat
        });
        std::thread::sleep(SERVE_WINDOW);
        stop.store(true, Ordering::Relaxed);
        let mut lat: Vec<Duration> = Vec::new();
        for r in readers {
            lat.extend(r.join().expect("reader panicked"));
        }
        (lat, writer.join().expect("writer panicked"))
    });
    let mut reader_sorted = reader_lat;
    reader_sorted.sort();
    let mut publish_sorted = publish_lat;
    publish_sorted.sort();
    let (commits_after, checkpoints_after) = server.store_counters();
    let epochs = server.epochs_published() - epochs_before;
    assert_eq!(epochs, publish_sorted.len() as u64, "epoch counter drifted");
    TaxOutcome {
        publish_p50: percentile(&publish_sorted, 50.0),
        publish_p99: percentile(&publish_sorted, 99.0),
        epochs,
        reader_qps: reader_sorted.len() as f64 / SERVE_WINDOW.as_secs_f64(),
        reader_p99: percentile(&reader_sorted, 99.0),
        wal_commits: commits_after - commits_before,
        checkpoints: checkpoints_after - checkpoints_before,
    }
}

/// Offered concurrency in the overload experiment — far above the limit.
const OVERLOAD_SUBMITTERS: usize = 8;
/// Admission limit the overload experiment pins the server at.
const OVERLOAD_MAX_IN_FLIGHT: usize = 2;

struct OverloadOutcome {
    submitted: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    accepted_qps: f64,
}

/// Experiment 4: hammer the governed front door with far more concurrency
/// than the admission limit; every rejection must be a typed
/// [`FrameError::Overloaded`], and the counters must reconcile exactly.
fn overload(scale: usize) -> OverloadOutcome {
    let server = seed_durable(
        scale,
        ServingConfig {
            max_in_flight: OVERLOAD_MAX_IN_FLIGHT,
            max_waiters: 0,
            max_wait: Duration::ZERO,
            checkpoint_wal_bytes: None,
            ..ServingConfig::default()
        },
    );
    let frame = data::dbpedia_graph().feature_domain_range("dbpp:starring", "movie", "actor");
    let stop = AtomicBool::new(false);
    let completed: u64 = std::thread::scope(|scope| {
        let mut submitters = Vec::new();
        for _ in 0..OVERLOAD_SUBMITTERS {
            submitters.push(scope.spawn(|| {
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match server.execute(&frame) {
                        Ok(df) => {
                            assert!(!df.is_empty());
                            ok += 1;
                        }
                        Err(FrameError::Overloaded(_)) => {}
                        Err(e) => panic!("unexpected error under overload: {e}"),
                    }
                }
                ok
            }));
        }
        std::thread::sleep(SERVE_WINDOW);
        stop.store(true, Ordering::Relaxed);
        submitters
            .into_iter()
            .map(|s| s.join().expect("submitter panicked"))
            .sum()
    });
    let stats = server.stats();
    assert_eq!(
        stats.admitted + stats.shed,
        stats.submitted,
        "admission counters must reconcile"
    );
    assert_eq!(stats.admitted, completed, "every admitted query completed");
    OverloadOutcome {
        submitted: stats.submitted,
        admitted: stats.admitted,
        shed: stats.shed,
        completed,
        accepted_qps: completed as f64 / SERVE_WINDOW.as_secs_f64(),
    }
}

fn main() {
    let scale = parse_args();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("building dataset at scale {scale} ({hardware} hardware threads)...");
    let dataset = data::build_dataset(scale);
    eprintln!(
        "dataset: {} triples across {} graphs",
        dataset.total_triples(),
        dataset.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"concurrent_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"runs\": {RUNS},");

    // ── Experiment 1: parallel speedup ────────────────────────────────
    println!(
        "\n{:<18} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "workload", "threads", "median (ms)", "speedup", "par_chunks", "rows"
    );
    let _ = writeln!(json, "  \"parallel_speedup\": [");
    let specs = workloads(scale);
    for (wi, w) in specs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", w.id);
        let _ = writeln!(json, "      \"by_threads\": [");
        let mut base = Duration::ZERO;
        let mut base_rows = 0usize;
        for (ti, &threads) in THREADS.iter().enumerate() {
            let endpoint = EmbeddedEndpoint::with_engine_config(
                Arc::clone(&dataset),
                EngineConfig {
                    threads,
                    ..EngineConfig::new()
                },
            );
            let cell = run(&w.frame, &endpoint);
            if ti == 0 {
                base = cell.median;
                base_rows = cell.rows;
            } else {
                assert_eq!(
                    cell.rows, base_rows,
                    "{}: thread count changed the result size",
                    w.id
                );
            }
            let speedup = base.as_secs_f64() / cell.median.as_secs_f64().max(1e-12);
            println!(
                "{:<18} {:>8} {:>12.3} {:>9.2}x {:>12} {:>10}",
                w.id,
                threads,
                cell.median.as_secs_f64() * 1e3,
                speedup,
                cell.par_chunks,
                cell.rows
            );
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"threads\": {threads},");
            let _ = writeln!(
                json,
                "          \"median_ms\": {:.3},",
                cell.median.as_secs_f64() * 1e3
            );
            let _ = writeln!(json, "          \"speedup_vs_1\": {speedup:.3},");
            let _ = writeln!(json, "          \"par_chunks\": {},", cell.par_chunks);
            let _ = writeln!(json, "          \"rows\": {}", cell.rows);
            let _ = writeln!(
                json,
                "        }}{}",
                if ti + 1 < THREADS.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < specs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ── Experiment 2: concurrent serving ──────────────────────────────
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "readers", "queries", "qps", "p50 (ms)", "p99 (ms)", "epochs", "final rows"
    );
    let _ = writeln!(json, "  \"concurrent_serving\": [");
    for (ri, &readers) in READERS.iter().enumerate() {
        let out = serve(scale, readers);
        println!(
            "{:<8} {:>10} {:>10.1} {:>10.3} {:>10.3} {:>8} {:>10}",
            readers,
            out.queries,
            out.qps,
            out.p50.as_secs_f64() * 1e3,
            out.p99.as_secs_f64() * 1e3,
            out.epochs,
            out.final_rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"readers\": {readers},");
        let _ = writeln!(json, "      \"window_ms\": {},", SERVE_WINDOW.as_millis());
        let _ = writeln!(json, "      \"queries\": {},", out.queries);
        let _ = writeln!(json, "      \"qps\": {:.1},", out.qps);
        let _ = writeln!(
            json,
            "      \"p50_ms\": {:.3},",
            out.p50.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"p99_ms\": {:.3},",
            out.p99.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"epochs_published\": {}", out.epochs);
        let _ = writeln!(
            json,
            "    }}{}",
            if ri + 1 < READERS.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ── Experiment 3: durability tax ──────────────────────────────────
    println!(
        "\n{:<26} {:>12} {:>12} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "durability",
        "pub p50 (ms)",
        "pub p99 (ms)",
        "epochs",
        "rd qps",
        "rd p99",
        "commits",
        "ckpts"
    );
    let modes = [
        Durability::Off,
        Durability::WalEachUpdate,
        Durability::WalCheckpoint,
    ];
    let _ = writeln!(json, "  \"durability_tax\": [");
    for (mi, &mode) in modes.iter().enumerate() {
        let out = serve_tax(scale, mode);
        println!(
            "{:<26} {:>12.4} {:>12.4} {:>8} {:>10.1} {:>10.3} {:>8} {:>6}",
            mode.label(),
            out.publish_p50.as_secs_f64() * 1e3,
            out.publish_p99.as_secs_f64() * 1e3,
            out.epochs,
            out.reader_qps,
            out.reader_p99.as_secs_f64() * 1e3,
            out.wal_commits,
            out.checkpoints
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"mode\": \"{}\",", mode.label());
        let _ = writeln!(json, "      \"readers\": {TAX_READERS},");
        let _ = writeln!(json, "      \"window_ms\": {},", SERVE_WINDOW.as_millis());
        let _ = writeln!(
            json,
            "      \"publish_p50_ms\": {:.4},",
            out.publish_p50.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"publish_p99_ms\": {:.4},",
            out.publish_p99.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"epochs_published\": {},", out.epochs);
        let _ = writeln!(json, "      \"reader_qps\": {:.1},", out.reader_qps);
        let _ = writeln!(
            json,
            "      \"reader_p99_ms\": {:.3},",
            out.reader_p99.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"wal_commits\": {},", out.wal_commits);
        let _ = writeln!(json, "      \"checkpoints\": {}", out.checkpoints);
        let _ = writeln!(
            json,
            "    }}{}",
            if mi + 1 < modes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ── Experiment 4: overload shedding ───────────────────────────────
    let over = overload(scale);
    println!(
        "\noverload: {} submitters vs limit {} → submitted {} admitted {} shed {} ({:.1} accepted qps)",
        OVERLOAD_SUBMITTERS,
        OVERLOAD_MAX_IN_FLIGHT,
        over.submitted,
        over.admitted,
        over.shed,
        over.accepted_qps
    );
    let _ = writeln!(json, "  \"overload\": {{");
    let _ = writeln!(json, "    \"submitters\": {OVERLOAD_SUBMITTERS},");
    let _ = writeln!(json, "    \"max_in_flight\": {OVERLOAD_MAX_IN_FLIGHT},");
    let _ = writeln!(json, "    \"window_ms\": {},", SERVE_WINDOW.as_millis());
    let _ = writeln!(json, "    \"submitted\": {},", over.submitted);
    let _ = writeln!(json, "    \"admitted\": {},", over.admitted);
    let _ = writeln!(json, "    \"shed\": {},", over.shed);
    let _ = writeln!(json, "    \"completed\": {},", over.completed);
    let _ = writeln!(json, "    \"accepted_qps\": {:.1}", over.accepted_qps);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_concurrent.json", &json).expect("write BENCH_concurrent.json");
    eprintln!("\nwrote BENCH_concurrent.json");
}
