//! Parallel-execution and concurrent-serving benchmark.
//!
//! Two experiments over one synthetic dataset:
//!
//! 1. **Parallel speedup** — the embedded endpoint runs case studies 1 and
//!    3 (plus synthetic Q1) with the engine's work-stealing pool at 1, 2, 4,
//!    and 8 threads. Every thread count must produce the same number of
//!    rows (the evaluator's determinism contract says the *content* is
//!    byte-identical too; the test suite asserts that — here we record
//!    latency). Speedups are relative to `threads = 1` on **this
//!    machine**: on a single-core container the pool adds coordination
//!    overhead and the honest speedup is ≤ 1.
//!
//! 2. **Concurrent serving** — a [`SnapshotServer`] serves 1/2/4/8 reader
//!    threads executing a one-hop RDFFrames query while a writer loops
//!    `update()` (append one triple → publish a new epoch). Reported:
//!    aggregate queries/s, per-query p50/p99 latency, and epochs published
//!    during the window — readers never block on the writer beyond the
//!    epoch pointer swap.
//!
//! Results go to `BENCH_concurrent.json`.
//!
//! Usage: `cargo run --release -p bench --bin concurrent_bench [--scale N]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::{Term, Triple};
use rdfframes_core::{EmbeddedEndpoint, RDFFrame, SnapshotServer};
use sparql_engine::EngineConfig;

/// Timed repetitions per (workload, thread-count) cell.
const RUNS: usize = 5;
/// Engine thread counts swept in the parallel-speedup experiment.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Reader thread counts swept in the concurrent-serving experiment.
const READERS: [usize; 4] = [1, 2, 4, 8];
/// Measurement window per reader count.
const SERVE_WINDOW: Duration = Duration::from_millis(600);

fn parse_args() -> usize {
    let mut scale = 4000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale requires a number"));
            }
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                } else {
                    panic!("unknown argument {other} (usage: concurrent_bench [--scale N] [N])");
                }
            }
        }
    }
    scale
}

struct Workload {
    id: &'static str,
    frame: RDFFrame,
}

fn workloads(scale: usize) -> Vec<Workload> {
    let p = CaseParams::for_scale(scale);
    let mut out = vec![
        Workload {
            id: "cs1_movie_genre",
            frame: casestudies::movie_genre_classification(p.prolific),
        },
        Workload {
            id: "cs3_kg_embedding",
            frame: casestudies::kg_embedding(),
        },
    ];
    if let Some(q1) = queries::all_queries().into_iter().find(|d| d.id == "Q1") {
        out.push(Workload {
            id: "q1_players",
            frame: q1.frame,
        });
    }
    out
}

struct Cell {
    median: Duration,
    rows: usize,
    par_chunks: u64,
}

fn run(frame: &RDFFrame, endpoint: &EmbeddedEndpoint) -> Cell {
    let warm = frame
        .execute(endpoint)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    let rows = warm.len();
    let chunks_before = endpoint.stats().par_chunks();
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let df = frame.execute(endpoint).unwrap();
        samples.push(start.elapsed());
        assert_eq!(df.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Cell {
        median: samples[samples.len() / 2],
        rows,
        par_chunks: endpoint.stats().par_chunks() - chunks_before,
    }
}

/// Percentile (nearest-rank) of a sorted latency sample.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

struct ServeOutcome {
    queries: u64,
    qps: f64,
    p50: Duration,
    p99: Duration,
    epochs: u64,
    final_rows: usize,
}

/// Run `n_readers` query loops against a fresh [`SnapshotServer`] while one
/// writer publishes append epochs as fast as it can.
fn serve(scale: usize, n_readers: usize) -> ServeOutcome {
    let server = Arc::new(SnapshotServer::new(data::build_dataset(scale)));
    // One-hop feature extraction: enough work to be a real query, cheap
    // enough that the window collects a meaningful latency sample.
    let frame = data::dbpedia_graph().feature_domain_range("dbpp:starring", "movie", "actor");
    let epochs_before = server.epochs_published();
    let stop = AtomicBool::new(false);
    let (latencies, writer_updates) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..n_readers {
            readers.push(scope.spawn(|| {
                let mut lat = Vec::new();
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = server.snapshot();
                    // Epochs observed by one reader never go backwards.
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    let start = Instant::now();
                    let df = frame.execute(snap.embedded()).expect("reader query failed");
                    lat.push(start.elapsed());
                    assert!(!df.is_empty(), "reader saw an empty result");
                }
                lat
            }));
        }
        let writer = scope.spawn(|| {
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let n = published;
                server.update(|ds| {
                    ds.append_triples(
                        data::uris::DBPEDIA,
                        [Triple::new(
                            Term::iri(format!("http://dbpedia.org/resource/NewMovie{n}")),
                            Term::iri("http://dbpedia.org/property/starring"),
                            Term::iri(format!("http://dbpedia.org/resource/NewActor{n}")),
                        )],
                    );
                });
                published += 1;
            }
            published
        });
        std::thread::sleep(SERVE_WINDOW);
        stop.store(true, Ordering::Relaxed);
        let mut lat: Vec<Duration> = Vec::new();
        for r in readers {
            lat.extend(r.join().expect("reader panicked"));
        }
        (lat, writer.join().expect("writer panicked"))
    });
    let mut sorted = latencies;
    sorted.sort();
    let queries = sorted.len() as u64;
    // Every published append added exactly one row to the reader query.
    let final_snap = server.snapshot();
    let final_rows = frame
        .execute(final_snap.embedded())
        .expect("final query failed")
        .len();
    let out = ServeOutcome {
        queries,
        qps: queries as f64 / SERVE_WINDOW.as_secs_f64(),
        p50: percentile(&sorted, 50.0),
        p99: percentile(&sorted, 99.0),
        epochs: server.epochs_published() - epochs_before,
        final_rows,
    };
    // Sanity: one epoch per writer update call, no drift.
    assert_eq!(out.epochs, writer_updates, "epoch counter drifted");
    out
}

fn main() {
    let scale = parse_args();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("building dataset at scale {scale} ({hardware} hardware threads)...");
    let dataset = data::build_dataset(scale);
    eprintln!(
        "dataset: {} triples across {} graphs",
        dataset.total_triples(),
        dataset.len()
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"concurrent_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"hardware_threads\": {hardware},");
    let _ = writeln!(json, "  \"runs\": {RUNS},");

    // ── Experiment 1: parallel speedup ────────────────────────────────
    println!(
        "\n{:<18} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "workload", "threads", "median (ms)", "speedup", "par_chunks", "rows"
    );
    let _ = writeln!(json, "  \"parallel_speedup\": [");
    let specs = workloads(scale);
    for (wi, w) in specs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", w.id);
        let _ = writeln!(json, "      \"by_threads\": [");
        let mut base = Duration::ZERO;
        let mut base_rows = 0usize;
        for (ti, &threads) in THREADS.iter().enumerate() {
            let endpoint = EmbeddedEndpoint::with_engine_config(
                Arc::clone(&dataset),
                EngineConfig {
                    threads,
                    ..EngineConfig::new()
                },
            );
            let cell = run(&w.frame, &endpoint);
            if ti == 0 {
                base = cell.median;
                base_rows = cell.rows;
            } else {
                assert_eq!(
                    cell.rows, base_rows,
                    "{}: thread count changed the result size",
                    w.id
                );
            }
            let speedup = base.as_secs_f64() / cell.median.as_secs_f64().max(1e-12);
            println!(
                "{:<18} {:>8} {:>12.3} {:>9.2}x {:>12} {:>10}",
                w.id,
                threads,
                cell.median.as_secs_f64() * 1e3,
                speedup,
                cell.par_chunks,
                cell.rows
            );
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"threads\": {threads},");
            let _ = writeln!(
                json,
                "          \"median_ms\": {:.3},",
                cell.median.as_secs_f64() * 1e3
            );
            let _ = writeln!(json, "          \"speedup_vs_1\": {speedup:.3},");
            let _ = writeln!(json, "          \"par_chunks\": {},", cell.par_chunks);
            let _ = writeln!(json, "          \"rows\": {}", cell.rows);
            let _ = writeln!(
                json,
                "        }}{}",
                if ti + 1 < THREADS.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < specs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ── Experiment 2: concurrent serving ──────────────────────────────
    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
        "readers", "queries", "qps", "p50 (ms)", "p99 (ms)", "epochs", "final rows"
    );
    let _ = writeln!(json, "  \"concurrent_serving\": [");
    for (ri, &readers) in READERS.iter().enumerate() {
        let out = serve(scale, readers);
        println!(
            "{:<8} {:>10} {:>10.1} {:>10.3} {:>10.3} {:>8} {:>10}",
            readers,
            out.queries,
            out.qps,
            out.p50.as_secs_f64() * 1e3,
            out.p99.as_secs_f64() * 1e3,
            out.epochs,
            out.final_rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"readers\": {readers},");
        let _ = writeln!(json, "      \"window_ms\": {},", SERVE_WINDOW.as_millis());
        let _ = writeln!(json, "      \"queries\": {},", out.queries);
        let _ = writeln!(json, "      \"qps\": {:.1},", out.qps);
        let _ = writeln!(
            json,
            "      \"p50_ms\": {:.3},",
            out.p50.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"p99_ms\": {:.3},",
            out.p99.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"epochs_published\": {}", out.epochs);
        let _ = writeln!(
            json,
            "    }}{}",
            if ri + 1 < READERS.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_concurrent.json", &json).expect("write BENCH_concurrent.json");
    eprintln!("\nwrote BENCH_concurrent.json");
}
