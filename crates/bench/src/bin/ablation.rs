//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Engine optimizer on/off** — why flat queries beat naive nesting:
//!    the optimizer can reorder a flat BGP but not across subquery fences.
//! 2. **Pagination chunk size** — the Executor's transparent paging.
//! 3. **Round trips** — one compact query vs per-operator engine calls
//!    (the "generate one SPARQL query, never more" guideline), with a
//!    simulated per-request HTTP overhead.
//!
//! Usage: `ablation [scale] [runs]` (defaults: scale 2000, 3 runs).

use std::sync::Arc;
use std::time::Duration;

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data, harness};
use rdfframes_core::{EndpointConfig, Executor, InProcessEndpoint};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let params = CaseParams::for_scale(scale);
    println!("Ablations — scale {scale}, {runs} runs");
    let ds = data::build_dataset(scale);

    // --- 1. Optimizer on/off -------------------------------------------
    let frame =
        casestudies::topic_modeling(params.since_year, params.threshold, params.recent_year);
    let on = data::build_endpoint(Arc::clone(&ds));
    let off = InProcessEndpoint::with_config(
        Arc::clone(&ds),
        EndpointConfig {
            optimize: false,
            ..Default::default()
        },
    );
    let measurements = vec![
        harness::measure("optimizer ON  (RDFFrames)", runs, || {
            baselines::rdfframes(&frame, &on)
        }),
        harness::measure("optimizer OFF (RDFFrames)", runs, || {
            baselines::rdfframes(&frame, &off)
        }),
        harness::measure("optimizer ON  (naive gen)", runs, || {
            baselines::naive(&frame, &on)
        }),
        harness::measure("optimizer OFF (naive gen)", runs, || {
            baselines::naive(&frame, &off)
        }),
    ];
    harness::print_panel(
        "Ablation 1: engine optimizer (topic modeling)",
        &measurements,
    );

    // --- 2. Pagination chunk size ---------------------------------------
    let kg_frame = casestudies::kg_embedding();
    let mut measurements = Vec::new();
    for chunk in [1_000usize, 10_000, 100_000, 1_000_000] {
        let ep = InProcessEndpoint::with_config(
            Arc::clone(&ds),
            EndpointConfig {
                max_rows_per_request: chunk,
                ..Default::default()
            },
        );
        measurements.push(harness::measure(&format!("chunk = {chunk}"), runs, || {
            baselines::rdfframes(&kg_frame, &ep)
        }));
    }
    harness::print_panel(
        "Ablation 2: pagination chunk size (KG embedding result transfer)",
        &measurements,
    );

    // --- 3. Round trips under simulated HTTP overhead --------------------
    // One compact query vs navigational-prefix + client-side processing,
    // with 2ms of per-request overhead (network + serialization).
    let overhead = Duration::from_millis(2);
    let slow = InProcessEndpoint::with_config(
        Arc::clone(&ds),
        EndpointConfig {
            request_overhead: overhead,
            ..Default::default()
        },
    );
    let cs1 = casestudies::movie_genre_classification(params.prolific);
    let measurements = vec![
        harness::measure("single query (RDFFrames)", runs, || {
            baselines::rdfframes(&cs1, &slow)
        }),
        harness::measure("per-part round trips (nav + df)", runs, || {
            baselines::navigation_plus_df(&cs1, &slow)
        }),
        harness::measure("expert (single query)", runs, || {
            Executor::new().run(&casestudies::movie_genre_expert(params.prolific), &slow)
        }),
    ];
    harness::print_panel(
        "Ablation 3: round trips with 2ms simulated request overhead (CS1)",
        &measurements,
    );
    println!(
        "\nendpoint served {} requests, {} rows total",
        slow.stats().requests(),
        slow.stats().rows_returned()
    );
}
