//! Micro-benchmark for the evaluator refactors.
//!
//! Runs a BGP-heavy query, a GROUP BY-heavy query, and an aggregate-heavy
//! numeric query (MIN/MAX/SUM/AVG over `dbpp:runtime`) on the synthetic
//! DBpedia-style dataset against all three evaluators — the seed term-
//! materialized reference ([`sparql_engine::eval_reference`]), the PR 1
//! row-at-a-time id-native pipeline ([`sparql_engine::eval_rows`]), and the
//! columnar default ([`sparql_engine::eval`]) — reporting median wall-clock
//! time, the deterministic `rows_scanned` work metric, and the number of
//! heap allocations per execution (via a counting global allocator). A
//! fourth, textually misordered BGP is run with the optimizer on and off to
//! record how much statistics-driven pattern ordering matters, and
//! `bgp_heavy` is re-run with resource budgets armed on every axis (but
//! never hit) to keep the governor's overhead honest (<2%). Results are
//! written to `BENCH_eval.json` so the perf trajectory is tracked in-repo.
//!
//! Usage: `cargo run --release -p bench --bin eval_bench [--scale N] [N]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::data;
use rdf_model::persist::{format, MemVfs, Store, Vfs};
use rdf_model::{ntriples, Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EvalMode, QueryBudget};

/// Counts every heap allocation so the bench can report per-query
/// allocation totals (the columnar evaluator's headline claim is "no
/// per-row `Vec`"; this makes it measurable).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, only adding a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const RUNS: usize = 9;
/// Runs for the persistence cold-start timings (each run rebuilds a whole
/// dataset, so fewer samples than the query loop).
const PERSIST_RUNS: usize = 5;

/// Median wall-clock of `runs` invocations of `f` (the result is consumed
/// by the caller-supplied asserts inside `f`, so nothing is optimized out).
fn median_of<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let out = f();
        samples.push(start.elapsed());
        drop(out);
    }
    samples.sort();
    samples[samples.len() / 2]
}

struct QuerySpec {
    id: &'static str,
    kind: &'static str,
    sparql: String,
}

fn queries() -> Vec<QuerySpec> {
    let prefixes = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                    PREFIX dbpo: <http://dbpedia.org/ontology/>\n\
                    PREFIX dbpr: <http://dbpedia.org/resource/>\n";
    vec![
        QuerySpec {
            id: "bgp_heavy",
            kind: "4-pattern BGP join over movies/actors, US-born filter",
            sparql: format!(
                "{prefixes}SELECT ?movie ?actor ?country ?genre \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor . \
                   ?actor dbpp:birthPlace ?country . \
                   ?movie dbpo:genre ?genre . \
                   ?movie dbpo:director ?director \
                   FILTER ( ?country = dbpr:United_States ) }}"
            ),
        },
        QuerySpec {
            id: "group_by_heavy",
            kind: "scan + GROUP BY actor with two aggregates",
            sparql: format!(
                "{prefixes}SELECT ?actor (COUNT(DISTINCT ?movie) AS ?movies) \
                 (COUNT(?genre) AS ?genres) \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor . \
                   ?movie dbpo:genre ?genre }} \
                 GROUP BY ?actor"
            ),
        },
        QuerySpec {
            id: "agg_numeric",
            kind: "MIN/MAX/SUM/AVG over integer runtimes, GROUP BY genre",
            sparql: format!(
                "{prefixes}SELECT ?genre (MIN(?rt) AS ?shortest) (MAX(?rt) AS ?longest) \
                 (SUM(?rt) AS ?total) (AVG(?rt) AS ?mean) (COUNT(?rt) AS ?n) \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpo:genre ?genre . \
                   ?movie dbpp:runtime ?rt }} \
                 GROUP BY ?genre"
            ),
        },
        QuerySpec {
            id: "sort_heavy",
            kind: "full ORDER BY over every starring pair (term-rank sort)",
            sparql: format!(
                "{prefixes}SELECT ?movie ?actor \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor }} \
                 ORDER BY ?actor ?movie"
            ),
        },
        QuerySpec {
            id: "star_merge_join",
            kind: "3-way star join on ?film; all sides sorted → merge joins",
            sparql: format!(
                "{prefixes}PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                 SELECT ?film FROM <http://dbpedia.org> WHERE {{ \
                   {{ ?film rdf:type dbpr:Film }} \
                   {{ ?film dbpp:country dbpr:United_States }} \
                   {{ ?film dbpo:genre dbpr:Film_score }} }}"
            ),
        },
        QuerySpec {
            id: "optional_heavy",
            kind: "all films OPTIONAL-extended twice; sorted sides → merge left joins",
            sparql: format!(
                "{prefixes}PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                 SELECT ?film ?rt ?la FROM <http://dbpedia.org> WHERE {{ \
                   {{ ?film rdf:type dbpr:Film }} \
                   OPTIONAL {{ ?film dbpo:genre dbpr:Film_score . ?film dbpp:runtime ?rt }} \
                   OPTIONAL {{ ?film dbpp:country dbpr:United_States . ?film dbpp:language ?la }} }}"
            ),
        },
        QuerySpec {
            id: "sorted_agg",
            kind: "GROUP BY the leading sort var of the POS starring scan → run detection",
            sparql: format!(
                "{prefixes}SELECT ?actor (COUNT(?movie) AS ?movies) \
                 (COUNT(DISTINCT ?movie) AS ?distinct_movies) \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor }} \
                 GROUP BY ?actor"
            ),
        },
        QuerySpec {
            id: "sorted_distinct",
            kind: "DISTINCT over the full sort sequence of the starring scan → run detection",
            sparql: format!(
                "{prefixes}SELECT DISTINCT ?actor ?movie \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor }}"
            ),
        },
    ]
}

/// BGP written worst-first: the selective award-like pattern comes last in
/// the text, so evaluating in textual order scans the big indexes first.
/// Run with the optimizer on and off to measure what selectivity-ordered
/// evaluation buys.
fn misordered_query() -> QuerySpec {
    let prefixes = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                    PREFIX dbpo: <http://dbpedia.org/ontology/>\n\
                    PREFIX dbpr: <http://dbpedia.org/resource/>\n";
    QuerySpec {
        id: "bgp_misordered",
        kind: "worst-first textual order; optimizer reorders by PredicateStats",
        sparql: format!(
            "{prefixes}SELECT ?movie ?actor ?genre \
             FROM <http://dbpedia.org> WHERE {{ \
               ?movie dbpp:starring ?actor . \
               ?movie dbpo:genre ?genre . \
               ?actor dbpp:academyAward ?aw }}"
        ),
    }
}

struct Outcome {
    /// Median of the timed runs (robust to scheduler noise).
    median: Duration,
    rows: usize,
    rows_scanned: u64,
    /// Merge joins that actually fired (columnar evaluator only).
    merge_joins: u64,
    /// Merge *left* joins that actually fired (columnar evaluator only).
    merge_left_joins: u64,
    /// DISTINCTs that deduplicated by run detection (columnar only).
    sorted_distincts: u64,
    /// GROUP BYs that grouped by run detection (columnar only).
    sorted_groups: u64,
    /// Heap allocations for one (post-warmup) execution.
    allocs: u64,
}

fn run(engine: &Engine, sparql: &str) -> Outcome {
    // Warmup (also surfaces errors before timing, and lets lazily-built
    // dataset caches — term ranks, refreshed stats — settle).
    let (warm, stats) = engine
        .execute_with_stats(sparql)
        .unwrap_or_else(|e| panic!("query failed: {e}\n{sparql}"));
    let rows = warm.len();
    let allocs_before = allocations();
    let (t, _) = engine.execute_with_stats(sparql).unwrap();
    let allocs = allocations() - allocs_before;
    assert_eq!(t.len(), rows, "non-deterministic result size");
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let (t, _) = engine.execute_with_stats(sparql).unwrap();
        samples.push(start.elapsed());
        assert_eq!(t.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Outcome {
        median: samples[samples.len() / 2],
        rows,
        rows_scanned: stats.rows_scanned,
        merge_joins: stats.merge_joins,
        merge_left_joins: stats.merge_left_joins,
        sorted_distincts: stats.sorted_distincts,
        sorted_groups: stats.sorted_groups,
        allocs,
    }
}

struct Args {
    scale: usize,
    /// Diff the fresh results against the previous `BENCH_eval.json`.
    compare: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        scale: 4000,
        compare: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                parsed.scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale requires a number"));
            }
            "--compare" => parsed.compare = true,
            other => {
                // Positional scale, kept for backward compatibility.
                if let Ok(n) = other.parse() {
                    parsed.scale = n;
                } else {
                    panic!(
                        "unknown argument {other} (usage: eval_bench [--scale N] [--compare] [N])"
                    );
                }
            }
        }
    }
    parsed
}

/// Pull `(query id, columnar ms)` pairs out of a previous `BENCH_eval.json`
/// (hand-rolled scan — the file is written by this binary, so the shape is
/// known; no JSON dependency needed).
fn parse_previous(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut current_id: Option<String> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"id\": \"") {
            current_id = rest.strip_suffix("\",").map(str::to_string);
        }
        for key in ["\"columnar_ms\": ", "\"selectivity_ordered_ms\": "] {
            if let Some(rest) = line.strip_prefix(key) {
                if let Ok(ms) = rest.trim_end_matches(',').parse::<f64>() {
                    if let Some(id) = current_id.take() {
                        out.push((id, ms));
                    }
                }
            }
        }
    }
    out
}

/// Print per-query deltas against the previous results file, so a PR body
/// can quote regressions/speedups without manual diffing.
fn print_comparison(previous: &[(String, f64)], fresh: &[(String, f64)]) {
    println!("\ncomparison vs previous BENCH_eval.json (columnar path):");
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "query", "prev (ms)", "now (ms)", "speedup"
    );
    for (id, now_ms) in fresh {
        match previous.iter().find(|(pid, _)| pid == id) {
            Some((_, prev_ms)) => {
                let speedup = prev_ms / now_ms.max(1e-12);
                let marker = if speedup < 0.9 {
                    "  <-- regression"
                } else {
                    ""
                };
                println!("{id:<18} {prev_ms:>12.3} {now_ms:>12.3} {speedup:>8.2}x{marker}");
            }
            None => println!("{id:<18} {:>12} {now_ms:>12.3} {:>9}", "-", "new"),
        }
    }
}

fn main() {
    let args = parse_args();
    let scale = args.scale;
    let previous = args
        .compare
        .then(|| std::fs::read_to_string("BENCH_eval.json").ok())
        .flatten()
        .map(|json| parse_previous(&json))
        .unwrap_or_default();
    let mut fresh: Vec<(String, f64)> = Vec::new();
    eprintln!("building dataset at scale {scale}...");
    let dataset: Arc<Dataset> = data::build_dataset(scale);
    eprintln!(
        "dataset: {} triples across {} graphs",
        dataset.total_triples(),
        dataset.len()
    );

    let mode_engine = |eval_mode| {
        Engine::with_config(
            Arc::clone(&dataset),
            EngineConfig {
                optimize: true,
                eval_mode,
                ..EngineConfig::new()
            },
        )
    };
    let reference = mode_engine(EvalMode::TermReference);
    let id_rows = mode_engine(EvalMode::IdNative);
    let columnar = mode_engine(EvalMode::Columnar);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"eval_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"runs\": {RUNS},");
    let _ = writeln!(
        json,
        "  \"evaluators\": [\"reference\", \"id_native_rows\", \"columnar\"],"
    );
    let _ = writeln!(json, "  \"queries\": [");

    println!(
        "\n{:<16} {:>13} {:>13} {:>13} {:>8} {:>8} {:>12} {:>8}",
        "query", "ref (ms)", "rows (ms)", "col (ms)", "vs ref", "vs rows", "rows_scanned", "rows"
    );
    let specs = queries();
    for spec in &specs {
        let ref_out = run(&reference, &spec.sparql);
        let rows_out = run(&id_rows, &spec.sparql);
        let col_out = run(&columnar, &spec.sparql);
        for (name, out) in [("id_native_rows", &rows_out), ("columnar", &col_out)] {
            assert_eq!(
                ref_out.rows, out.rows,
                "{}: {name} disagrees on result size",
                spec.id
            );
            assert_eq!(
                ref_out.rows_scanned, out.rows_scanned,
                "{}: {name} disagrees on work metric",
                spec.id
            );
        }
        let vs_ref = ref_out.median.as_secs_f64() / col_out.median.as_secs_f64().max(1e-12);
        let vs_rows = rows_out.median.as_secs_f64() / col_out.median.as_secs_f64().max(1e-12);
        println!(
            "{:<16} {:>13.3} {:>13.3} {:>13.3} {:>7.2}x {:>7.2}x {:>12} {:>8}",
            spec.id,
            ref_out.median.as_secs_f64() * 1e3,
            rows_out.median.as_secs_f64() * 1e3,
            col_out.median.as_secs_f64() * 1e3,
            vs_ref,
            vs_rows,
            ref_out.rows_scanned,
            ref_out.rows
        );
        println!(
            "{:<16} allocs: ref {} | rows {} | columnar {}",
            "", ref_out.allocs, rows_out.allocs, col_out.allocs
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", spec.id);
        let _ = writeln!(json, "      \"kind\": \"{}\",", spec.kind);
        let _ = writeln!(
            json,
            "      \"reference_ms\": {:.3},",
            ref_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"id_native_rows_ms\": {:.3},",
            rows_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"columnar_ms\": {:.3},",
            col_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup_vs_reference\": {vs_ref:.3},");
        let _ = writeln!(json, "      \"speedup_vs_id_native_rows\": {vs_rows:.3},");
        let _ = writeln!(
            json,
            "      \"allocations\": {{ \"reference\": {}, \"id_native_rows\": {}, \"columnar\": {} }},",
            ref_out.allocs, rows_out.allocs, col_out.allocs
        );
        let _ = writeln!(json, "      \"rows_scanned\": {},", ref_out.rows_scanned);
        let _ = writeln!(json, "      \"merge_joins\": {},", col_out.merge_joins);
        let _ = writeln!(
            json,
            "      \"merge_left_joins\": {},",
            col_out.merge_left_joins
        );
        let _ = writeln!(
            json,
            "      \"sorted_distincts\": {},",
            col_out.sorted_distincts
        );
        let _ = writeln!(json, "      \"sorted_groups\": {},", col_out.sorted_groups);
        let _ = writeln!(json, "      \"rows\": {}", ref_out.rows);
        // The queries array always continues with the ordering case below,
        // so every entry here takes a trailing comma.
        let _ = writeln!(json, "    }},");
        fresh.push((spec.id.to_string(), col_out.median.as_secs_f64() * 1e3));
    }

    // Rewrite ablation: the columnar evaluator with this PR's physical
    // rewrites (merge joins, FILTER pushdown, term-rank ORDER BY) against
    // the same evaluator with them disabled — i.e. the PR 4 baseline.
    let pr4_baseline = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            filter_pushdown: false,
            merge_joins: false,
            rank_order_by: false,
            ..EngineConfig::new()
        },
    );
    println!(
        "\n{:<18} {:>13} {:>13} {:>9} {:>12} {:>7}  (columnar: PR4 baseline vs rewrites)",
        "ablation", "pr4 (ms)", "rewrite (ms)", "speedup", "merge_joins", "rows"
    );
    for spec in specs
        .iter()
        .filter(|s| s.id == "sort_heavy" || s.id == "star_merge_join")
    {
        let base_out = run(&pr4_baseline, &spec.sparql);
        let new_out = run(&columnar, &spec.sparql);
        assert_eq!(
            base_out.rows, new_out.rows,
            "{}: ablation result drift",
            spec.id
        );
        let speedup = base_out.median.as_secs_f64() / new_out.median.as_secs_f64().max(1e-12);
        println!(
            "{:<18} {:>13.3} {:>13.3} {:>8.2}x {:>12} {:>7}",
            spec.id,
            base_out.median.as_secs_f64() * 1e3,
            new_out.median.as_secs_f64() * 1e3,
            speedup,
            new_out.merge_joins,
            new_out.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}_vs_pr4\",", spec.id);
        let _ = writeln!(
            json,
            "      \"kind\": \"rewrite ablation: {} with merge joins/pushdown/rank sort off vs on\",",
            spec.id
        );
        let _ = writeln!(
            json,
            "      \"pr4_baseline_ms\": {:.3},",
            base_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"columnar_ms\": {:.3},",
            new_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup_vs_pr4_baseline\": {speedup:.3},");
        let _ = writeln!(json, "      \"merge_joins\": {},", new_out.merge_joins);
        let _ = writeln!(
            json,
            "      \"allocations\": {{ \"pr4_baseline\": {}, \"columnar\": {} }},",
            base_out.allocs, new_out.allocs
        );
        let _ = writeln!(json, "      \"rows\": {}", new_out.rows);
        let _ = writeln!(json, "    }},");
    }

    // Second ablation: this PR's order-aware rewrites (merge left joins,
    // sorted DISTINCT, sorted GROUP BY) against the same columnar engine
    // with only them disabled — i.e. the PR 6 baseline, which already has
    // inner merge joins, FILTER pushdown, and rank ORDER BY.
    let pr6_baseline = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            merge_left_joins: false,
            sorted_distinct: false,
            sorted_group_by: false,
            ..EngineConfig::new()
        },
    );
    println!(
        "\n{:<18} {:>13} {:>13} {:>9} {:>9} {:>8} {:>8} {:>9}  (columnar: PR6 baseline vs order-aware aggregation)",
        "ablation", "pr6 (ms)", "rewrite (ms)", "speedup", "mljoins", "sdist", "sgroup", "rows"
    );
    for spec in specs
        .iter()
        .filter(|s| s.id == "optional_heavy" || s.id == "sorted_agg" || s.id == "sorted_distinct")
    {
        let base_out = run(&pr6_baseline, &spec.sparql);
        let new_out = run(&columnar, &spec.sparql);
        assert_eq!(
            base_out.rows, new_out.rows,
            "{}: ablation result drift",
            spec.id
        );
        assert_eq!(
            base_out.rows_scanned, new_out.rows_scanned,
            "{}: order-aware rewrites must not change scan work",
            spec.id
        );
        let speedup = base_out.median.as_secs_f64() / new_out.median.as_secs_f64().max(1e-12);
        println!(
            "{:<18} {:>13.3} {:>13.3} {:>8.2}x {:>9} {:>8} {:>8} {:>9}",
            spec.id,
            base_out.median.as_secs_f64() * 1e3,
            new_out.median.as_secs_f64() * 1e3,
            speedup,
            new_out.merge_left_joins,
            new_out.sorted_distincts,
            new_out.sorted_groups,
            new_out.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}_vs_pr6\",", spec.id);
        let _ = writeln!(
            json,
            "      \"kind\": \"rewrite ablation: {} with merge left joins/sorted distinct/sorted group-by off vs on\",",
            spec.id
        );
        let _ = writeln!(
            json,
            "      \"pr6_baseline_ms\": {:.3},",
            base_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"columnar_ms\": {:.3},",
            new_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup_vs_pr6_baseline\": {speedup:.3},");
        let _ = writeln!(
            json,
            "      \"merge_left_joins\": {},",
            new_out.merge_left_joins
        );
        let _ = writeln!(
            json,
            "      \"sorted_distincts\": {},",
            new_out.sorted_distincts
        );
        let _ = writeln!(json, "      \"sorted_groups\": {},", new_out.sorted_groups);
        let _ = writeln!(
            json,
            "      \"allocations\": {{ \"pr6_baseline\": {}, \"columnar\": {} }},",
            base_out.allocs, new_out.allocs
        );
        let _ = writeln!(json, "      \"rows\": {}", new_out.rows);
        let _ = writeln!(json, "    }},");
    }

    // Ordering case: same engine (columnar), optimizer on vs off.
    let unoptimized = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            optimize: false,
            eval_mode: EvalMode::Columnar,
            ..EngineConfig::new()
        },
    );
    let mis = misordered_query();
    let ordered_out = run(&columnar, &mis.sparql);
    let textual_out = run(&unoptimized, &mis.sparql);
    assert_eq!(ordered_out.rows, textual_out.rows);
    let speedup = textual_out.median.as_secs_f64() / ordered_out.median.as_secs_f64().max(1e-12);
    println!(
        "{:<16} {:>13.3} {:>13.3} {:>13} {:>7.2}x {:>8} {:>12} {:>8}  (optimizer off vs on, columnar)",
        mis.id,
        textual_out.median.as_secs_f64() * 1e3,
        ordered_out.median.as_secs_f64() * 1e3,
        "-",
        speedup,
        "-",
        ordered_out.rows_scanned,
        ordered_out.rows
    );
    let _ = writeln!(json, "    {{");
    let _ = writeln!(json, "      \"id\": \"{}\",", mis.id);
    let _ = writeln!(json, "      \"kind\": \"{}\",", mis.kind);
    let _ = writeln!(
        json,
        "      \"textual_order_ms\": {:.3},",
        textual_out.median.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "      \"selectivity_ordered_ms\": {:.3},",
        ordered_out.median.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "      \"speedup_from_ordering\": {speedup:.3},");
    let _ = writeln!(
        json,
        "      \"rows_scanned_ordered\": {},",
        ordered_out.rows_scanned
    );
    let _ = writeln!(
        json,
        "      \"rows_scanned_textual\": {},",
        textual_out.rows_scanned
    );
    let _ = writeln!(json, "      \"rows\": {}", ordered_out.rows);
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  ],");
    fresh.push((mis.id.to_string(), ordered_out.median.as_secs_f64() * 1e3));

    // Budget-governor overhead: `bgp_heavy` with generous limits armed on
    // every axis (so the meter runs but never trips) against the plain
    // engine. The governor's contract is that an armed-but-unhit budget is
    // invisible: same rows, same `rows_scanned`, and a median wall-clock
    // regression under 2%.
    let budgeted = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::Columnar,
            budget: QueryBudget::unlimited()
                .with_max_rows_scanned(u64::MAX / 2)
                .with_max_intermediate_rows(u64::MAX / 2)
                .with_max_memory_bytes(u64::MAX / 2)
                .with_deadline(Duration::from_secs(3600)),
            ..EngineConfig::new()
        },
    );
    let heavy = specs
        .iter()
        .find(|s| s.id == "bgp_heavy")
        .expect("bgp_heavy spec");
    let off_out = run(&columnar, &heavy.sparql);
    let on_out = run(&budgeted, &heavy.sparql);
    assert_eq!(off_out.rows, on_out.rows, "budget meter changed the result");
    assert_eq!(
        off_out.rows_scanned, on_out.rows_scanned,
        "budget meter changed the work metric"
    );
    let overhead_pct =
        (on_out.median.as_secs_f64() / off_out.median.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    println!(
        "\n{:<18} {:>13} {:>13} {:>9}  (columnar bgp_heavy: budgets off vs armed-but-unhit)",
        "budget_overhead", "off (ms)", "armed (ms)", "overhead"
    );
    println!(
        "{:<18} {:>13.3} {:>13.3} {:>8.2}%",
        "bgp_heavy",
        off_out.median.as_secs_f64() * 1e3,
        on_out.median.as_secs_f64() * 1e3,
        overhead_pct
    );
    let _ = writeln!(json, "  \"budget_overhead\": {{");
    let _ = writeln!(json, "    \"id\": \"budget_overhead\",");
    let _ = writeln!(
        json,
        "    \"kind\": \"bgp_heavy on columnar: budgets off vs armed on all four axes but never hit\","
    );
    let _ = writeln!(
        json,
        "    \"budgets_off_ms\": {:.3},",
        off_out.median.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"budgets_armed_ms\": {:.3},",
        on_out.median.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"overhead_pct\": {overhead_pct:.3},");
    let _ = writeln!(
        json,
        "    \"allocations\": {{ \"off\": {}, \"armed\": {} }},",
        off_out.allocs, on_out.allocs
    );
    let _ = writeln!(json, "    \"rows\": {}", on_out.rows);
    let _ = writeln!(json, "  }},");

    // Durability: cold-start cost of the three ways to get this dataset
    // back into memory — binary snapshot decode, N-Triples re-parse +
    // rebuild, and full Store recovery (snapshot load + WAL replay) — plus
    // encode cost and at-rest sizes. The acceptance bar is the snapshot
    // beating the N-Triples re-parse by ≥5× at the paper scale.
    let snapshot_encode = median_of(PERSIST_RUNS, || format::encode_dataset(&dataset));
    let snapshot = format::encode_dataset(&dataset);
    let nt_docs: Vec<(String, String)> = dataset
        .graph_uris()
        .map(|uri| {
            let g = dataset.graph(uri).expect("graph");
            (uri.to_string(), ntriples::write_document(g.iter_triples()))
        })
        .collect();
    let nt_bytes: usize = nt_docs.iter().map(|(_, d)| d.len()).sum();

    let snapshot_load = median_of(PERSIST_RUNS, || {
        let ds = format::decode_dataset(&snapshot).expect("snapshot decode");
        assert_eq!(ds.total_triples(), dataset.total_triples());
        ds
    });
    let ntriples_reload = median_of(PERSIST_RUNS, || {
        let mut ds = Dataset::new();
        for (uri, doc) in &nt_docs {
            let triples = ntriples::parse_document(doc).expect("re-parse");
            let mut g = Graph::new();
            for t in &triples {
                g.insert(t);
            }
            ds.insert_graph(uri.clone(), g);
        }
        assert_eq!(ds.total_triples(), dataset.total_triples());
        ds
    });

    // A realistic crash image: checkpointed snapshot plus a WAL tail of
    // append batches that recovery has to replay on top of it.
    let wal_batches = 8usize;
    let batch = 512usize;
    let vfs = Arc::new(MemVfs::new());
    let mut store = Store::open(Arc::clone(&vfs) as Arc<dyn Vfs>).expect("store open");
    for uri in dataset.graph_uris() {
        store
            .insert_graph(uri, dataset.graph(uri).expect("graph"))
            .expect("insert_graph");
    }
    store.checkpoint().expect("checkpoint");
    let wal_uri = dataset.graph_uris().next().expect("graph uri").to_string();
    let mut fresh_id = 0usize;
    for _ in 0..wal_batches {
        let triples: Vec<Triple> = (0..batch)
            .map(|_| {
                fresh_id += 1;
                Triple::new(
                    Term::iri(format!("http://persist.bench/s{fresh_id}")),
                    Term::iri("http://persist.bench/p"),
                    Term::integer(fresh_id as i64),
                )
            })
            .collect();
        store.append_triples(&wal_uri, triples).expect("append");
    }
    let image_gen = store.dataset().stats_generation();
    let wal_bytes = store.wal_len();
    let images: Vec<Arc<MemVfs>> = (0..PERSIST_RUNS)
        .map(|_| Arc::new(MemVfs::reopen_from(&vfs)))
        .collect();
    let mut image_idx = 0usize;
    let recovery = median_of(PERSIST_RUNS, || {
        let image = Arc::clone(&images[image_idx]);
        image_idx += 1;
        let recovered = Store::open(image as Arc<dyn Vfs>).expect("recovery");
        assert_eq!(recovered.dataset().stats_generation(), image_gen);
        assert_eq!(recovered.recovery().replayed, wal_batches);
        recovered
    });

    let snapshot_speedup = ntriples_reload.as_secs_f64() / snapshot_load.as_secs_f64().max(1e-12);
    println!(
        "\n{:<18} {:>13} {:>13} {:>13} {:>9}  (cold start at scale {scale})",
        "persistence", "snapshot (ms)", "ntriples (ms)", "recovery (ms)", "speedup"
    );
    println!(
        "{:<18} {:>13.3} {:>13.3} {:>13.3} {:>8.2}x",
        "cold_start",
        snapshot_load.as_secs_f64() * 1e3,
        ntriples_reload.as_secs_f64() * 1e3,
        recovery.as_secs_f64() * 1e3,
        snapshot_speedup
    );
    println!(
        "{:<18} snapshot {} B | ntriples {} B | wal {} B | encode {:.3} ms",
        "",
        snapshot.len(),
        nt_bytes,
        wal_bytes,
        snapshot_encode.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  \"persistence\": {{");
    let _ = writeln!(json, "    \"id\": \"persistence_cold_start\",");
    let _ = writeln!(
        json,
        "    \"kind\": \"cold start: binary snapshot decode vs N-Triples re-parse vs Store recovery (snapshot + {wal_batches} WAL batches of {batch})\","
    );
    let _ = writeln!(json, "    \"snapshot_bytes\": {},", snapshot.len());
    let _ = writeln!(json, "    \"ntriples_bytes\": {nt_bytes},");
    let _ = writeln!(json, "    \"wal_bytes\": {wal_bytes},");
    let _ = writeln!(
        json,
        "    \"snapshot_encode_ms\": {:.3},",
        snapshot_encode.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"snapshot_load_ms\": {:.3},",
        snapshot_load.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"ntriples_reload_ms\": {:.3},",
        ntriples_reload.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "    \"recovery_ms\": {:.3},",
        recovery.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "    \"wal_records_replayed\": {wal_batches},");
    let _ = writeln!(
        json,
        "    \"snapshot_speedup_vs_ntriples\": {snapshot_speedup:.3}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if args.compare {
        if previous.is_empty() {
            eprintln!("\n--compare: no previous BENCH_eval.json to diff against");
        } else {
            print_comparison(&previous, &fresh);
        }
    }

    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    eprintln!("\nwrote BENCH_eval.json");
}
