//! Micro-benchmark for the id-native evaluator refactor.
//!
//! Runs a BGP-heavy query and a group-by-heavy query on the synthetic
//! DBpedia-style dataset against both evaluators — the seed term-
//! materialized reference ([`sparql_engine::eval_reference`]) and the
//! id-native pipeline ([`sparql_engine::eval`]) — reporting median
//! wall-clock time *and* the deterministic `rows_scanned` work metric, and writes the
//! results to `BENCH_eval.json` so the perf trajectory is tracked in-repo.
//!
//! Usage: `cargo run --release -p bench --bin eval_bench [scale]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::data;
use rdf_model::Dataset;
use sparql_engine::{Engine, EngineConfig, EvalMode};

const RUNS: usize = 9;

struct QuerySpec {
    id: &'static str,
    kind: &'static str,
    sparql: String,
}

fn queries() -> Vec<QuerySpec> {
    let prefixes = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                    PREFIX dbpo: <http://dbpedia.org/ontology/>\n\
                    PREFIX dbpr: <http://dbpedia.org/resource/>\n";
    vec![
        QuerySpec {
            id: "bgp_heavy",
            kind: "4-pattern BGP join over movies/actors, US-born filter",
            sparql: format!(
                "{prefixes}SELECT ?movie ?actor ?country ?genre \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor . \
                   ?actor dbpp:birthPlace ?country . \
                   ?movie dbpo:genre ?genre . \
                   ?movie dbpo:director ?director \
                   FILTER ( ?country = dbpr:United_States ) }}"
            ),
        },
        QuerySpec {
            id: "group_by_heavy",
            kind: "scan + GROUP BY actor with two aggregates",
            sparql: format!(
                "{prefixes}SELECT ?actor (COUNT(DISTINCT ?movie) AS ?movies) \
                 (COUNT(?genre) AS ?genres) \
                 FROM <http://dbpedia.org> WHERE {{ \
                   ?movie dbpp:starring ?actor . \
                   ?movie dbpo:genre ?genre }} \
                 GROUP BY ?actor"
            ),
        },
    ]
}

struct Outcome {
    /// Median of the timed runs (robust to scheduler noise).
    median: Duration,
    rows: usize,
    rows_scanned: u64,
}

fn run(engine: &Engine, sparql: &str) -> Outcome {
    // Warmup (also surfaces errors before timing).
    let (warm, stats) = engine
        .execute_with_stats(sparql)
        .unwrap_or_else(|e| panic!("query failed: {e}\n{sparql}"));
    let rows = warm.len();
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let (t, _) = engine.execute_with_stats(sparql).unwrap();
        samples.push(start.elapsed());
        assert_eq!(t.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Outcome {
        median: samples[samples.len() / 2],
        rows,
        rows_scanned: stats.rows_scanned,
    }
}

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    eprintln!("building dataset at scale {scale}...");
    let dataset: Arc<Dataset> = data::build_dataset(scale);
    eprintln!("dataset: {} triples across {} graphs", dataset.total_triples(), dataset.len());

    let id_native = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::IdNative,
        },
    );
    let reference = Engine::with_config(
        Arc::clone(&dataset),
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::TermReference,
        },
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"eval_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"runs\": {RUNS},");
    let _ = writeln!(json, "  \"queries\": [");

    println!(
        "\n{:<16} {:>16} {:>16} {:>9} {:>12} {:>10}",
        "query", "reference (ms)", "id-native (ms)", "speedup", "rows_scanned", "rows"
    );
    let specs = queries();
    for (i, spec) in specs.iter().enumerate() {
        let ref_out = run(&reference, &spec.sparql);
        let id_out = run(&id_native, &spec.sparql);
        assert_eq!(
            ref_out.rows, id_out.rows,
            "{}: evaluators disagree on result size",
            spec.id
        );
        assert_eq!(
            ref_out.rows_scanned, id_out.rows_scanned,
            "{}: evaluators disagree on work metric",
            spec.id
        );
        let speedup = ref_out.median.as_secs_f64() / id_out.median.as_secs_f64().max(1e-12);
        println!(
            "{:<16} {:>16.3} {:>16.3} {:>8.2}x {:>12} {:>10}",
            spec.id,
            ref_out.median.as_secs_f64() * 1e3,
            id_out.median.as_secs_f64() * 1e3,
            speedup,
            ref_out.rows_scanned,
            ref_out.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", spec.id);
        let _ = writeln!(json, "      \"kind\": \"{}\",", spec.kind);
        let _ = writeln!(
            json,
            "      \"reference_ms\": {:.3},",
            ref_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"id_native_ms\": {:.3},",
            id_out.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup\": {speedup:.3},");
        let _ = writeln!(json, "      \"rows_scanned\": {},", ref_out.rows_scanned);
        let _ = writeln!(json, "      \"rows\": {}", ref_out.rows);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < specs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_eval.json", &json).expect("write BENCH_eval.json");
    eprintln!("\nwrote BENCH_eval.json");
}
