//! End-to-end frame-execution benchmark: embedded vs wire.
//!
//! Runs the example workloads (the three case studies plus two of the
//! heavier Table 2 synthetic queries) through `RDFFrame::execute` on four
//! endpoints over one dataset:
//!
//! - **embedded** — `EmbeddedEndpoint`: model → plan compiler → one
//!   columnar cursor evaluation → typed cells decoded once per distinct
//!   term. No SPARQL text, no pagination, no wire format.
//! - **wire_none** — `InProcessEndpoint` with `WireFormat::None`: the
//!   render/parse/per-page-evaluate/per-cell-decode pipeline without result
//!   serialization (isolates the string-query overhead).
//! - **wire_tsv** / **wire_xml** — the same plus a real TSV / XML encode +
//!   parse round trip per chunk; XML is what the paper's SPARQLWrapper
//!   stack pays for.
//!
//! Every path must return the same number of rows. Results go to
//! `BENCH_frames.json`.
//!
//! A second section measures the streaming pull-based pipeline against
//! full materialization on the embedded path: same workloads, same
//! endpoint type, `EngineConfig::streaming` toggled — reporting median
//! wall time and **peak live heap** per run via a counting global
//! allocator. The result `DataFrame` is O(result) on both sides; the
//! difference is the intermediate state (the materialized `IdTable`,
//! sort scratch, …) that streaming never holds.
//!
//! Usage: `cargo run --release -p bench --bin frame_bench [--scale N] [N]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::Dataset;
use rdfframes_core::{
    EmbeddedEndpoint, Endpoint, EndpointConfig, InProcessEndpoint, RDFFrame, WireFormat,
};
use sparql_engine::EngineConfig;

const RUNS: usize = 5;

/// Global allocator wrapper keeping a live-bytes counter and a
/// high-water mark, so a benchmark run can report its true peak heap
/// (every allocation in the process, not just tracked tables).
struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    fn grow(&self, by: usize) {
        let live = self.live.fetch_add(by, Ordering::Relaxed) + by;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn shrink(&self, by: usize) {
        self.live.fetch_sub(by, Ordering::Relaxed);
    }

    /// Current live bytes.
    fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Drop the high-water mark back to the current live level; the next
    /// [`Self::peak_bytes`] read covers only allocations made after this.
    fn reset_peak(&self) {
        self.peak.store(self.live_bytes(), Ordering::Relaxed);
    }

    fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.grow(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.shrink(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            self.grow(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                self.grow(new_size - layout.size());
            } else {
                self.shrink(layout.size() - new_size);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

struct Workload {
    id: &'static str,
    kind: String,
    frame: RDFFrame,
}

fn workloads(scale: usize) -> Vec<Workload> {
    let p = CaseParams::for_scale(scale);
    let mut out = vec![
        Workload {
            id: "cs1_movie_genre",
            kind: format!(
                "case study 1: movie-genre features (prolific ≥ {})",
                p.prolific
            ),
            frame: casestudies::movie_genre_classification(p.prolific),
        },
        Workload {
            id: "cs2_topic_modeling",
            kind: format!(
                "case study 2: recent titles by authors with ≥ {} VLDB/SIGMOD papers",
                p.threshold
            ),
            frame: casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
        },
        Workload {
            id: "cs3_kg_embedding",
            kind: "case study 3: all entity-to-entity triples".into(),
            frame: casestudies::kg_embedding(),
        },
    ];
    for def in queries::all_queries() {
        if def.id == "Q1" || def.id == "Q8" {
            out.push(Workload {
                id: if def.id == "Q1" {
                    "q1_players"
                } else {
                    "q8_films"
                },
                kind: format!("synthetic {}: {}", def.id, def.description),
                frame: def.frame,
            });
        }
    }
    out
}

struct Outcome {
    median: Duration,
    rows: usize,
}

fn run<E: Endpoint>(frame: &RDFFrame, endpoint: &E) -> Outcome {
    let warm = frame
        .execute(endpoint)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    let rows = warm.len();
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let df = frame.execute(endpoint).unwrap();
        samples.push(start.elapsed());
        assert_eq!(df.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Outcome {
        median: samples[samples.len() / 2],
        rows,
    }
}

struct MemOutcome {
    median: Duration,
    peak_bytes: usize,
    rows: usize,
}

/// Like [`run`], but also report the median per-run peak of *newly live*
/// heap (high-water mark minus the live bytes at run start, so the
/// resident dataset and endpoint caches don't drown the signal).
fn run_measuring_heap<E: Endpoint>(frame: &RDFFrame, endpoint: &E) -> MemOutcome {
    let warm = frame
        .execute(endpoint)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    let rows = warm.len();
    drop(warm);
    let mut times = Vec::with_capacity(RUNS);
    let mut peaks = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let base = ALLOC.live_bytes();
        ALLOC.reset_peak();
        let start = Instant::now();
        let df = frame.execute(endpoint).unwrap();
        times.push(start.elapsed());
        peaks.push(ALLOC.peak_bytes().saturating_sub(base));
        assert_eq!(df.len(), rows, "non-deterministic result size");
    }
    times.sort();
    peaks.sort();
    MemOutcome {
        median: times[times.len() / 2],
        peak_bytes: peaks[peaks.len() / 2],
        rows,
    }
}

fn parse_args() -> usize {
    let mut scale = 4000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale requires a number"));
            }
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                } else {
                    panic!("unknown argument {other} (usage: frame_bench [--scale N] [N])");
                }
            }
        }
    }
    scale
}

fn wire(dataset: &Arc<Dataset>, format: WireFormat) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        Arc::clone(dataset),
        EndpointConfig {
            wire: format,
            ..Default::default()
        },
    )
}

fn main() {
    let scale = parse_args();
    eprintln!("building dataset at scale {scale}...");
    let dataset = data::build_dataset(scale);
    eprintln!(
        "dataset: {} triples across {} graphs",
        dataset.total_triples(),
        dataset.len()
    );

    let embedded = EmbeddedEndpoint::new(Arc::clone(&dataset));
    let wire_none = wire(&dataset, WireFormat::None);
    let wire_tsv = wire(&dataset, WireFormat::Tsv);
    let wire_xml = wire(&dataset, WireFormat::Xml);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"frame_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"runs\": {RUNS},");
    let _ = writeln!(
        json,
        "  \"paths\": [\"embedded\", \"wire_none\", \"wire_tsv\", \"wire_xml\"],"
    );
    let _ = writeln!(json, "  \"workloads\": [");

    println!(
        "\n{:<18} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "workload",
        "embed (ms)",
        "none (ms)",
        "tsv (ms)",
        "xml (ms)",
        "vs none",
        "vs tsv",
        "vs xml"
    );
    let specs = workloads(scale);
    let n = specs.len();
    for (i, w) in specs.iter().enumerate() {
        let out_embedded = run(&w.frame, &embedded);
        let out_none = run(&w.frame, &wire_none);
        let out_tsv = run(&w.frame, &wire_tsv);
        let out_xml = run(&w.frame, &wire_xml);
        for (name, out) in [
            ("wire_none", &out_none),
            ("wire_tsv", &out_tsv),
            ("wire_xml", &out_xml),
        ] {
            assert_eq!(
                out_embedded.rows, out.rows,
                "{}: {name} disagrees on result size",
                w.id
            );
        }
        let embed_s = out_embedded.median.as_secs_f64().max(1e-12);
        let vs_none = out_none.median.as_secs_f64() / embed_s;
        let vs_tsv = out_tsv.median.as_secs_f64() / embed_s;
        let vs_xml = out_xml.median.as_secs_f64() / embed_s;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x {:>7.2}x {:>7.2}x  ({} rows)",
            w.id,
            out_embedded.median.as_secs_f64() * 1e3,
            out_none.median.as_secs_f64() * 1e3,
            out_tsv.median.as_secs_f64() * 1e3,
            out_xml.median.as_secs_f64() * 1e3,
            vs_none,
            vs_tsv,
            vs_xml,
            out_embedded.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", w.id);
        let _ = writeln!(json, "      \"kind\": \"{}\",", w.kind);
        let _ = writeln!(json, "      \"rows\": {},", out_embedded.rows);
        let _ = writeln!(
            json,
            "      \"embedded_ms\": {:.3},",
            out_embedded.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_none_ms\": {:.3},",
            out_none.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_tsv_ms\": {:.3},",
            out_tsv.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_xml_ms\": {:.3},",
            out_xml.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup_vs_wire_none\": {vs_none:.3},");
        let _ = writeln!(json, "      \"speedup_vs_wire_tsv\": {vs_tsv:.3},");
        let _ = writeln!(json, "      \"speedup_vs_wire_xml\": {vs_xml:.3}");
        let _ = writeln!(json, "    }}{}", if i + 1 < n { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");

    // Streaming pipeline vs full materialization, embedded path only:
    // identical results by construction (the differential suites pin
    // that); here the question is wall time and peak live heap.
    let streaming_ep = EmbeddedEndpoint::new(Arc::clone(&dataset));
    let materializing_ep = EmbeddedEndpoint::with_engine_config(
        Arc::clone(&dataset),
        EngineConfig {
            streaming: false,
            ..EngineConfig::new()
        },
    );
    println!(
        "\n{:<18} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "workload", "stream (ms)", "mat (ms)", "stream MB", "mat MB", "mem ratio"
    );
    let _ = writeln!(json, "  \"streaming_vs_materializing\": [");
    for (i, w) in specs.iter().enumerate() {
        let out_stream = run_measuring_heap(&w.frame, &streaming_ep);
        let out_mat = run_measuring_heap(&w.frame, &materializing_ep);
        assert_eq!(
            out_stream.rows, out_mat.rows,
            "{}: streaming disagrees on result size",
            w.id
        );
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        let ratio = mb(out_mat.peak_bytes) / mb(out_stream.peak_bytes).max(1e-9);
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.2} {:>12.2} {:>8.2}x  ({} rows)",
            w.id,
            out_stream.median.as_secs_f64() * 1e3,
            out_mat.median.as_secs_f64() * 1e3,
            mb(out_stream.peak_bytes),
            mb(out_mat.peak_bytes),
            ratio,
            out_stream.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", w.id);
        let _ = writeln!(json, "      \"rows\": {},", out_stream.rows);
        let _ = writeln!(
            json,
            "      \"streaming_ms\": {:.3},",
            out_stream.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"materializing_ms\": {:.3},",
            out_mat.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"streaming_peak_mb\": {:.3},",
            mb(out_stream.peak_bytes)
        );
        let _ = writeln!(
            json,
            "      \"materializing_peak_mb\": {:.3},",
            mb(out_mat.peak_bytes)
        );
        let _ = writeln!(json, "      \"peak_heap_ratio\": {ratio:.3}");
        let _ = writeln!(json, "    }}{}", if i + 1 < n { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_frames.json", &json).expect("write BENCH_frames.json");
    eprintln!("\nwrote BENCH_frames.json");
}
