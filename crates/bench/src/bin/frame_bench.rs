//! End-to-end frame-execution benchmark: embedded vs wire.
//!
//! Runs the example workloads (the three case studies plus two of the
//! heavier Table 2 synthetic queries) through `RDFFrame::execute` on four
//! endpoints over one dataset:
//!
//! - **embedded** — `EmbeddedEndpoint`: model → plan compiler → one
//!   columnar cursor evaluation → typed cells decoded once per distinct
//!   term. No SPARQL text, no pagination, no wire format.
//! - **wire_none** — `InProcessEndpoint` with `WireFormat::None`: the
//!   render/parse/per-page-evaluate/per-cell-decode pipeline without result
//!   serialization (isolates the string-query overhead).
//! - **wire_tsv** / **wire_xml** — the same plus a real TSV / XML encode +
//!   parse round trip per chunk; XML is what the paper's SPARQLWrapper
//!   stack pays for.
//!
//! Every path must return the same number of rows. Results go to
//! `BENCH_frames.json`.
//!
//! Usage: `cargo run --release -p bench --bin frame_bench [--scale N] [N]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::casestudies::{self, CaseParams};
use bench::data;
use bench::queries;
use rdf_model::Dataset;
use rdfframes_core::{
    EmbeddedEndpoint, Endpoint, EndpointConfig, InProcessEndpoint, RDFFrame, WireFormat,
};

const RUNS: usize = 5;

struct Workload {
    id: &'static str,
    kind: String,
    frame: RDFFrame,
}

fn workloads(scale: usize) -> Vec<Workload> {
    let p = CaseParams::for_scale(scale);
    let mut out = vec![
        Workload {
            id: "cs1_movie_genre",
            kind: format!(
                "case study 1: movie-genre features (prolific ≥ {})",
                p.prolific
            ),
            frame: casestudies::movie_genre_classification(p.prolific),
        },
        Workload {
            id: "cs2_topic_modeling",
            kind: format!(
                "case study 2: recent titles by authors with ≥ {} VLDB/SIGMOD papers",
                p.threshold
            ),
            frame: casestudies::topic_modeling(p.since_year, p.threshold, p.recent_year),
        },
        Workload {
            id: "cs3_kg_embedding",
            kind: "case study 3: all entity-to-entity triples".into(),
            frame: casestudies::kg_embedding(),
        },
    ];
    for def in queries::all_queries() {
        if def.id == "Q1" || def.id == "Q8" {
            out.push(Workload {
                id: if def.id == "Q1" {
                    "q1_players"
                } else {
                    "q8_films"
                },
                kind: format!("synthetic {}: {}", def.id, def.description),
                frame: def.frame,
            });
        }
    }
    out
}

struct Outcome {
    median: Duration,
    rows: usize,
}

fn run<E: Endpoint>(frame: &RDFFrame, endpoint: &E) -> Outcome {
    let warm = frame
        .execute(endpoint)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    let rows = warm.len();
    let mut samples = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let df = frame.execute(endpoint).unwrap();
        samples.push(start.elapsed());
        assert_eq!(df.len(), rows, "non-deterministic result size");
    }
    samples.sort();
    Outcome {
        median: samples[samples.len() / 2],
        rows,
    }
}

fn parse_args() -> usize {
    let mut scale = 4000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale requires a number"));
            }
            other => {
                if let Ok(n) = other.parse() {
                    scale = n;
                } else {
                    panic!("unknown argument {other} (usage: frame_bench [--scale N] [N])");
                }
            }
        }
    }
    scale
}

fn wire(dataset: &Arc<Dataset>, format: WireFormat) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        Arc::clone(dataset),
        EndpointConfig {
            wire: format,
            ..Default::default()
        },
    )
}

fn main() {
    let scale = parse_args();
    eprintln!("building dataset at scale {scale}...");
    let dataset = data::build_dataset(scale);
    eprintln!(
        "dataset: {} triples across {} graphs",
        dataset.total_triples(),
        dataset.len()
    );

    let embedded = EmbeddedEndpoint::new(Arc::clone(&dataset));
    let wire_none = wire(&dataset, WireFormat::None);
    let wire_tsv = wire(&dataset, WireFormat::Tsv);
    let wire_xml = wire(&dataset, WireFormat::Xml);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"frame_bench\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"triples\": {},", dataset.total_triples());
    let _ = writeln!(json, "  \"runs\": {RUNS},");
    let _ = writeln!(
        json,
        "  \"paths\": [\"embedded\", \"wire_none\", \"wire_tsv\", \"wire_xml\"],"
    );
    let _ = writeln!(json, "  \"workloads\": [");

    println!(
        "\n{:<18} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "workload",
        "embed (ms)",
        "none (ms)",
        "tsv (ms)",
        "xml (ms)",
        "vs none",
        "vs tsv",
        "vs xml"
    );
    let specs = workloads(scale);
    let n = specs.len();
    for (i, w) in specs.iter().enumerate() {
        let out_embedded = run(&w.frame, &embedded);
        let out_none = run(&w.frame, &wire_none);
        let out_tsv = run(&w.frame, &wire_tsv);
        let out_xml = run(&w.frame, &wire_xml);
        for (name, out) in [
            ("wire_none", &out_none),
            ("wire_tsv", &out_tsv),
            ("wire_xml", &out_xml),
        ] {
            assert_eq!(
                out_embedded.rows, out.rows,
                "{}: {name} disagrees on result size",
                w.id
            );
        }
        let embed_s = out_embedded.median.as_secs_f64().max(1e-12);
        let vs_none = out_none.median.as_secs_f64() / embed_s;
        let vs_tsv = out_tsv.median.as_secs_f64() / embed_s;
        let vs_xml = out_xml.median.as_secs_f64() / embed_s;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x {:>7.2}x {:>7.2}x  ({} rows)",
            w.id,
            out_embedded.median.as_secs_f64() * 1e3,
            out_none.median.as_secs_f64() * 1e3,
            out_tsv.median.as_secs_f64() * 1e3,
            out_xml.median.as_secs_f64() * 1e3,
            vs_none,
            vs_tsv,
            vs_xml,
            out_embedded.rows
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": \"{}\",", w.id);
        let _ = writeln!(json, "      \"kind\": \"{}\",", w.kind);
        let _ = writeln!(json, "      \"rows\": {},", out_embedded.rows);
        let _ = writeln!(
            json,
            "      \"embedded_ms\": {:.3},",
            out_embedded.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_none_ms\": {:.3},",
            out_none.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_tsv_ms\": {:.3},",
            out_tsv.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(
            json,
            "      \"wire_xml_ms\": {:.3},",
            out_xml.median.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"speedup_vs_wire_none\": {vs_none:.3},");
        let _ = writeln!(json, "      \"speedup_vs_wire_tsv\": {vs_tsv:.3},");
        let _ = writeln!(json, "      \"speedup_vs_wire_xml\": {vs_xml:.3}");
        let _ = writeln!(json, "    }}{}", if i + 1 < n { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write("BENCH_frames.json", &json).expect("write BENCH_frames.json");
    eprintln!("\nwrote BENCH_frames.json");
}
