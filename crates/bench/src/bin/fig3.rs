//! Figure 3 — evaluating the design decisions of RDFFrames.
//!
//! For each case study, compares:
//! - **Naive Query Generation** (per-operator subqueries in the engine),
//! - **Navigation + dataframe** (client-side relational processing),
//! - **RDFFrames** (optimized single query in the engine).
//!
//! Usage: `fig3 [scale] [runs]` (defaults: scale 2000, 3 runs).

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data, harness};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let params = CaseParams::for_scale(scale);
    println!("Figure 3 reproduction — scale {scale}, {runs} runs, params {params:?}");

    let ds = data::build_dataset(scale);
    println!(
        "dataset: dbpedia {} triples, dblp {} triples, yago {} triples",
        ds.graph(data::uris::DBPEDIA).unwrap().len(),
        ds.graph(data::uris::DBLP).unwrap().len(),
        ds.graph(data::uris::YAGO).unwrap().len(),
    );
    let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));

    let studies = [
        (
            "(a) Movie Genre Classification on DBpedia",
            casestudies::movie_genre_classification(params.prolific),
        ),
        (
            "(b) Topic Modeling on DBLP",
            casestudies::topic_modeling(params.since_year, params.threshold, params.recent_year),
        ),
        ("(c) KG Embedding on DBLP", casestudies::kg_embedding()),
    ];

    for (title, frame) in studies {
        let measurements = vec![
            harness::measure("Naive Query Generation", runs, || {
                baselines::naive(&frame, &endpoint)
            }),
            harness::measure("Navigation + dataframe", runs, || {
                baselines::navigation_plus_df(&frame, &endpoint)
            }),
            harness::measure("RDFFrames", runs, || {
                baselines::rdfframes(&frame, &endpoint)
            }),
        ];
        harness::print_panel(title, &measurements);
    }
}
