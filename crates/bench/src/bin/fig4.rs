//! Figure 4 — comparing RDFFrames to alternative baselines.
//!
//! For each case study, compares:
//! - **rdflib + dataframe** (parse an N-Triples dump, no engine),
//! - **SPARQL + dataframe** (trivial dump query, client-side processing),
//! - **Expert SPARQL** (hand-written query),
//! - **RDFFrames**.
//!
//! Usage: `fig4 [scale] [runs]` (defaults: scale 2000, 3 runs).

use bench::casestudies::{self, CaseParams};
use bench::{baselines, data, harness};
use rdf_model::ntriples;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let runs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let params = CaseParams::for_scale(scale);
    println!("Figure 4 reproduction — scale {scale}, {runs} runs, params {params:?}");

    let ds = data::build_dataset(scale);
    let endpoint = data::build_endpoint(std::sync::Arc::clone(&ds));

    // Serialize the graphs once (the paper's baselines read a pre-dumped
    // .nt file; producing it is setup, parsing it is measured).
    let dbpedia_nt =
        ntriples::write_document(ds.graph(data::uris::DBPEDIA).unwrap().iter_triples());
    let dblp_nt = ntriples::write_document(ds.graph(data::uris::DBLP).unwrap().iter_triples());

    let studies = [
        (
            "(a) Movie Genre Classification on DBpedia",
            casestudies::movie_genre_classification(params.prolific),
            casestudies::movie_genre_expert(params.prolific),
            &dbpedia_nt,
        ),
        (
            "(b) Topic Modeling on DBLP",
            casestudies::topic_modeling(params.since_year, params.threshold, params.recent_year),
            casestudies::topic_modeling_expert(
                params.since_year,
                params.threshold,
                params.recent_year,
            ),
            &dblp_nt,
        ),
        (
            "(c) KG Embedding on DBLP",
            casestudies::kg_embedding(),
            casestudies::kg_embedding_expert(),
            &dblp_nt,
        ),
    ];

    for (title, frame, expert, nt) in studies {
        let measurements = vec![
            harness::measure("rdflib + dataframe", runs, || {
                baselines::rdflib_plus_df(&frame, nt)
            }),
            harness::measure("SPARQL + dataframe", runs, || {
                baselines::sparql_plus_df(&frame, &endpoint)
            }),
            harness::measure("Expert SPARQL", runs, || {
                baselines::expert_sparql(&expert, &endpoint)
            }),
            harness::measure("RDFFrames", runs, || {
                baselines::rdfframes(&frame, &endpoint)
            }),
        ];
        harness::print_panel(title, &measurements);
    }
}
