//! Dataset construction for the experiments.

use std::sync::Arc;

use kg_datagen::{
    generate_dblp, generate_dbpedia, generate_yago, DblpConfig, DbpediaConfig, YagoConfig,
};
use rdf_model::Dataset;
use rdfframes_core::{EndpointConfig, InProcessEndpoint, KnowledgeGraph};

/// Graph URIs used throughout the experiments.
pub mod uris {
    /// DBpedia-like graph.
    pub const DBPEDIA: &str = "http://dbpedia.org";
    /// DBLP-like graph.
    pub const DBLP: &str = "http://dblp.l3s.de";
    /// YAGO-like graph.
    pub const YAGO: &str = "http://yago-knowledge.org";
}

/// Build the full experiment dataset (all three graphs) at a given DBpedia
/// scale (DBLP papers = 2× scale to mirror the paper's relative sizes).
pub fn build_dataset(scale: usize) -> Arc<Dataset> {
    let mut ds = Dataset::new();
    ds.insert_graph(
        uris::DBPEDIA,
        generate_dbpedia(&DbpediaConfig::with_scale(scale)),
    );
    ds.insert_graph(
        uris::DBLP,
        generate_dblp(&DblpConfig::with_papers(scale * 2)),
    );
    ds.insert_graph(
        uris::YAGO,
        generate_yago(&YagoConfig::for_dbpedia_scale(scale)),
    );
    Arc::new(ds)
}

/// Endpoint over the dataset with the experiment's default page size.
pub fn build_endpoint(dataset: Arc<Dataset>) -> InProcessEndpoint {
    InProcessEndpoint::with_config(
        dataset,
        EndpointConfig {
            max_rows_per_request: 100_000,
            ..Default::default()
        },
    )
}

/// The DBpedia knowledge-graph handle with the paper's prefixes.
pub fn dbpedia_graph() -> KnowledgeGraph {
    KnowledgeGraph::new(uris::DBPEDIA)
        .with_prefix("dbpp", "http://dbpedia.org/property/")
        .with_prefix("dbpo", "http://dbpedia.org/ontology/")
        .with_prefix("dbpr", "http://dbpedia.org/resource/")
        .with_prefix("dcterms", "http://purl.org/dc/terms/")
}

/// The DBLP knowledge-graph handle with the paper's prefixes.
pub fn dblp_graph() -> KnowledgeGraph {
    KnowledgeGraph::new(uris::DBLP)
        .with_prefix("swrc", "http://swrc.ontoware.org/ontology#")
        .with_prefix("dc", "http://purl.org/dc/elements/1.1/")
        .with_prefix("dcterm", "http://purl.org/dc/terms/")
        .with_prefix("dblprc", "http://dblp.l3s.de/d2r/resource/conferences/")
}

/// The YAGO knowledge-graph handle.
pub fn yago_graph() -> KnowledgeGraph {
    KnowledgeGraph::new(uris::YAGO).with_prefix("yago", "http://yago-knowledge.org/resource/")
}

/// SPARQL prefix block shared by the expert queries.
pub fn expert_prefixes() -> &'static str {
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
     PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n\
     PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
     PREFIX dbpp: <http://dbpedia.org/property/>\n\
     PREFIX dbpo: <http://dbpedia.org/ontology/>\n\
     PREFIX dbpr: <http://dbpedia.org/resource/>\n\
     PREFIX dcterms: <http://purl.org/dc/terms/>\n\
     PREFIX swrc: <http://swrc.ontoware.org/ontology#>\n\
     PREFIX dc: <http://purl.org/dc/elements/1.1/>\n\
     PREFIX dcterm: <http://purl.org/dc/terms/>\n\
     PREFIX dblprc: <http://dblp.l3s.de/d2r/resource/conferences/>\n\
     PREFIX yago: <http://yago-knowledge.org/resource/>\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_three_graphs() {
        let ds = build_dataset(200);
        assert_eq!(ds.len(), 3);
        assert!(ds.graph(uris::DBPEDIA).unwrap().len() > 1000);
        assert!(ds.graph(uris::DBLP).unwrap().len() > 1000);
        assert!(ds.graph(uris::YAGO).unwrap().len() > 100);
    }
}
