//! Timing and reporting utilities for the experiment binaries.

use std::time::{Duration, Instant};

use dataframe::DataFrame;
use rdfframes_core::Result;

/// Outcome of running one alternative on one task.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Alternative name (e.g. "RDFFrames", "Naive Query Generation").
    pub name: String,
    /// Mean wall-clock time over the runs.
    pub mean: Duration,
    /// Rows in the result (sanity check that alternatives agree).
    pub rows: Option<usize>,
    /// Whether the alternative failed/was skipped.
    pub error: Option<String>,
}

impl Measurement {
    /// Seconds as f64 (for ratio computation).
    pub fn secs(&self) -> f64 {
        self.mean.as_secs_f64()
    }
}

/// Run `f` `runs` times (after one warmup) and average, like the paper's
/// "average running time of three runs".
pub fn measure<F>(name: &str, runs: usize, mut f: F) -> Measurement
where
    F: FnMut() -> Result<DataFrame>,
{
    // Warmup run (also catches errors early).
    let warm = f();
    if let Err(e) = warm {
        return Measurement {
            name: name.to_string(),
            mean: Duration::ZERO,
            rows: None,
            error: Some(e.to_string()),
        };
    }
    let rows = warm.ok().map(|df| df.len());
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        let r = f();
        total += start.elapsed();
        if let Err(e) = r {
            return Measurement {
                name: name.to_string(),
                mean: Duration::ZERO,
                rows,
                error: Some(e.to_string()),
            };
        }
    }
    Measurement {
        name: name.to_string(),
        mean: total / runs as u32,
        rows,
        error: None,
    }
}

/// Print one figure panel as an aligned table.
pub fn print_panel(title: &str, measurements: &[Measurement]) {
    println!("\n=== {title} ===");
    println!("{:<28} {:>12} {:>10}", "alternative", "time (ms)", "rows");
    for m in measurements {
        match &m.error {
            Some(e) => println!("{:<28} {:>12} {:>10}   ERROR: {e}", m.name, "-", "-"),
            None => println!(
                "{:<28} {:>12.2} {:>10}",
                m.name,
                m.mean.as_secs_f64() * 1e3,
                m.rows.map_or_else(|| "-".into(), |r| r.to_string())
            ),
        }
    }
}

/// Print a ratio table (Figure 5 style: ratio of each alternative to the
/// expert query).
pub fn print_ratios(title: &str, rows: &[(String, f64, Option<f64>, Option<f64>)]) {
    println!("\n=== {title} ===");
    println!(
        "{:<6} {:>14} {:>18} {:>14}",
        "query", "expert (ms)", "naive/expert", "rdfframes/expert"
    );
    for (name, expert_ms, naive_ratio, ours_ratio) in rows {
        let fmt = |r: &Option<f64>| match r {
            Some(v) => format!("{v:.2}"),
            None => "timeout".to_string(),
        };
        println!(
            "{:<6} {:>14.2} {:>18} {:>14}",
            name,
            expert_ms,
            fmt(naive_ratio),
            fmt(ours_ratio)
        );
    }
}
