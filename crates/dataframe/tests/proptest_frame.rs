//! Property-based tests for the dataframe crate's relational algebra.

use dataframe::{AggFn, Cell, DataFrame, JoinType};
use proptest::prelude::*;

fn cell_strategy() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        (0i64..6).prop_map(Cell::Int),
        (0u8..4).prop_map(|k| Cell::str(format!("s{k}"))),
        (0u8..4).prop_map(|k| Cell::uri(format!("http://x/{k}"))),
    ]
}

fn frame_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = DataFrame> {
    proptest::collection::vec(
        proptest::collection::vec(cell_strategy(), cols),
        0..max_rows,
    )
    .prop_map(move |rows| {
        let names = (0..cols).map(|i| format!("c{i}")).collect();
        let mut df = DataFrame::new(names);
        for r in rows {
            df.push_row(r);
        }
        df
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn distinct_is_idempotent(df in frame_strategy(3, 20)) {
        let once = df.distinct();
        let twice = once.distinct();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn filter_never_adds_rows(df in frame_strategy(2, 20), threshold in 0i64..6) {
        let filtered = df.filter_col("c0", |c| c.as_i64().is_some_and(|v| v >= threshold));
        prop_assert!(filtered.len() <= df.len());
        // Filtered rows all satisfy the predicate.
        for row in filtered.rows() {
            prop_assert!(row[0].as_i64().is_some_and(|v| v >= threshold));
        }
    }

    #[test]
    fn sort_is_permutation_and_ordered(df in frame_strategy(2, 20)) {
        let sorted = df.sort_by(&[("c0", true), ("c1", true)]);
        prop_assert_eq!(sorted.len(), df.len());
        for pair in sorted.rows().windows(2) {
            let ord = pair[0][0]
                .total_cmp(&pair[1][0])
                .then(pair[0][1].total_cmp(&pair[1][1]));
            prop_assert!(ord != std::cmp::Ordering::Greater);
        }
        // Same multiset of rows.
        let key = |d: &DataFrame| {
            let mut v: Vec<String> = d
                .rows()
                .iter()
                .map(|r| format!("{}|{}", r[0], r[1]))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&df), key(&sorted));
    }

    #[test]
    fn inner_join_row_count_matches_key_products(
        left in frame_strategy(2, 15),
        right in frame_strategy(2, 15),
    ) {
        let mut l = left.clone();
        l.rename("c0", "k");
        let mut r = right.clone();
        r.rename("c0", "k");
        r.rename("c1", "v");
        let joined = l.join(&r, "k", "k", JoinType::Inner);
        // Expected count: sum over keys of left_count * right_count.
        let mut expected = 0usize;
        for lr in l.rows() {
            if lr[0].is_null() {
                continue;
            }
            expected += r.rows().iter().filter(|rr| rr[0] == lr[0]).count();
        }
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn outer_join_covers_both_sides(
        left in frame_strategy(2, 12),
        right in frame_strategy(2, 12),
    ) {
        let mut l = left.clone();
        l.rename("c0", "k");
        l.rename("c1", "lv");
        let mut r = right.clone();
        r.rename("c0", "k");
        r.rename("c1", "rv");
        let outer = l.join(&r, "k", "k", JoinType::Outer);
        let inner = l.join(&r, "k", "k", JoinType::Inner);
        let left_join = l.join(&r, "k", "k", JoinType::Left);
        let right_join = l.join(&r, "k", "k", JoinType::Right);
        // |outer| = |left| + |right| - |inner| (classic inclusion).
        prop_assert_eq!(
            outer.len() + inner.len(),
            left_join.len() + right_join.len()
        );
        prop_assert!(outer.len() >= left_join.len());
        prop_assert!(outer.len() >= right_join.len());
    }

    #[test]
    fn groupby_counts_partition_rows(df in frame_strategy(2, 25)) {
        let grouped = df.group_by(&["c0"]).agg(&[(AggFn::Count, "c1", "n")]);
        // Sum of per-group counts equals the number of non-null c1 cells.
        let total: i64 = grouped
            .column("n")
            .unwrap()
            .map(|c| c.as_i64().unwrap_or(0))
            .sum();
        let non_null = df.rows().iter().filter(|r| !r[1].is_null()).count() as i64;
        prop_assert_eq!(total, non_null);
        // One group per distinct c0 value.
        let distinct_keys = df.select(&["c0"]).distinct().len();
        prop_assert_eq!(grouped.len(), distinct_keys);
    }

    #[test]
    fn head_is_prefix(df in frame_strategy(2, 25), k in 0usize..30, off in 0usize..30) {
        let h = df.head(k, off);
        prop_assert!(h.len() <= k);
        for (i, row) in h.rows().iter().enumerate() {
            prop_assert_eq!(row, &df.rows()[off + i]);
        }
    }

    #[test]
    fn csv_roundtrip(df in frame_strategy(3, 15)) {
        let text = dataframe::csv::to_csv(&df);
        let back = dataframe::csv::from_csv(&text).expect("parses");
        prop_assert_eq!(df, back);
    }

    #[test]
    fn concat_length_adds(a in frame_strategy(2, 15), b in frame_strategy(2, 15)) {
        prop_assert_eq!(a.concat(&b).len(), a.len() + b.len());
    }
}
