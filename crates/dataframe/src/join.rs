//! Hash joins between dataframes.

use std::collections::HashMap;

use crate::cell::Cell;
use crate::frame::DataFrame;

/// Join types matching the RDFFrames API (`Z`, `⟕`, `⟖`, `⟗`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Outer,
}

/// Hash join `left` and `right` on one key column from each side.
///
/// The output key column takes the *left* column's name; other columns keep
/// their names, with a `_right` suffix appended on collision (pandas-style
/// disambiguation). Null keys never match (SQL semantics).
///
/// The hash index is built on the *smaller* input and probed with the
/// larger, so index construction cost tracks `min(|L|, |R|)`. Output row
/// order follows the probe side; the joined bag is identical either way.
pub fn join_frames(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    how: JoinType,
) -> DataFrame {
    let li = left
        .column_index(left_on)
        .unwrap_or_else(|| panic!("unknown left join column {left_on}"));
    let ri = right
        .column_index(right_on)
        .unwrap_or_else(|| panic!("unknown right join column {right_on}"));

    // Output schema: all left columns, then right columns except the key.
    let mut columns: Vec<String> = left.columns().to_vec();
    let mut right_cols: Vec<(usize, String)> = Vec::new();
    for (i, c) in right.columns().iter().enumerate() {
        if i == ri {
            continue;
        }
        let name = if columns.contains(c) {
            format!("{c}_right")
        } else {
            c.clone()
        };
        columns.push(name.clone());
        right_cols.push((i, name));
    }
    let width = columns.len();
    let left_width = left.columns().len();
    let mut out = DataFrame::new(columns);

    let emit = |l_row: Option<&Vec<Cell>>, r_row: Option<&Vec<Cell>>, key: Option<&Cell>| {
        let mut row = Vec::with_capacity(width);
        match l_row {
            Some(l) => row.extend(l.iter().cloned()),
            None => {
                // Right-only row: key column takes the right key value.
                for c in 0..left_width {
                    if c == li {
                        row.push(key.cloned().unwrap_or(Cell::Null));
                    } else {
                        row.push(Cell::Null);
                    }
                }
            }
        }
        for (src, _) in &right_cols {
            match r_row {
                Some(r) => row.push(r[*src].clone()),
                None => row.push(Cell::Null),
            }
        }
        row
    };

    // Build on the smaller side, probe with the larger (ties keep the
    // classic build-right orientation). Null keys are never indexed. One
    // swap-aware loop serves both orientations: `emit` and the outer-join
    // rules stay phrased in left/right terms, only build/probe flip.
    let build_right = right.rows().len() <= left.rows().len();
    let (build, build_key, probe, probe_key) = if build_right {
        (right, ri, left, li)
    } else {
        (left, li, right, ri)
    };
    // A probe row with no match survives when its own side is preserved.
    let keep_unmatched_probe = if build_right {
        matches!(how, JoinType::Left | JoinType::Outer)
    } else {
        matches!(how, JoinType::Right | JoinType::Outer)
    };
    let keep_unmatched_build = if build_right {
        matches!(how, JoinType::Right | JoinType::Outer)
    } else {
        matches!(how, JoinType::Left | JoinType::Outer)
    };
    // Orient a (probe, build) pair back to (left, right) for `emit`.
    fn orient<'a>(
        build_right: bool,
        p_row: Option<&'a Vec<Cell>>,
        b_row: Option<&'a Vec<Cell>>,
    ) -> (Option<&'a Vec<Cell>>, Option<&'a Vec<Cell>>) {
        if build_right {
            (p_row, b_row)
        } else {
            (b_row, p_row)
        }
    }
    let as_lr = |p_row, b_row| orient(build_right, p_row, b_row);

    let mut index: HashMap<&Cell, Vec<usize>> = HashMap::with_capacity(build.rows().len());
    for (i, row) in build.rows().iter().enumerate() {
        if !row[build_key].is_null() {
            index.entry(&row[build_key]).or_default().push(i);
        }
    }
    // A 1:1 join emits one row per probe row; reserving that lower bound
    // avoids most output-vector regrowth (duplicates regrow as needed).
    out.reserve(probe.rows().len());
    let mut build_matched = vec![false; build.rows().len()];
    for p_row in probe.rows() {
        let key = &p_row[probe_key];
        let matches = if key.is_null() { None } else { index.get(key) };
        match matches {
            Some(indices) => {
                for &i in indices {
                    build_matched[i] = true;
                    let (l, r) = as_lr(Some(p_row), Some(&build.rows()[i]));
                    out.push_row(emit(l, r, Some(key)));
                }
            }
            None => {
                if keep_unmatched_probe {
                    let (l, r) = as_lr(Some(p_row), None);
                    out.push_row(emit(l, r, Some(key)));
                }
            }
        }
    }
    if keep_unmatched_build {
        for (i, b_row) in build.rows().iter().enumerate() {
            if !build_matched[i] {
                let (l, r) = as_lr(None, Some(b_row));
                out.push_row(emit(l, r, Some(&b_row[build_key])));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "country".into()]);
        df.push_row(vec![Cell::uri("a1"), Cell::str("US")]);
        df.push_row(vec![Cell::uri("a2"), Cell::str("UK")]);
        df.push_row(vec![Cell::uri("a3"), Cell::str("US")]);
        df
    }

    fn right() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "count".into()]);
        df.push_row(vec![Cell::uri("a1"), Cell::Int(30)]);
        df.push_row(vec![Cell::uri("a4"), Cell::Int(7)]);
        df
    }

    #[test]
    fn inner() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Inner);
        assert_eq!(j.columns(), &["actor", "country", "count"]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(0, "count"), Some(&Cell::Int(30)));
    }

    #[test]
    fn left_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Left);
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(1, "count"), Some(&Cell::Null));
    }

    #[test]
    fn right_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Right);
        assert_eq!(j.len(), 2);
        // a4 row: left columns null except key.
        let a4 = j
            .rows()
            .iter()
            .find(|r| r[0] == Cell::uri("a4"))
            .expect("a4 present");
        assert_eq!(a4[1], Cell::Null);
        assert_eq!(a4[2], Cell::Int(7));
    }

    #[test]
    fn full_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Outer);
        assert_eq!(j.len(), 4); // a1 matched, a2/a3 left-only, a4 right-only
    }

    #[test]
    fn duplicate_keys_multiply() {
        let mut l = DataFrame::new(vec!["k".into()]);
        l.push_row(vec![Cell::Int(1)]);
        l.push_row(vec![Cell::Int(1)]);
        let mut r = DataFrame::new(vec!["k".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("x")]);
        r.push_row(vec![Cell::Int(1), Cell::str("y")]);
        let j = join_frames(&l, &r, "k", "k", JoinType::Inner);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn null_keys_do_not_match() {
        let mut l = DataFrame::new(vec!["k".into()]);
        l.push_row(vec![Cell::Null]);
        let mut r = DataFrame::new(vec!["k".into()]);
        r.push_row(vec![Cell::Null]);
        assert_eq!(join_frames(&l, &r, "k", "k", JoinType::Inner).len(), 0);
        assert_eq!(join_frames(&l, &r, "k", "k", JoinType::Outer).len(), 2);
    }

    #[test]
    fn name_collision_gets_suffix() {
        let mut l = DataFrame::new(vec!["k".into(), "v".into()]);
        l.push_row(vec![Cell::Int(1), Cell::str("l")]);
        let mut r = DataFrame::new(vec!["k".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("r")]);
        let j = join_frames(&l, &r, "k", "k", JoinType::Inner);
        assert_eq!(j.columns(), &["k", "v", "v_right"]);
    }

    #[test]
    fn smaller_left_side_becomes_build_side() {
        // left (1 row) < right (3 rows): the index is built on the left and
        // probed with the right; results must match the classic orientation.
        let mut l = DataFrame::new(vec!["k".into(), "lv".into()]);
        l.push_row(vec![Cell::Int(1), Cell::str("a")]);
        let mut r = DataFrame::new(vec!["k".into(), "rv".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("x")]);
        r.push_row(vec![Cell::Int(1), Cell::str("y")]);
        r.push_row(vec![Cell::Int(2), Cell::str("z")]);

        let inner = join_frames(&l, &r, "k", "k", JoinType::Inner);
        assert_eq!(inner.len(), 2);
        assert_eq!(inner.columns(), &["k", "lv", "rv"]);

        let left_join = join_frames(&l, &r, "k", "k", JoinType::Left);
        assert_eq!(left_join.len(), 2); // every left row matched

        let right_join = join_frames(&l, &r, "k", "k", JoinType::Right);
        assert_eq!(right_join.len(), 3); // k=2 survives with null left cols
        let unmatched = right_join
            .rows()
            .iter()
            .find(|row| row[0] == Cell::Int(2))
            .expect("k=2 present");
        assert_eq!(unmatched[1], Cell::Null);
        assert_eq!(unmatched[2], Cell::str("z"));

        let outer = join_frames(&l, &r, "k", "k", JoinType::Outer);
        assert_eq!(outer.len(), 3);
    }

    #[test]
    fn different_key_names() {
        let mut l = DataFrame::new(vec!["a".into()]);
        l.push_row(vec![Cell::Int(1)]);
        let mut r = DataFrame::new(vec!["b".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("x")]);
        let j = join_frames(&l, &r, "a", "b", JoinType::Inner);
        assert_eq!(j.columns(), &["a", "v"]);
        assert_eq!(j.len(), 1);
    }
}
