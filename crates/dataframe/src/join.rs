//! Hash joins between dataframes.

use std::collections::HashMap;

use crate::cell::Cell;
use crate::frame::DataFrame;

/// Join types matching the RDFFrames API (`Z`, `⟕`, `⟖`, `⟗`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join.
    Outer,
}

/// Hash join `left` and `right` on one key column from each side.
///
/// The output key column takes the *left* column's name; other columns keep
/// their names, with a `_right` suffix appended on collision (pandas-style
/// disambiguation). Null keys never match (SQL semantics).
pub fn join_frames(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &str,
    right_on: &str,
    how: JoinType,
) -> DataFrame {
    let li = left
        .column_index(left_on)
        .unwrap_or_else(|| panic!("unknown left join column {left_on}"));
    let ri = right
        .column_index(right_on)
        .unwrap_or_else(|| panic!("unknown right join column {right_on}"));

    // Output schema: all left columns, then right columns except the key.
    let mut columns: Vec<String> = left.columns().to_vec();
    let mut right_cols: Vec<(usize, String)> = Vec::new();
    for (i, c) in right.columns().iter().enumerate() {
        if i == ri {
            continue;
        }
        let name = if columns.contains(c) {
            format!("{c}_right")
        } else {
            c.clone()
        };
        columns.push(name.clone());
        right_cols.push((i, name));
    }
    let width = columns.len();
    let left_width = left.columns().len();
    let mut out = DataFrame::new(columns);

    // Index the right side.
    let mut index: HashMap<&Cell, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        if !row[ri].is_null() {
            index.entry(&row[ri]).or_default().push(i);
        }
    }

    let mut right_matched = vec![false; right.rows().len()];
    let emit = |l_row: Option<&Vec<Cell>>, r_row: Option<&Vec<Cell>>, key: Option<&Cell>| {
        let mut row = Vec::with_capacity(width);
        match l_row {
            Some(l) => row.extend(l.iter().cloned()),
            None => {
                // Right-only row: key column takes the right key value.
                for c in 0..left_width {
                    if c == li {
                        row.push(key.cloned().unwrap_or(Cell::Null));
                    } else {
                        row.push(Cell::Null);
                    }
                }
            }
        }
        for (src, _) in &right_cols {
            match r_row {
                Some(r) => row.push(r[*src].clone()),
                None => row.push(Cell::Null),
            }
        }
        row
    };

    for l_row in left.rows() {
        let key = &l_row[li];
        let matches = if key.is_null() {
            None
        } else {
            index.get(key)
        };
        match matches {
            Some(indices) => {
                for &i in indices {
                    right_matched[i] = true;
                    out.push_row(emit(Some(l_row), Some(&right.rows()[i]), Some(key)));
                }
            }
            None => {
                if matches!(how, JoinType::Left | JoinType::Outer) {
                    out.push_row(emit(Some(l_row), None, Some(key)));
                }
            }
        }
    }
    if matches!(how, JoinType::Right | JoinType::Outer) {
        for (i, r_row) in right.rows().iter().enumerate() {
            if !right_matched[i] {
                out.push_row(emit(None, Some(r_row), Some(&r_row[ri])));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "country".into()]);
        df.push_row(vec![Cell::uri("a1"), Cell::str("US")]);
        df.push_row(vec![Cell::uri("a2"), Cell::str("UK")]);
        df.push_row(vec![Cell::uri("a3"), Cell::str("US")]);
        df
    }

    fn right() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "count".into()]);
        df.push_row(vec![Cell::uri("a1"), Cell::Int(30)]);
        df.push_row(vec![Cell::uri("a4"), Cell::Int(7)]);
        df
    }

    #[test]
    fn inner() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Inner);
        assert_eq!(j.columns(), &["actor", "country", "count"]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.get(0, "count"), Some(&Cell::Int(30)));
    }

    #[test]
    fn left_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Left);
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(1, "count"), Some(&Cell::Null));
    }

    #[test]
    fn right_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Right);
        assert_eq!(j.len(), 2);
        // a4 row: left columns null except key.
        let a4 = j
            .rows()
            .iter()
            .find(|r| r[0] == Cell::uri("a4"))
            .expect("a4 present");
        assert_eq!(a4[1], Cell::Null);
        assert_eq!(a4[2], Cell::Int(7));
    }

    #[test]
    fn full_outer() {
        let j = join_frames(&left(), &right(), "actor", "actor", JoinType::Outer);
        assert_eq!(j.len(), 4); // a1 matched, a2/a3 left-only, a4 right-only
    }

    #[test]
    fn duplicate_keys_multiply() {
        let mut l = DataFrame::new(vec!["k".into()]);
        l.push_row(vec![Cell::Int(1)]);
        l.push_row(vec![Cell::Int(1)]);
        let mut r = DataFrame::new(vec!["k".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("x")]);
        r.push_row(vec![Cell::Int(1), Cell::str("y")]);
        let j = join_frames(&l, &r, "k", "k", JoinType::Inner);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn null_keys_do_not_match() {
        let mut l = DataFrame::new(vec!["k".into()]);
        l.push_row(vec![Cell::Null]);
        let mut r = DataFrame::new(vec!["k".into()]);
        r.push_row(vec![Cell::Null]);
        assert_eq!(join_frames(&l, &r, "k", "k", JoinType::Inner).len(), 0);
        assert_eq!(join_frames(&l, &r, "k", "k", JoinType::Outer).len(), 2);
    }

    #[test]
    fn name_collision_gets_suffix() {
        let mut l = DataFrame::new(vec!["k".into(), "v".into()]);
        l.push_row(vec![Cell::Int(1), Cell::str("l")]);
        let mut r = DataFrame::new(vec!["k".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("r")]);
        let j = join_frames(&l, &r, "k", "k", JoinType::Inner);
        assert_eq!(j.columns(), &["k", "v", "v_right"]);
    }

    #[test]
    fn different_key_names() {
        let mut l = DataFrame::new(vec!["a".into()]);
        l.push_row(vec![Cell::Int(1)]);
        let mut r = DataFrame::new(vec!["b".into(), "v".into()]);
        r.push_row(vec![Cell::Int(1), Cell::str("x")]);
        let j = join_frames(&l, &r, "a", "b", JoinType::Inner);
        assert_eq!(j.columns(), &["a", "v"]);
        assert_eq!(j.len(), 1);
    }
}
