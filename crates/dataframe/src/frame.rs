//! The [`DataFrame`] type and its row-level operations.

use crate::cell::Cell;
use crate::groupby::GroupBy;
use crate::join::{join_frames, JoinType};

/// A named-column table of [`Cell`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataFrame {
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

/// A borrowed view of one row with by-name access.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    columns: &'a [String],
    cells: &'a [Cell],
}

impl<'a> RowView<'a> {
    /// Cell by column name.
    pub fn get(&self, name: &str) -> Option<&'a Cell> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(&self.cells[idx])
    }

    /// The raw cells.
    pub fn cells(&self) -> &'a [Cell] {
        self.cells
    }
}

impl DataFrame {
    /// Empty frame with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        DataFrame {
            columns,
            rows: Vec::new(),
        }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows (read-only).
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Reserve capacity for at least `additional` more rows (used by joins
    /// that can bound their output size up front).
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width doesn't match the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// A cell by row/column name.
    pub fn get(&self, row: usize, column: &str) -> Option<&Cell> {
        let c = self.column_index(column)?;
        self.rows.get(row).map(|r| &r[c])
    }

    /// Iterate one column's cells.
    pub fn column(&self, name: &str) -> Option<impl Iterator<Item = &Cell>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(move |r| &r[idx]))
    }

    /// Keep rows satisfying `predicate`.
    pub fn filter<F>(&self, mut predicate: F) -> DataFrame
    where
        F: FnMut(RowView<'_>) -> bool,
    {
        let mut out = DataFrame::new(self.columns.clone());
        for row in &self.rows {
            let view = RowView {
                columns: &self.columns,
                cells: row,
            };
            if predicate(view) {
                out.rows.push(row.clone());
            }
        }
        out
    }

    /// Keep rows where `column`'s cell satisfies `predicate`.
    pub fn filter_col<F>(&self, column: &str, mut predicate: F) -> DataFrame
    where
        F: FnMut(&Cell) -> bool,
    {
        let idx = match self.column_index(column) {
            Some(i) => i,
            None => return DataFrame::new(self.columns.clone()),
        };
        let mut out = DataFrame::new(self.columns.clone());
        out.rows = self
            .rows
            .iter()
            .filter(|r| predicate(&r[idx]))
            .cloned()
            .collect();
        out
    }

    /// Projection: keep only `keep` (in that order). Unknown names produce a
    /// column of nulls, mirroring pandas' permissive reindexing.
    pub fn select(&self, keep: &[&str]) -> DataFrame {
        let indices: Vec<Option<usize>> = keep.iter().map(|c| self.column_index(c)).collect();
        let mut out = DataFrame::new(keep.iter().map(|s| s.to_string()).collect());
        out.rows = self
            .rows
            .iter()
            .map(|row| {
                indices
                    .iter()
                    .map(|i| i.map_or(Cell::Null, |i| row[i].clone()))
                    .collect()
            })
            .collect();
        out
    }

    /// Rename a column in place. No-op if absent.
    pub fn rename(&mut self, from: &str, to: &str) {
        if let Some(i) = self.column_index(from) {
            self.columns[i] = to.to_string();
        }
    }

    /// Add a column computed from each row.
    pub fn with_column<F>(&self, name: &str, mut f: F) -> DataFrame
    where
        F: FnMut(RowView<'_>) -> Cell,
    {
        let mut columns = self.columns.clone();
        columns.push(name.to_string());
        let mut out = DataFrame::new(columns);
        for row in &self.rows {
            let view = RowView {
                columns: &self.columns,
                cells: row,
            };
            let v = f(view);
            let mut new_row = row.clone();
            new_row.push(v);
            out.rows.push(new_row);
        }
        out
    }

    /// Hash join with another frame on one column from each side.
    pub fn join(
        &self,
        other: &DataFrame,
        left_on: &str,
        right_on: &str,
        how: JoinType,
    ) -> DataFrame {
        join_frames(self, other, left_on, right_on, how)
    }

    /// Begin a group-by on the given key columns.
    pub fn group_by(&self, keys: &[&str]) -> GroupBy<'_> {
        GroupBy::new(self, keys)
    }

    /// Sort by columns (`(name, ascending)`), stable, nulls first.
    pub fn sort_by(&self, keys: &[(&str, bool)]) -> DataFrame {
        let indices: Vec<(usize, bool)> = keys
            .iter()
            .filter_map(|(name, asc)| self.column_index(name).map(|i| (i, *asc)))
            .collect();
        let mut out = self.clone();
        out.rows.sort_by(|a, b| {
            for &(idx, asc) in &indices {
                let ord = a[idx].total_cmp(&b[idx]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out
    }

    /// First `k` rows starting at `offset`.
    pub fn head(&self, k: usize, offset: usize) -> DataFrame {
        let mut out = DataFrame::new(self.columns.clone());
        out.rows = self.rows.iter().skip(offset).take(k).cloned().collect();
        out
    }

    /// Drop duplicate rows (keep first occurrence).
    pub fn distinct(&self) -> DataFrame {
        let mut seen = std::collections::HashSet::with_capacity(self.rows.len());
        let mut out = DataFrame::new(self.columns.clone());
        out.rows = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        out
    }

    /// Drop rows containing a null in the given column.
    pub fn drop_nulls(&self, column: &str) -> DataFrame {
        self.filter_col(column, |c| !c.is_null())
    }

    /// Vertically concatenate, aligning columns by name (missing → null).
    pub fn concat(&self, other: &DataFrame) -> DataFrame {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            if !columns.contains(c) {
                columns.push(c.clone());
            }
        }
        let width = columns.len();
        let map_self: Vec<usize> = self
            .columns
            .iter()
            .map(|c| columns.iter().position(|x| x == c).expect("present"))
            .collect();
        let map_other: Vec<usize> = other
            .columns
            .iter()
            .map(|c| columns.iter().position(|x| x == c).expect("present"))
            .collect();
        let mut out = DataFrame::new(columns);
        for row in &self.rows {
            let mut new_row = vec![Cell::Null; width];
            for (i, c) in row.iter().enumerate() {
                new_row[map_self[i]] = c.clone();
            }
            out.rows.push(new_row);
        }
        for row in &other.rows {
            let mut new_row = vec![Cell::Null; width];
            for (i, c) in row.iter().enumerate() {
                new_row[map_other[i]] = c.clone();
            }
            out.rows.push(new_row);
        }
        out
    }

    /// Move rows in (builder-style bulk load).
    pub fn extend_rows(&mut self, rows: impl IntoIterator<Item = Vec<Cell>>) {
        for r in rows {
            self.push_row(r);
        }
    }

    /// Build a frame from whole columns of cells (the embedded execution
    /// path decodes query results column-at-a-time; this transposes once,
    /// moving every cell, instead of growing rows cell by cell).
    ///
    /// # Panics
    /// Panics if the column count doesn't match `columns` or the columns
    /// have unequal lengths.
    pub fn from_cell_columns(columns: Vec<String>, cols: Vec<Vec<Cell>>) -> DataFrame {
        assert_eq!(
            columns.len(),
            cols.len(),
            "{} names for {} columns",
            columns.len(),
            cols.len()
        );
        let rows_len = cols.first().map_or(0, Vec::len);
        assert!(
            cols.iter().all(|c| c.len() == rows_len),
            "columns of unequal length"
        );
        let mut iters: Vec<_> = cols.into_iter().map(Vec::into_iter).collect();
        let mut out = DataFrame::new(columns);
        out.rows.reserve(rows_len);
        for _ in 0..rows_len {
            out.rows.push(
                iters
                    .iter_mut()
                    .map(|it| it.next().expect("equal lengths checked"))
                    .collect(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "movies".into(), "country".into()]);
        df.push_row(vec![Cell::uri("a1"), Cell::Int(30), Cell::str("US")]);
        df.push_row(vec![Cell::uri("a2"), Cell::Int(5), Cell::str("US")]);
        df.push_row(vec![Cell::uri("a3"), Cell::Int(12), Cell::str("UK")]);
        df
    }

    #[test]
    fn filter_col() {
        let df = sample();
        let us = df.filter_col("country", |c| c.as_str() == Some("US"));
        assert_eq!(us.len(), 2);
        let prolific = df.filter_col("movies", |c| c.as_f64().unwrap_or(0.0) >= 10.0);
        assert_eq!(prolific.len(), 2);
    }

    #[test]
    fn filter_multi_column() {
        let df = sample();
        let r = df.filter(|row| {
            row.get("country").and_then(|c| c.as_str()) == Some("US")
                && row.get("movies").and_then(|c| c.as_f64()).unwrap_or(0.0) > 10.0
        });
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(0, "actor"), Some(&Cell::uri("a1")));
    }

    #[test]
    fn select_and_rename() {
        let df = sample();
        let mut s = df.select(&["movies", "actor"]);
        assert_eq!(s.columns(), &["movies", "actor"]);
        s.rename("movies", "n");
        assert_eq!(s.columns(), &["n", "actor"]);
        // Unknown column becomes nulls.
        let s2 = df.select(&["nope"]);
        assert!(s2.rows().iter().all(|r| r[0].is_null()));
    }

    #[test]
    fn sort_and_head() {
        let df = sample();
        let sorted = df.sort_by(&[("movies", false)]);
        assert_eq!(sorted.get(0, "actor"), Some(&Cell::uri("a1")));
        let top = sorted.head(1, 0);
        assert_eq!(top.len(), 1);
        let second = sorted.head(1, 1);
        assert_eq!(second.get(0, "actor"), Some(&Cell::uri("a3")));
    }

    #[test]
    fn distinct_and_concat() {
        let df = sample();
        let doubled = df.concat(&df);
        assert_eq!(doubled.len(), 6);
        assert_eq!(doubled.distinct().len(), 3);
    }

    #[test]
    fn concat_aligns_columns() {
        let mut a = DataFrame::new(vec!["x".into()]);
        a.push_row(vec![Cell::Int(1)]);
        let mut b = DataFrame::new(vec!["y".into()]);
        b.push_row(vec![Cell::Int(2)]);
        let c = a.concat(&b);
        assert_eq!(c.columns(), &["x", "y"]);
        assert_eq!(c.rows()[0], vec![Cell::Int(1), Cell::Null]);
        assert_eq!(c.rows()[1], vec![Cell::Null, Cell::Int(2)]);
    }

    #[test]
    fn with_column() {
        let df = sample();
        let df2 = df.with_column("prolific", |row| {
            Cell::Bool(row.get("movies").and_then(|c| c.as_f64()).unwrap_or(0.0) >= 10.0)
        });
        assert_eq!(df2.get(0, "prolific"), Some(&Cell::Bool(true)));
        assert_eq!(df2.get(1, "prolific"), Some(&Cell::Bool(false)));
    }

    #[test]
    fn from_cell_columns_transposes() {
        let df = DataFrame::from_cell_columns(
            vec!["a".into(), "b".into()],
            vec![
                vec![Cell::Int(1), Cell::Int(2)],
                vec![Cell::str("x"), Cell::Null],
            ],
        );
        assert_eq!(df.len(), 2);
        assert_eq!(df.rows()[0], vec![Cell::Int(1), Cell::str("x")]);
        assert_eq!(df.rows()[1], vec![Cell::Int(2), Cell::Null]);
        let empty = DataFrame::from_cell_columns(vec!["a".into()], vec![vec![]]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn push_row_width_checked() {
        let mut df = DataFrame::new(vec!["a".into()]);
        df.push_row(vec![Cell::Int(1), Cell::Int(2)]);
    }

    #[test]
    fn drop_nulls() {
        let mut df = DataFrame::new(vec!["g".into()]);
        df.push_row(vec![Cell::Null]);
        df.push_row(vec![Cell::str("x")]);
        assert_eq!(df.drop_nulls("g").len(), 1);
    }
}
