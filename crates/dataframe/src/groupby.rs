//! Group-by with aggregation.

use std::collections::{HashMap, HashSet};

use crate::cell::Cell;
use crate::frame::DataFrame;

/// Aggregation functions (mirrors the RDFFrames aggregate set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row/value count (nulls excluded).
    Count,
    /// Count of distinct non-null values.
    CountDistinct,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum by total order.
    Min,
    /// Maximum by total order.
    Max,
    /// First value seen.
    Sample,
}

/// A pending group-by: call [`GroupBy::agg`] to materialize.
pub struct GroupBy<'a> {
    frame: &'a DataFrame,
    keys: Vec<String>,
}

impl<'a> GroupBy<'a> {
    pub(crate) fn new(frame: &'a DataFrame, keys: &[&str]) -> Self {
        GroupBy {
            frame,
            keys: keys.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Aggregate: each `(function, source column, output name)` produces one
    /// output column after the key columns.
    pub fn agg(&self, specs: &[(AggFn, &str, &str)]) -> DataFrame {
        let key_idx: Vec<Option<usize>> = self
            .keys
            .iter()
            .map(|k| self.frame.column_index(k))
            .collect();
        let src_idx: Vec<Option<usize>> = specs
            .iter()
            .map(|(_, src, _)| self.frame.column_index(src))
            .collect();

        struct State {
            count: usize,
            distinct: HashSet<Cell>,
            sum: f64,
            int_sum: i64,
            integral: bool,
            min: Option<Cell>,
            max: Option<Cell>,
            sample: Option<Cell>,
        }
        impl State {
            fn new() -> Self {
                State {
                    count: 0,
                    distinct: HashSet::new(),
                    sum: 0.0,
                    int_sum: 0,
                    integral: true,
                    min: None,
                    max: None,
                    sample: None,
                }
            }
            fn push(&mut self, cell: &Cell, wants_distinct: bool) {
                if cell.is_null() {
                    return;
                }
                self.count += 1;
                if wants_distinct {
                    self.distinct.insert(cell.clone());
                }
                match cell {
                    Cell::Int(i) => {
                        self.int_sum = self.int_sum.wrapping_add(*i);
                        self.sum += *i as f64;
                    }
                    Cell::Float(f) => {
                        self.integral = false;
                        self.sum += f;
                    }
                    _ => self.integral = false,
                }
                if self
                    .min
                    .as_ref()
                    .is_none_or(|m| cell.total_cmp(m) == std::cmp::Ordering::Less)
                {
                    self.min = Some(cell.clone());
                }
                if self
                    .max
                    .as_ref()
                    .is_none_or(|m| cell.total_cmp(m) == std::cmp::Ordering::Greater)
                {
                    self.max = Some(cell.clone());
                }
                if self.sample.is_none() {
                    self.sample = Some(cell.clone());
                }
            }
            fn finish(self, f: AggFn) -> Cell {
                match f {
                    AggFn::Count => Cell::Int(self.count as i64),
                    AggFn::CountDistinct => Cell::Int(self.distinct.len() as i64),
                    AggFn::Sum => {
                        if self.integral {
                            Cell::Int(self.int_sum)
                        } else {
                            Cell::Float(self.sum)
                        }
                    }
                    AggFn::Avg => {
                        if self.count == 0 {
                            Cell::Null
                        } else {
                            Cell::Float(self.sum / self.count as f64)
                        }
                    }
                    AggFn::Min => self.min.unwrap_or(Cell::Null),
                    AggFn::Max => self.max.unwrap_or(Cell::Null),
                    AggFn::Sample => self.sample.unwrap_or(Cell::Null),
                }
            }
        }

        let mut order: Vec<Vec<Cell>> = Vec::new();
        let mut groups: HashMap<Vec<Cell>, Vec<State>> = HashMap::new();
        for row in self.frame.rows() {
            let key: Vec<Cell> = key_idx
                .iter()
                .map(|i| i.map_or(Cell::Null, |i| row[i].clone()))
                .collect();
            let states = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                specs.iter().map(|_| State::new()).collect()
            });
            for (si, (f, _, _)) in specs.iter().enumerate() {
                if let Some(idx) = src_idx[si] {
                    states[si].push(&row[idx], matches!(f, AggFn::CountDistinct));
                }
            }
        }

        let mut columns = self.keys.clone();
        columns.extend(specs.iter().map(|(_, _, out)| out.to_string()));
        let mut out = DataFrame::new(columns);
        for key in order {
            let states = groups.remove(&key).expect("group present");
            let mut row = key;
            for (state, (f, _, _)) in states.into_iter().zip(specs) {
                row.push(state.finish(*f));
            }
            out.push_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(vec!["actor".into(), "movie".into(), "gross".into()]);
        for (a, m, g) in [
            ("a1", "m1", 10),
            ("a1", "m2", 30),
            ("a1", "m2", 30), // duplicate row (bag semantics)
            ("a2", "m3", 5),
        ] {
            df.push_row(vec![Cell::uri(a), Cell::uri(m), Cell::Int(g)]);
        }
        df
    }

    #[test]
    fn count_and_count_distinct() {
        let df = sample();
        let g = df.group_by(&["actor"]).agg(&[
            (AggFn::Count, "movie", "n"),
            (AggFn::CountDistinct, "movie", "nd"),
        ]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0, "n"), Some(&Cell::Int(3)));
        assert_eq!(g.get(0, "nd"), Some(&Cell::Int(2)));
        assert_eq!(g.get(1, "n"), Some(&Cell::Int(1)));
    }

    #[test]
    fn sum_avg_min_max() {
        let df = sample();
        let g = df.group_by(&["actor"]).agg(&[
            (AggFn::Sum, "gross", "total"),
            (AggFn::Avg, "gross", "mean"),
            (AggFn::Min, "gross", "lo"),
            (AggFn::Max, "gross", "hi"),
        ]);
        assert_eq!(g.get(0, "total"), Some(&Cell::Int(70)));
        assert_eq!(g.get(0, "mean"), Some(&Cell::Float(70.0 / 3.0)));
        assert_eq!(g.get(0, "lo"), Some(&Cell::Int(10)));
        assert_eq!(g.get(0, "hi"), Some(&Cell::Int(30)));
    }

    #[test]
    fn nulls_ignored() {
        let mut df = DataFrame::new(vec!["k".into(), "v".into()]);
        df.push_row(vec![Cell::Int(1), Cell::Null]);
        df.push_row(vec![Cell::Int(1), Cell::Int(5)]);
        let g = df
            .group_by(&["k"])
            .agg(&[(AggFn::Count, "v", "n"), (AggFn::Sum, "v", "s")]);
        assert_eq!(g.get(0, "n"), Some(&Cell::Int(1)));
        assert_eq!(g.get(0, "s"), Some(&Cell::Int(5)));
    }

    #[test]
    fn multi_key_grouping() {
        let mut df = DataFrame::new(vec!["a".into(), "b".into(), "v".into()]);
        df.push_row(vec![Cell::Int(1), Cell::Int(1), Cell::Int(10)]);
        df.push_row(vec![Cell::Int(1), Cell::Int(2), Cell::Int(20)]);
        df.push_row(vec![Cell::Int(1), Cell::Int(1), Cell::Int(30)]);
        let g = df.group_by(&["a", "b"]).agg(&[(AggFn::Sum, "v", "s")]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0, "s"), Some(&Cell::Int(40)));
    }

    #[test]
    fn group_order_is_first_appearance() {
        let df = sample();
        let g = df.group_by(&["actor"]).agg(&[(AggFn::Count, "movie", "n")]);
        assert_eq!(g.get(0, "actor"), Some(&Cell::uri("a1")));
        assert_eq!(g.get(1, "actor"), Some(&Cell::uri("a2")));
    }

    #[test]
    fn sample_takes_first() {
        let df = sample();
        let g = df
            .group_by(&["actor"])
            .agg(&[(AggFn::Sample, "movie", "m")]);
        assert_eq!(g.get(0, "m"), Some(&Cell::uri("m1")));
    }
}
