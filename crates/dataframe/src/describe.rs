//! Column summaries: the `df.describe()` data-exploration helper the
//! machine-learning workflow expects after data preparation.

use crate::cell::Cell;
use crate::frame::DataFrame;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Column name.
    pub name: String,
    /// Non-null cells.
    pub count: usize,
    /// Null cells.
    pub nulls: usize,
    /// Distinct non-null values.
    pub distinct: usize,
    /// Minimum (by total order), if any non-null value exists.
    pub min: Option<Cell>,
    /// Maximum (by total order).
    pub max: Option<Cell>,
    /// Mean of numeric cells, if any.
    pub mean: Option<f64>,
}

/// Summarize every column of a dataframe.
pub fn describe(df: &DataFrame) -> Vec<ColumnSummary> {
    df.columns()
        .iter()
        .map(|name| {
            let mut count = 0usize;
            let mut nulls = 0usize;
            let mut distinct = std::collections::HashSet::new();
            let mut min: Option<Cell> = None;
            let mut max: Option<Cell> = None;
            let mut numeric_sum = 0.0f64;
            let mut numeric_count = 0usize;
            for cell in df.column(name).expect("column exists") {
                if cell.is_null() {
                    nulls += 1;
                    continue;
                }
                count += 1;
                distinct.insert(cell.clone());
                if min
                    .as_ref()
                    .is_none_or(|m| cell.total_cmp(m) == std::cmp::Ordering::Less)
                {
                    min = Some(cell.clone());
                }
                if max
                    .as_ref()
                    .is_none_or(|m| cell.total_cmp(m) == std::cmp::Ordering::Greater)
                {
                    max = Some(cell.clone());
                }
                if let Some(v) = cell.as_f64() {
                    numeric_sum += v;
                    numeric_count += 1;
                }
            }
            ColumnSummary {
                name: name.clone(),
                count,
                nulls,
                distinct: distinct.len(),
                min,
                max,
                mean: (numeric_count > 0).then(|| numeric_sum / numeric_count as f64),
            }
        })
        .collect()
}

/// Render the summaries as an aligned text table.
pub fn describe_table(df: &DataFrame) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>7} {:>9} {:>12} {:>12} {:>10}",
        "column", "count", "nulls", "distinct", "min", "max", "mean"
    );
    for s in describe(df) {
        let fmt_cell = |c: &Option<Cell>| {
            c.as_ref()
                .map(|c| {
                    let text = c.to_string();
                    if text.len() > 12 {
                        format!("{}…", &text[..11])
                    } else {
                        text
                    }
                })
                .unwrap_or_else(|| "-".into())
        };
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>7} {:>9} {:>12} {:>12} {:>10}",
            s.name,
            s.count,
            s.nulls,
            s.distinct,
            fmt_cell(&s.min),
            fmt_cell(&s.max),
            s.mean
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(vec!["id".into(), "n".into(), "tag".into()]);
        df.push_row(vec![Cell::uri("a"), Cell::Int(10), Cell::str("x")]);
        df.push_row(vec![Cell::uri("b"), Cell::Int(20), Cell::Null]);
        df.push_row(vec![Cell::uri("a"), Cell::Float(30.0), Cell::str("y")]);
        df
    }

    #[test]
    fn summaries() {
        let s = describe(&sample());
        assert_eq!(s[0].count, 3);
        assert_eq!(s[0].distinct, 2);
        assert_eq!(s[1].mean, Some(20.0));
        assert_eq!(s[1].min, Some(Cell::Int(10)));
        assert_eq!(s[1].max, Some(Cell::Float(30.0)));
        assert_eq!(s[2].nulls, 1);
        assert_eq!(s[2].distinct, 2);
    }

    #[test]
    fn empty_frame() {
        let df = DataFrame::new(vec!["x".into()]);
        let s = describe(&df);
        assert_eq!(s[0].count, 0);
        assert_eq!(s[0].min, None);
        assert_eq!(s[0].mean, None);
    }

    #[test]
    fn table_renders() {
        let text = describe_table(&sample());
        assert!(text.contains("column"));
        assert!(text.lines().count() == 4);
    }
}
