//! Cell values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single dataframe cell.
///
/// `Uri` and `Str` are kept distinct so knowledge-graph identity survives
/// the trip through a dataframe (the paper's KG-embedding case study filters
/// on "object is an entity", i.e. a URI).
#[derive(Debug, Clone)]
pub enum Cell {
    /// Missing value (pandas `NaN`/`None`).
    Null,
    /// An RDF resource identifier.
    Uri(Arc<str>),
    /// A string value.
    Str(Arc<str>),
    /// An integer.
    Int(i64),
    /// A double.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl Cell {
    /// URI constructor.
    pub fn uri(s: impl Into<Arc<str>>) -> Self {
        Cell::Uri(s.into())
    }

    /// String constructor.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Cell::Str(s.into())
    }

    /// Is this cell null?
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Is this cell a URI?
    pub fn is_uri(&self) -> bool {
        matches!(self, Cell::Uri(_))
    }

    /// Numeric view (ints and floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view (URI string or string contents).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Uri(s) | Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total ordering: Null < Bool < numbers < Str < Uri. Numbers compare by
    /// value across Int/Float.
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        fn rank(c: &Cell) -> u8 {
            match c {
                Cell::Null => 0,
                Cell::Bool(_) => 1,
                Cell::Int(_) | Cell::Float(_) => 2,
                Cell::Str(_) => 3,
                Cell::Uri(_) => 4,
            }
        }
        match (self, other) {
            (Cell::Null, Cell::Null) => Ordering::Equal,
            (Cell::Bool(a), Cell::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Cell::Int(b)) => a.cmp(b),
            (Cell::Str(a), Cell::Str(b)) | (Cell::Uri(a), Cell::Uri(b)) => {
                a.as_ref().cmp(b.as_ref())
            }
            _ => {
                if let (Some(a), Some(b)) = (self.as_f64(), other.as_f64()) {
                    a.total_cmp(&b)
                } else {
                    rank(self).cmp(&rank(other))
                }
            }
        }
    }
}

impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Cell::Null, Cell::Null) => true,
            (Cell::Uri(a), Cell::Uri(b)) | (Cell::Str(a), Cell::Str(b)) => a == b,
            (Cell::Int(a), Cell::Int(b)) => a == b,
            (Cell::Bool(a), Cell::Bool(b)) => a == b,
            (Cell::Float(a), Cell::Float(b)) => a.to_bits() == b.to_bits(),
            (Cell::Int(a), Cell::Float(b)) | (Cell::Float(b), Cell::Int(a)) => {
                *b == *a as f64 && b.fract() == 0.0
            }
            _ => false,
        }
    }
}

impl Eq for Cell {}

impl Hash for Cell {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Cell::Null => 0u8.hash(state),
            Cell::Uri(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Cell::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            // Ints and integral floats must hash alike (they compare equal).
            Cell::Int(i) => {
                3u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Cell::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Cell::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => write!(f, ""),
            Cell::Uri(s) => write!(f, "<{s}>"),
            Cell::Str(s) => write!(f, "{s}"),
            Cell::Int(i) => write!(f, "{i}"),
            // `{x:?}` keeps a decimal point on integral values ("1.0", not
            // "1"), so a float cell's text form never collides with an
            // integer's and CSV round trips preserve the column's type.
            Cell::Float(x) => write!(f, "{x:?}"),
            Cell::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_across_numeric_types() {
        assert_eq!(Cell::Int(3), Cell::Float(3.0));
        assert_ne!(Cell::Int(3), Cell::Float(3.5));
        assert_ne!(Cell::Str("a".into()), Cell::Uri("a".into()));
    }

    #[test]
    fn hash_consistent_with_eq() {
        let mut set = HashSet::new();
        set.insert(Cell::Int(3));
        assert!(set.contains(&Cell::Float(3.0)));
    }

    #[test]
    fn ordering() {
        assert_eq!(Cell::Null.total_cmp(&Cell::Int(0)), Ordering::Less);
        assert_eq!(Cell::Int(2).total_cmp(&Cell::Float(2.5)), Ordering::Less);
        assert_eq!(
            Cell::Str("a".into()).total_cmp(&Cell::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Cell::Float(1.0).to_string(), "1.0");
        assert_eq!(Cell::Float(2.5).to_string(), "2.5");
        assert_eq!(Cell::Int(1).to_string(), "1");
    }

    #[test]
    fn accessors() {
        assert_eq!(Cell::Int(7).as_f64(), Some(7.0));
        assert_eq!(Cell::uri("http://x").as_str(), Some("http://x"));
        assert!(Cell::Null.is_null());
        assert!(Cell::uri("http://x").is_uri());
        assert!(!Cell::str("x").is_uri());
    }
}
