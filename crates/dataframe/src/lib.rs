//! A small dataframe library — the pandas stand-in for the RDFFrames
//! reproduction.
//!
//! The paper's client-side baselines ("Navigation + pandas", "rdflib +
//! pandas", "SPARQL + pandas") pull raw data out of the knowledge graph and
//! do the relational work in pandas. This crate provides the operations those
//! baselines need with comparable asymptotics: vectorized filters, hash
//! joins (inner/left/right/full outer), hash group-by with aggregation,
//! sorting, slicing, and CSV I/O.

pub mod cell;
pub mod csv;
pub mod describe;
pub mod frame;
pub mod groupby;
pub mod join;

pub use cell::Cell;
pub use describe::{describe, describe_table, ColumnSummary};
pub use frame::{DataFrame, RowView};
pub use groupby::AggFn;
pub use join::JoinType;
