//! CSV import/export for dataframes.
//!
//! Machine learning pipelines exchange prepared datasets as CSV; the paper's
//! examples end by handing a dataframe to a model. Values are quoted when
//! they contain separators; type inference on read recognizes ints, floats,
//! booleans and URIs (angle-bracketed).

use crate::cell::Cell;
use crate::frame::DataFrame;

/// Serialize to CSV (header row + data rows).
pub fn to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    out.push_str(
        &df.columns()
            .iter()
            .map(|c| quote(c))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in df.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|c| match c {
                Cell::Null => String::new(),
                Cell::Uri(u) => quote(&format!("<{u}>")),
                Cell::Str(s) => quote(s),
                Cell::Int(i) => i.to_string(),
                // Debug formatting keeps the decimal point on integral
                // floats so the reader re-infers Float, not Int.
                Cell::Float(f) => format!("{f:?}"),
                Cell::Bool(b) => b.to_string(),
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV produced by [`to_csv`] (or similar) back into a dataframe.
pub fn from_csv(text: &str) -> Option<DataFrame> {
    let mut lines = split_records(text).into_iter();
    let header = lines.next()?;
    let columns = parse_record(&header);
    let mut df = DataFrame::new(columns);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line);
        let cells: Vec<Cell> = fields.into_iter().map(infer_cell).collect();
        if cells.len() == df.columns().len() {
            df.push_row(cells);
        } else {
            return None;
        }
    }
    Some(df)
}

/// Split into records, respecting quoted newlines.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            '\n' if !in_quotes => {
                records.push(std::mem::take(&mut current));
            }
            '\r' => {}
            _ => current.push(c),
        }
    }
    if !current.is_empty() {
        records.push(current);
    }
    records
}

fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    fields.push(current);
    fields
}

fn infer_cell(field: String) -> Cell {
    if field.is_empty() {
        return Cell::Null;
    }
    if let Some(inner) = field.strip_prefix('<').and_then(|f| f.strip_suffix('>')) {
        return Cell::uri(inner.to_string());
    }
    if let Ok(i) = field.parse::<i64>() {
        return Cell::Int(i);
    }
    if let Ok(f) = field.parse::<f64>() {
        return Cell::Float(f);
    }
    match field.as_str() {
        "true" => Cell::Bool(true),
        "false" => Cell::Bool(false),
        _ => Cell::str(field),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut df = DataFrame::new(vec!["actor".into(), "n".into(), "note".into()]);
        df.push_row(vec![
            Cell::uri("http://x/a1"),
            Cell::Int(30),
            Cell::str("said \"hi\", left"),
        ]);
        df.push_row(vec![Cell::uri("http://x/a2"), Cell::Float(1.5), Cell::Null]);
        let text = to_csv(&df);
        let back = from_csv(&text).unwrap();
        assert_eq!(df, back);
    }

    #[test]
    fn quoted_newline() {
        let mut df = DataFrame::new(vec!["t".into()]);
        df.push_row(vec![Cell::str("line1\nline2")]);
        let text = to_csv(&df);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.get(0, "t"), Some(&Cell::str("line1\nline2")));
    }

    #[test]
    fn integral_float_round_trips_as_float() {
        // Regression: `1.0` used to serialize as "1" and come back as
        // Int(1), silently changing the column's type (and its text form)
        // relative to what the query produced.
        let mut df = DataFrame::new(vec!["avg".into()]);
        df.push_row(vec![Cell::Float(1.0)]);
        df.push_row(vec![Cell::Float(-3.0)]);
        let text = to_csv(&df);
        assert!(text.contains("1.0"), "{text}");
        let back = from_csv(&text).unwrap();
        assert!(matches!(back.get(0, "avg"), Some(Cell::Float(f)) if *f == 1.0));
        assert!(matches!(back.get(1, "avg"), Some(Cell::Float(f)) if *f == -3.0));
        assert_eq!(df, back);
    }

    #[test]
    fn type_inference() {
        let df = from_csv("a,b,c,d\n1,2.5,true,plain\n").unwrap();
        assert_eq!(df.get(0, "a"), Some(&Cell::Int(1)));
        assert_eq!(df.get(0, "b"), Some(&Cell::Float(2.5)));
        assert_eq!(df.get(0, "c"), Some(&Cell::Bool(true)));
        assert_eq!(df.get(0, "d"), Some(&Cell::str("plain")));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(from_csv("a,b\n1\n").is_none());
    }
}
