//! Resource-governor enforcement: a runaway query must terminate with a
//! typed [`EngineError::ResourceExhausted`] on **every** budget axis and
//! **every** evaluator — never a panic, never an unbounded allocation.
//!
//! The runaway workload is an unconstrained cross join (two patterns
//! sharing no variable): N triples → N² intermediate rows, the canonical
//! query-gone-wrong every axis must be able to stop early.

use std::sync::Arc;
use std::time::Duration;

use rdf_model::{Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EngineError, EvalMode, QueryBudget, ResourceKind};

const GRAPH: &str = "http://g";

fn dataset(n: usize) -> Arc<Dataset> {
    let mut g = Graph::new();
    for i in 0..n {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::integer(i as i64),
        ));
    }
    let mut ds = Dataset::new();
    ds.insert_graph(GRAPH, g);
    Arc::new(ds)
}

/// N triples × N triples with no shared variable: N² results.
const CROSS_JOIN: &str = "SELECT ?a ?b ?c ?d FROM <http://g> WHERE { \
     ?a <http://x/p> ?b . ?c <http://x/p> ?d }";

fn engine(ds: &Arc<Dataset>, eval_mode: EvalMode, budget: QueryBudget) -> Engine {
    Engine::with_config(
        Arc::clone(ds),
        EngineConfig {
            eval_mode,
            budget,
            ..EngineConfig::new()
        },
    )
}

const ALL_MODES: [EvalMode; 3] = [
    EvalMode::Columnar,
    EvalMode::IdNative,
    EvalMode::TermReference,
];

#[test]
fn runaway_cross_join_trips_every_axis_on_every_evaluator() {
    // Scale 4000: 16M result rows if left unchecked — far beyond every
    // limit below, so each axis must stop the query long before the result
    // materializes.
    let ds = dataset(4000);
    let axes: [(QueryBudget, ResourceKind); 4] = [
        (
            QueryBudget::unlimited().with_max_rows_scanned(10_000),
            ResourceKind::RowsScanned,
        ),
        (
            QueryBudget::unlimited().with_max_intermediate_rows(50_000),
            ResourceKind::IntermediateRows,
        ),
        (
            QueryBudget::unlimited().with_max_memory_bytes(1 << 20),
            ResourceKind::MemoryBytes,
        ),
        (
            QueryBudget::unlimited().with_deadline(Duration::ZERO),
            ResourceKind::Deadline,
        ),
    ];
    for mode in ALL_MODES {
        for (budget, expected) in &axes {
            let engine = engine(&ds, mode, budget.clone());
            let err = engine
                .execute(CROSS_JOIN)
                .expect_err("runaway query must not complete");
            match err {
                EngineError::ResourceExhausted {
                    resource,
                    limit,
                    observed,
                } => {
                    assert_eq!(resource, *expected, "{mode:?}");
                    // Bounded overshoot: observed exceeds the limit by at
                    // most the work between two cooperative check points,
                    // never by the whole N² result.
                    assert!(observed >= limit, "{mode:?} {resource}");
                }
                other => panic!("{mode:?}: expected ResourceExhausted, got {other:?}"),
            }
        }
    }
}

#[test]
fn overshoot_is_bounded_not_result_sized() {
    // The scan meter may overshoot by one hot-loop iteration (one input
    // row's matches), but must never run to completion: at scale 1000 a
    // full evaluation scans >1M entries, while the limit of 10k plus one
    // row's worth (≤ ~2k) stays far below that.
    let ds = dataset(1000);
    for mode in ALL_MODES {
        let engine = engine(
            &ds,
            mode,
            QueryBudget::unlimited().with_max_rows_scanned(10_000),
        );
        let err = engine.execute(CROSS_JOIN).unwrap_err();
        let EngineError::ResourceExhausted { observed, .. } = err else {
            panic!("{mode:?}: expected ResourceExhausted")
        };
        assert!(
            observed < 20_000,
            "{mode:?}: overshoot {observed} is not bounded"
        );
    }
}

#[test]
fn budgets_present_but_not_hit_change_nothing() {
    // Generous limits must be invisible: identical rows and identical
    // rows_scanned as the unlimited run, on every evaluator.
    let ds = dataset(64);
    let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
    for mode in ALL_MODES {
        let unlimited = engine(&ds, mode, QueryBudget::unlimited());
        let generous = engine(
            &ds,
            mode,
            QueryBudget::unlimited()
                .with_max_rows_scanned(u64::MAX / 2)
                .with_max_intermediate_rows(u64::MAX / 2)
                .with_max_memory_bytes(u64::MAX / 2)
                .with_deadline(Duration::from_secs(3600)),
        );
        let (t_off, s_off) = unlimited.execute_with_stats(q).unwrap();
        let (t_on, s_on) = generous.execute_with_stats(q).unwrap();
        assert_eq!(t_off, t_on, "{mode:?}");
        assert_eq!(s_off.rows_scanned, s_on.rows_scanned, "{mode:?}");
    }
}

#[test]
fn error_is_value_not_panic_and_engine_stays_usable() {
    // After a budget trip the engine must serve the next (cheap) query
    // normally — cancellation is cooperative cleanup, not poisoned state.
    let ds = dataset(2000);
    let engine = engine(
        &ds,
        EvalMode::Columnar,
        QueryBudget::unlimited().with_max_intermediate_rows(10_000),
    );
    assert!(engine.execute(CROSS_JOIN).is_err());
    let cheap = "SELECT ?s FROM <http://g> WHERE { ?s <http://x/p> ?o } LIMIT 5";
    assert_eq!(engine.execute(cheap).unwrap().len(), 5);
}

#[test]
fn cursor_path_enforces_budgets() {
    let ds = dataset(4000);
    let budget = QueryBudget::unlimited().with_max_intermediate_rows(50_000);
    // Materializing cursor (streaming off): evaluation is eager, so the
    // violation surfaces at cursor creation.
    let tripped = Engine::with_config(
        Arc::clone(&ds),
        EngineConfig {
            budget: budget.clone(),
            streaming: false,
            ..EngineConfig::new()
        },
    );
    let prepared = tripped.prepare(CROSS_JOIN).unwrap();
    assert!(matches!(
        tripped.cursor(&prepared, 1024),
        Err(EngineError::ResourceExhausted {
            resource: ResourceKind::IntermediateRows,
            ..
        })
    ));

    // Streaming cursor: creation only compiles the pipeline, so budget
    // violations surface while draining instead. The bare cross join
    // streams with bounded live state and would complete; an ORDER BY on
    // top is a pipeline breaker that must accumulate its input — the same
    // typed trip, now raised from inside `next_batch`.
    let streaming = engine(&ds, EvalMode::Columnar, budget);
    let ordered = format!("{CROSS_JOIN} ORDER BY ?a");
    let prepared = streaming.prepare(&ordered).unwrap();
    let mut cursor = streaming
        .cursor(&prepared, 1024)
        .expect("streaming cursor creation does no evaluation");
    let err = loop {
        match cursor.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("runaway query must not complete"),
            Err(e) => break e,
        }
    };
    assert!(matches!(
        err,
        EngineError::ResourceExhausted {
            resource: ResourceKind::IntermediateRows,
            ..
        }
    ));

    // A small result evaluates fine under a zero deadline (cooperative
    // checks may not fire during cheap evaluation), but the cursor itself
    // must cancel the consumer on its next poll.
    let small = dataset(10);
    let deadline = engine(
        &small,
        EvalMode::Columnar,
        QueryBudget::unlimited().with_deadline(Duration::ZERO),
    );
    let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o }";
    let prepared = deadline.prepare(q).unwrap();
    let poll = deadline.cursor(&prepared, 4).and_then(|mut c| {
        c.next_batch()?;
        Ok(())
    });
    assert!(matches!(
        poll,
        Err(EngineError::ResourceExhausted {
            resource: ResourceKind::Deadline,
            ..
        })
    ));
}

#[test]
fn grouping_and_ordinary_joins_are_metered_too() {
    // The governor covers aggregation and key joins, not just BGP
    // cross products: a GROUP BY over the runaway join must trip on
    // intermediate rows before the group table forms.
    let ds = dataset(2000);
    let q = "SELECT ?b (COUNT(?d) AS ?n) FROM <http://g> WHERE { \
             ?a <http://x/p> ?b . ?c <http://x/p> ?d } GROUP BY ?b";
    for mode in ALL_MODES {
        let engine = engine(
            &ds,
            mode,
            QueryBudget::unlimited().with_max_intermediate_rows(20_000),
        );
        assert!(
            matches!(
                engine.execute(q),
                Err(EngineError::ResourceExhausted { .. })
            ),
            "{mode:?}"
        );
    }
}
