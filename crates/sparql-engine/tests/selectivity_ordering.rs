//! Selectivity-ordered BGP evaluation: the optimizer reorders triple
//! patterns by the dataset's cached `PredicateStats` before evaluation.
//!
//! These tests pin down both halves of the contract on a dataset where
//! textual order is adversarially bad (the huge scan is written first, the
//! needle last):
//!
//! - **Equality**: optimized and unoptimized plans produce identical bags on
//!   every evaluator (reordering is a pure physical rewrite).
//! - **Effectiveness**: the reordered plan scans strictly fewer index
//!   entries (`rows_scanned`), and all three evaluators agree on the
//!   reordered count exactly.

use std::sync::Arc;

use rdf_model::{Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EvalMode};

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

/// 2000 `label` triples, 500 `inCountry`, 3 `award` — a steep selectivity
/// gradient for the optimizer to exploit.
fn skewed_dataset() -> Arc<Dataset> {
    let mut g = Graph::new();
    for i in 0..1000 {
        let e = iri(&format!("http://x/e{i}"));
        g.insert(&Triple::new(
            e.clone(),
            iri("http://x/label"),
            Term::string(format!("entity {i}")),
        ));
        g.insert(&Triple::new(
            e.clone(),
            iri("http://x/alias"),
            Term::string(format!("alias {i}")),
        ));
        if i % 2 == 0 {
            g.insert(&Triple::new(
                e.clone(),
                iri("http://x/inCountry"),
                iri(&format!("http://x/country{}", i % 5)),
            ));
        }
        if i < 3 {
            g.insert(&Triple::new(
                e,
                iri("http://x/award"),
                iri("http://x/oscar"),
            ));
        }
    }
    let mut ds = Dataset::new();
    ds.insert_graph("http://g", g);
    Arc::new(ds)
}

/// Worst-first textual order: big scans before the selective award pattern.
const MISORDERED: &str = "SELECT ?e ?l ?c FROM <http://g> WHERE { \
     ?e <http://x/label> ?l . \
     ?e <http://x/alias> ?al . \
     ?e <http://x/inCountry> ?c . \
     ?e <http://x/award> <http://x/oscar> }";

fn engine(ds: &Arc<Dataset>, optimize: bool, eval_mode: EvalMode) -> Engine {
    Engine::with_config(
        Arc::clone(ds),
        EngineConfig {
            optimize,
            eval_mode,
            ..EngineConfig::new()
        },
    )
}

const MODES: [EvalMode; 3] = [
    EvalMode::Columnar,
    EvalMode::IdNative,
    EvalMode::TermReference,
];

#[test]
fn reordering_preserves_results_on_all_evaluators() {
    let ds = skewed_dataset();
    let mut canonical: Option<sparql_engine::SolutionTable> = None;
    for mode in MODES {
        for optimize in [true, false] {
            let (mut t, _) = engine(&ds, optimize, mode)
                .execute_with_stats(MISORDERED)
                .unwrap();
            t.canonicalize();
            // e0..e2 hold awards but only even entities have inCountry.
            assert_eq!(t.len(), 2, "two awarded in-country entities expected");
            match &canonical {
                Some(c) => assert_eq!(c, &t, "{mode:?} optimize={optimize}"),
                None => canonical = Some(t),
            }
        }
    }
}

#[test]
fn reordering_scans_fewer_index_entries() {
    let ds = skewed_dataset();
    for mode in MODES {
        let (_, with_opt) = engine(&ds, true, mode)
            .execute_with_stats(MISORDERED)
            .unwrap();
        let (_, without) = engine(&ds, false, mode)
            .execute_with_stats(MISORDERED)
            .unwrap();
        // Textual order scans the 2000-entry label index up front; the
        // stats-driven order starts from the 3 award triples.
        assert!(
            with_opt.rows_scanned * 10 <= without.rows_scanned,
            "{mode:?}: expected ≥10× fewer scans, got {} vs {}",
            with_opt.rows_scanned,
            without.rows_scanned
        );
    }

    // All evaluators agree on the reordered work metric exactly.
    let counts: Vec<u64> = MODES
        .iter()
        .map(|&m| {
            engine(&ds, true, m)
                .execute_with_stats(MISORDERED)
                .unwrap()
                .1
                .rows_scanned
        })
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}
