//! The parallel evaluator's determinism contract: running the columnar
//! engine with a work-stealing pool must be **observationally identical**
//! to the single-threaded run — same rows in the same order, same plan,
//! same `rows_scanned` work count, same typed budget failures — with the
//! only permitted difference being wall-clock time and the `par_*`
//! telemetry counters.
//!
//! The partitioning schemes earn this by construction (chunk results are
//! folded in chunk order, so global row order is preserved; per-chunk scan
//! counts sum to the sequential total), and this suite is the executable
//! statement of that contract.

use std::sync::Arc;
use std::time::Duration;

use rdf_model::{Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EngineError, QueryBudget, ResourceKind};

const GRAPH: &str = "http://g";

/// Enough rows that every parallel-eligible operator crosses the
/// `PAR_MIN_ROWS` gate and gets split into several chunks per worker.
const N: usize = 3000;

fn dataset() -> Arc<Dataset> {
    let mut g = Graph::new();
    for i in 0..N {
        let s = Term::iri(format!("http://x/s{i}"));
        g.insert(&Triple::new(
            s.clone(),
            Term::iri("http://x/p"),
            Term::integer((i % 97) as i64),
        ));
        g.insert(&Triple::new(
            s.clone(),
            Term::iri("http://x/q"),
            Term::iri(format!("http://x/cat{}", i % 13)),
        ));
        if i % 3 == 0 {
            g.insert(&Triple::new(
                s,
                Term::iri("http://x/r"),
                Term::string(format!("label {i}")),
            ));
        }
    }
    let mut ds = Dataset::new();
    ds.insert_graph(GRAPH, g);
    Arc::new(ds)
}

fn engine(ds: &Arc<Dataset>, threads: usize) -> Engine {
    Engine::with_config(
        Arc::clone(ds),
        EngineConfig {
            threads,
            ..EngineConfig::new()
        },
    )
}

/// Queries covering every parallelized operator: multi-pattern BGP
/// extension (with pushed filters), hash join via shared variables,
/// and mergeable GROUP BY aggregates (COUNT / COUNT DISTINCT / MIN / MAX /
/// SAMPLE), plus ORDER BY so row order is part of the contract.
const QUERIES: &[&str] = &[
    // Pure BGP extension over two patterns + a pushed numeric filter.
    "SELECT ?s ?v ?c FROM <http://g> WHERE { \
       ?s <http://x/p> ?v . ?s <http://x/q> ?c . FILTER(?v > 40) }",
    // Three-pattern BGP where the optional-density r predicate shrinks it.
    "SELECT ?s ?v ?l FROM <http://g> WHERE { \
       ?s <http://x/p> ?v . ?s <http://x/q> ?c . ?s <http://x/r> ?l }",
    // GROUP BY with the full mergeable aggregate set.
    "SELECT ?c (COUNT(?s) AS ?n) (COUNT(DISTINCT ?v) AS ?dv) \
            (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (SAMPLE(?s) AS ?any) \
     FROM <http://g> WHERE { ?s <http://x/p> ?v . ?s <http://x/q> ?c } \
     GROUP BY ?c ORDER BY ?c",
    // Aggregation over everything (implicit single group).
    "SELECT (COUNT(?s) AS ?n) (MAX(?v) AS ?hi) FROM <http://g> \
     WHERE { ?s <http://x/p> ?v }",
    // DISTINCT + ORDER BY exercises order sensitivity downstream of the
    // parallel operators.
    "SELECT DISTINCT ?c FROM <http://g> WHERE { ?s <http://x/q> ?c } ORDER BY ?c",
];

#[test]
fn parallel_results_are_byte_identical_to_sequential() {
    let ds = dataset();
    let seq = engine(&ds, 1);
    let par = engine(&ds, 4);
    for q in QUERIES {
        let (t1, s1) = seq.execute_with_stats(q).unwrap();
        let (t4, s4) = par.execute_with_stats(q).unwrap();
        assert_eq!(t1, t4, "threads changed the result of {q}");
        assert_eq!(
            s1.rows_scanned, s4.rows_scanned,
            "threads changed the scan work count of {q}"
        );
    }
}

#[test]
fn parallel_execution_actually_ran_and_reported_telemetry() {
    let ds = dataset();
    let par = engine(&ds, 4);
    // The two-pattern BGP over 3000 rows must split into chunks.
    let (_, stats) = par.execute_with_stats(QUERIES[0]).unwrap();
    assert_eq!(stats.par_workers, 4, "pool size not reported");
    assert!(
        stats.par_chunks > 1,
        "expected chunked parallel execution, got {} chunks",
        stats.par_chunks
    );
    // Sequential runs report no parallel work at all.
    let seq = engine(&ds, 1);
    let (_, stats) = seq.execute_with_stats(QUERIES[0]).unwrap();
    assert_eq!(stats.par_workers, 1);
    assert_eq!(stats.par_chunks, 0);
}

#[test]
fn prepared_plans_are_identical_across_thread_counts() {
    // Thread count is an execution-time knob: it must never leak into
    // planning or optimization.
    let ds = dataset();
    let seq = engine(&ds, 1);
    let par = engine(&ds, 4);
    for q in QUERIES {
        assert_eq!(
            seq.prepare(q).unwrap(),
            par.prepare(q).unwrap(),
            "thread count changed the plan of {q}"
        );
    }
}

/// N triples × N triples with no shared variable: a runaway cross join the
/// budget must stop on every thread count.
const CROSS_JOIN: &str = "SELECT ?a ?b ?c ?d FROM <http://g> WHERE { \
     ?a <http://x/p> ?b . ?c <http://x/p> ?d }";

#[test]
fn parallel_budget_trips_are_typed_with_bounded_overshoot() {
    let ds = dataset();
    let axes: [(QueryBudget, ResourceKind); 3] = [
        (
            QueryBudget::unlimited().with_max_rows_scanned(10_000),
            ResourceKind::RowsScanned,
        ),
        (
            QueryBudget::unlimited().with_max_intermediate_rows(50_000),
            ResourceKind::IntermediateRows,
        ),
        (
            QueryBudget::unlimited().with_deadline(Duration::ZERO),
            ResourceKind::Deadline,
        ),
    ];
    for (budget, expected) in axes {
        let engine = Engine::with_config(
            Arc::clone(&ds),
            EngineConfig {
                threads: 4,
                budget,
                ..EngineConfig::new()
            },
        );
        let err = engine
            .execute(CROSS_JOIN)
            .expect_err("runaway query must trip the budget under parallelism");
        match err {
            EngineError::ResourceExhausted {
                resource,
                limit,
                observed,
            } => {
                assert_eq!(resource, expected);
                assert!(observed >= limit);
                if resource == ResourceKind::RowsScanned {
                    // Each worker may overshoot by at most one hot-loop
                    // iteration past the shared atomic's trip point —
                    // nowhere near the full N² scan.
                    assert!(
                        observed < 4 * limit,
                        "parallel overshoot {observed} is unbounded (limit {limit})"
                    );
                }
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }
}

#[test]
fn generous_budgets_are_invisible_under_parallelism() {
    let ds = dataset();
    let unlimited = engine(&ds, 4);
    let budgeted = Engine::with_config(
        Arc::clone(&ds),
        EngineConfig {
            threads: 4,
            budget: QueryBudget::unlimited()
                .with_max_rows_scanned(u64::MAX / 2)
                .with_max_intermediate_rows(u64::MAX / 2),
            ..EngineConfig::new()
        },
    );
    for q in QUERIES {
        let (t_free, s_free) = unlimited.execute_with_stats(q).unwrap();
        let (t_cap, s_cap) = budgeted.execute_with_stats(q).unwrap();
        assert_eq!(t_free, t_cap, "unhit budget changed the result of {q}");
        assert_eq!(s_free.rows_scanned, s_cap.rows_scanned);
    }
}
