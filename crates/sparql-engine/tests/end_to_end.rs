//! End-to-end engine tests: SPARQL text in, solution tables out.

use std::sync::Arc;

use rdf_model::{Dataset, Graph, Literal, Term, Triple};
use sparql_engine::{Engine, EngineConfig};

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

/// A small movie graph mirroring the paper's running example.
fn movie_graph() -> Graph {
    let mut g = Graph::new();
    let starring = iri("http://dbpedia.org/property/starring");
    let birth_place = iri("http://dbpedia.org/property/birthPlace");
    let award = iri("http://dbpedia.org/property/academyAward");
    let usa = iri("http://dbpedia.org/resource/United_States");
    let uk = iri("http://dbpedia.org/resource/United_Kingdom");

    // actor1 (US): 3 movies, has award. actor2 (US): 1 movie.
    // actor3 (UK): 2 movies.
    let actors = [
        ("actor1", &usa, 3, true),
        ("actor2", &usa, 1, false),
        ("actor3", &uk, 2, false),
    ];
    for (name, place, movies, has_award) in actors {
        let a = iri(&format!("http://dbpedia.org/resource/{name}"));
        g.insert(&Triple::new(
            a.clone(),
            birth_place.clone(),
            (*place).clone(),
        ));
        for m in 0..movies {
            let movie = iri(&format!("http://dbpedia.org/resource/{name}_movie{m}"));
            g.insert(&Triple::new(movie, starring.clone(), a.clone()));
        }
        if has_award {
            g.insert(&Triple::new(
                a.clone(),
                award.clone(),
                iri("http://dbpedia.org/resource/Oscar"),
            ));
        }
    }
    g
}

fn engine() -> Engine {
    let mut ds = Dataset::new();
    ds.insert_graph("http://dbpedia.org", movie_graph());
    Engine::new(Arc::new(ds))
}

const PREFIXES: &str = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                        PREFIX dbpr: <http://dbpedia.org/resource/>\n";

#[test]
fn basic_bgp() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?movie ?actor FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.vars, vec!["movie", "actor"]);
    assert_eq!(t.len(), 6);
}

#[test]
fn filter_on_equality() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?actor FROM <http://dbpedia.org> WHERE {{ \
            ?movie dbpp:starring ?actor . \
            ?actor dbpp:birthPlace ?c \
            FILTER ( ?c = dbpr:United_States ) }}"
    );
    let t = e.execute(&q).unwrap();
    // actor1 appears 3 times (3 movies), actor2 once: bag semantics.
    assert_eq!(t.len(), 4);
}

#[test]
fn group_by_having() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?n) \
         FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }} \
         GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 )"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 2); // actor1 (3), actor3 (2)
    let n_idx = t.column_index("n").unwrap();
    for row in &t.rows {
        let n = row[n_idx].as_ref().unwrap();
        assert!(matches!(n, Term::Literal(l) if l.as_f64().unwrap() >= 2.0));
    }
}

#[test]
fn optional_keeps_unmatched() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?actor ?aw FROM <http://dbpedia.org> WHERE {{ \
            ?actor dbpp:birthPlace ?c \
            OPTIONAL {{ ?actor dbpp:academyAward ?aw }} }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 3);
    let aw = t.column_index("aw").unwrap();
    let bound = t.rows.iter().filter(|r| r[aw].is_some()).count();
    assert_eq!(bound, 1);
}

#[test]
fn union_merges_branches() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?x FROM <http://dbpedia.org> WHERE {{ \
            {{ ?x dbpp:academyAward ?a }} UNION {{ ?x dbpp:birthPlace dbpr:United_Kingdom }} }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 2); // actor1 via award, actor3 via UK birthplace
}

#[test]
fn subquery_with_aggregation() {
    // The paper's prolific-actors shape (Listing 2, threshold 2).
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT * FROM <http://dbpedia.org> WHERE {{ \
            ?movie dbpp:starring ?actor \
            {{ SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) WHERE {{ \
                ?movie dbpp:starring ?actor . \
                ?actor dbpp:birthPlace ?actor_country \
                FILTER ( ?actor_country = dbpr:United_States ) }} \
               GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 ) }} \
            OPTIONAL {{ ?actor dbpp:academyAward ?award }} }}"
    );
    let t = e.execute(&q).unwrap();
    // Only actor1 is prolific-American: 3 movies × 1 award = 3 rows.
    assert_eq!(t.len(), 3);
    let actor = t.column_index("actor").unwrap();
    for row in &t.rows {
        assert_eq!(
            row[actor].as_ref().unwrap(),
            &iri("http://dbpedia.org/resource/actor1")
        );
    }
    let award = t.column_index("award").unwrap();
    assert!(t.rows.iter().all(|r| r[award].is_some()));
}

#[test]
fn order_limit_offset() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?movie FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }} ORDER BY ?movie LIMIT 2 OFFSET 1"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 2);
    let m0 = t.rows[0][0].as_ref().unwrap().str_value().to_string();
    let m1 = t.rows[1][0].as_ref().unwrap().str_value().to_string();
    assert!(m0 < m1);
}

#[test]
fn distinct_deduplicates() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT DISTINCT ?actor FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 3);
}

#[test]
fn regex_filter() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?actor ?c FROM <http://dbpedia.org> WHERE {{ \
            ?actor dbpp:birthPlace ?c FILTER regex(str(?c), \"United_States\") }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 2);
}

#[test]
fn is_iri_filter() {
    let mut g = movie_graph();
    g.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actor1"),
        iri("http://www.w3.org/2000/01/rdf-schema#label"),
        Term::Literal(Literal::lang_string("Actor One", "en")),
    ));
    let mut ds = Dataset::new();
    ds.insert_graph("http://dbpedia.org", g);
    let e = Engine::new(Arc::new(ds));
    let q = "SELECT * FROM <http://dbpedia.org> WHERE { ?s ?p ?o . FILTER ( isIRI(?o) ) }";
    let t = e.execute(q).unwrap();
    let o = t.column_index("o").unwrap();
    assert!(t.rows.iter().all(|r| r[o].as_ref().unwrap().is_iri()));
    assert_eq!(t.len(), 10); // all but the one literal label triple
}

#[test]
fn cross_graph_join_with_graph_clause() {
    let mut db = Graph::new();
    db.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actorX"),
        iri("http://dbpedia.org/property/birthPlace"),
        iri("http://dbpedia.org/resource/United_States"),
    ));
    let mut yago = Graph::new();
    yago.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actorX"),
        iri("http://yago/actedIn"),
        iri("http://yago/movieY"),
    ));
    let mut ds = Dataset::new();
    ds.insert_graph("http://dbpedia.org", db);
    ds.insert_graph("http://yago-knowledge.org", yago);
    let e = Engine::new(Arc::new(ds));
    let q = "SELECT ?a ?m WHERE { \
        GRAPH <http://dbpedia.org> { ?a <http://dbpedia.org/property/birthPlace> ?c } \
        GRAPH <http://yago-knowledge.org> { ?a <http://yago/actedIn> ?m } }";
    let t = e.execute(q).unwrap();
    assert_eq!(t.len(), 1);
}

#[test]
fn unknown_graph_errors() {
    let e = engine();
    let q = "SELECT * FROM <http://nope.example> WHERE { ?s ?p ?o }";
    assert!(matches!(
        e.execute(q),
        Err(sparql_engine::EngineError::UnknownGraph(_))
    ));
}

#[test]
fn optimizer_and_naive_agree() {
    let ds = {
        let mut ds = Dataset::new();
        ds.insert_graph("http://dbpedia.org", movie_graph());
        Arc::new(ds)
    };
    let opt = Engine::new(Arc::clone(&ds));
    let noopt = Engine::with_config(
        ds,
        EngineConfig {
            optimize: false,
            ..EngineConfig::new()
        },
    );
    let q = format!(
        "{PREFIXES} SELECT ?movie ?actor ?c FROM <http://dbpedia.org> WHERE {{ \
            ?movie dbpp:starring ?actor . \
            ?actor dbpp:birthPlace ?c . \
            ?actor dbpp:academyAward ?aw }}"
    );
    let mut a = opt.execute(&q).unwrap();
    let mut b = noopt.execute(&q).unwrap();
    a.canonicalize();
    b.canonicalize();
    assert_eq!(a, b);
}

#[test]
fn aggregate_without_group_by() {
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }}"
    );
    let t = e.execute(&q).unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.rows[0][0], Some(Term::integer(6)));
}

#[test]
fn count_star_on_empty_is_zero() {
    let e = engine();
    let q = "SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
             WHERE { ?x <http://nothing/here> ?y }";
    let t = e.execute(q).unwrap();
    assert_eq!(t.rows, vec![vec![Some(Term::integer(0))]]);
}

#[test]
fn full_outer_join_shape() {
    // The UNION-of-two-OPTIONALs encoding RDFFrames uses for ⟗.
    let e = engine();
    let q = format!(
        "{PREFIXES} SELECT ?actor ?aw ?c FROM <http://dbpedia.org> WHERE {{ \
           {{ {{ ?actor dbpp:academyAward ?aw }} OPTIONAL {{ ?actor dbpp:birthPlace ?c }} }} \
           UNION \
           {{ {{ ?actor dbpp:birthPlace ?c }} OPTIONAL {{ ?actor dbpp:academyAward ?aw }} }} }}"
    );
    let t = e.execute(&q).unwrap();
    // Branch 1: actor1 (award+birth). Branch 2: all three actors.
    assert_eq!(t.len(), 4);
}
