//! Differential tests: the columnar evaluator against the PR 1 row-at-a-time
//! id-native evaluator and the seed term-materialized reference evaluator.
//!
//! Every query from the end-to-end suite (plus aggregate-heavy shapes) runs
//! on all three paths; results must be identical after `canonicalize()` and
//! the deterministic work metric (`rows_scanned`) must match exactly — the
//! refactors change the row representation, not the access-path order. The
//! whole matrix additionally runs against both storage states of the graphs
//! (compacted slabs via `Dataset::insert_graph` and delta-resident via
//! `Dataset::insert_shared`), so slab scans, delta scans, and merged scans
//! all feed every evaluator. A proptest further checks that terms projected
//! out of id-native joins round-trip through the dataset's shared interner.

use std::sync::Arc;

use proptest::prelude::*;
use rdf_model::{Dataset, Graph, Literal, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EvalMode};

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

/// The movie graph of the end-to-end suite, extended with numeric literal
/// properties (integer ratings, double scores, and a mixed-typed `note`
/// column that must force the term-based aggregation fallback).
fn movie_graph() -> Graph {
    let mut g = Graph::new();
    let starring = iri("http://dbpedia.org/property/starring");
    let birth_place = iri("http://dbpedia.org/property/birthPlace");
    let award = iri("http://dbpedia.org/property/academyAward");
    let rating = iri("http://dbpedia.org/property/rating");
    let score = iri("http://dbpedia.org/property/score");
    let note = iri("http://dbpedia.org/property/note");
    let usa = iri("http://dbpedia.org/resource/United_States");
    let uk = iri("http://dbpedia.org/resource/United_Kingdom");

    let actors = [
        ("actor1", &usa, 3, true),
        ("actor2", &usa, 1, false),
        ("actor3", &uk, 2, false),
    ];
    for (name, place, movies, has_award) in actors {
        let a = iri(&format!("http://dbpedia.org/resource/{name}"));
        g.insert(&Triple::new(
            a.clone(),
            birth_place.clone(),
            (*place).clone(),
        ));
        for m in 0..movies {
            let movie = iri(&format!("http://dbpedia.org/resource/{name}_movie{m}"));
            g.insert(&Triple::new(movie.clone(), starring.clone(), a.clone()));
            // Integer rating (id-native numeric aggregation), double score
            // (mixed int/double comparisons), duplicated values across
            // movies so DISTINCT aggregation differs from plain.
            g.insert(&Triple::new(
                movie.clone(),
                rating.clone(),
                Term::integer(60 + (m % 2) * 30),
            ));
            g.insert(&Triple::new(
                movie.clone(),
                score.clone(),
                Term::Literal(Literal::double(7.5 + m as f64)),
            ));
            // Mixed types: integers for even movies, strings for odd ones.
            let note_val = if m % 2 == 0 {
                Term::integer(m)
            } else {
                Term::string(format!("note{m}"))
            };
            g.insert(&Triple::new(movie, note.clone(), note_val));
        }
        if has_award {
            g.insert(&Triple::new(
                a.clone(),
                award.clone(),
                iri("http://dbpedia.org/resource/Oscar"),
            ));
        }
        g.insert(&Triple::new(
            a.clone(),
            iri("http://www.w3.org/2000/01/rdf-schema#label"),
            Term::Literal(Literal::lang_string(format!("Actor {name}"), "en")),
        ));
    }
    g
}

fn yago_graph() -> Graph {
    let mut yago = Graph::new();
    yago.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actor1"),
        iri("http://yago/actedIn"),
        iri("http://yago/movieY"),
    ));
    yago.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actor3"),
        iri("http://yago/actedIn"),
        iri("http://yago/movieZ"),
    ));
    yago
}

/// Build the two-graph dataset in either storage state: `compacted` uses
/// `insert_graph` (slab-resident), otherwise `insert_shared` hands over the
/// graphs as-is so every triple stays in the mutable delta and all scans
/// take the slab+delta merge path.
fn dataset(compacted: bool) -> Arc<Dataset> {
    let mut ds = Dataset::new();
    if compacted {
        ds.insert_graph("http://dbpedia.org", movie_graph());
        ds.insert_graph("http://yago-knowledge.org", yago_graph());
    } else {
        let movies = movie_graph();
        assert!(movies.delta_len() > 0, "test graph should stay in delta");
        ds.insert_shared("http://dbpedia.org", Arc::new(movies));
        ds.insert_shared("http://yago-knowledge.org", Arc::new(yago_graph()));
    }
    Arc::new(ds)
}

const PREFIXES: &str = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                        PREFIX dbpr: <http://dbpedia.org/resource/>\n";

/// Every query shape exercised by the end-to-end suite, plus cross-graph,
/// expression-heavy, and aggregate-heavy variants.
fn queries() -> Vec<String> {
    let q = |body: &str| format!("{PREFIXES}{body}");
    vec![
        q("SELECT ?movie ?actor FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor }"),
        q("SELECT ?actor FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?c \
             FILTER ( ?c = dbpr:United_States ) }"),
        q("SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?n) \
           FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor } \
           GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 )"),
        q("SELECT ?actor ?aw FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c OPTIONAL { ?actor dbpp:academyAward ?aw } }"),
        q("SELECT ?x FROM <http://dbpedia.org> WHERE { \
             { ?x dbpp:academyAward ?a } UNION { ?x dbpp:birthPlace dbpr:United_Kingdom } }"),
        q("SELECT * FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor \
             { SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) WHERE { \
                 ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?actor_country \
                 FILTER ( ?actor_country = dbpr:United_States ) } \
               GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 ) } \
             OPTIONAL { ?actor dbpp:academyAward ?award } }"),
        q("SELECT ?movie FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?movie LIMIT 2 OFFSET 1"),
        q("SELECT DISTINCT ?actor FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor }"),
        q("SELECT ?actor ?c FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c FILTER regex(str(?c), \"United_States\") }"),
        "SELECT * FROM <http://dbpedia.org> WHERE { ?s ?p ?o . FILTER ( isIRI(?o) ) }".into(),
        "SELECT ?a ?m WHERE { \
           GRAPH <http://dbpedia.org> { ?a <http://dbpedia.org/property/birthPlace> ?c } \
           GRAPH <http://yago-knowledge.org> { ?a <http://yago/actedIn> ?m } }"
            .into(),
        q("SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor }"),
        "SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
         WHERE { ?x <http://nothing/here> ?y }"
            .into(),
        q("SELECT ?actor ?aw ?c FROM <http://dbpedia.org> WHERE { \
             { { ?actor dbpp:academyAward ?aw } OPTIONAL { ?actor dbpp:birthPlace ?c } } \
             UNION \
             { { ?actor dbpp:birthPlace ?c } OPTIONAL { ?actor dbpp:academyAward ?aw } } }"),
        // BIND + arithmetic: computed terms must intern into the overflow
        // pool and stay joinable/groupable downstream.
        q("SELECT ?actor ?n2 FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor } \
           GROUP BY ?actor HAVING ( COUNT(?movie) >= 1 ) \
           ORDER BY ?actor"),
        q(
            "SELECT ?movie (1 AS ?one) FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . BIND ( 1 AS ?one ) }",
        ),
        // ORDER BY + LIMIT exercises the TopK fusion on the id-native paths
        // (and plain sort+truncate on the reference path).
        q("SELECT ?movie ?actor FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?actor ?movie LIMIT 3"),
        q("SELECT ?movie FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?movie LIMIT 100"),
        // --- aggregate-heavy shapes -------------------------------------
        // Integer column: the columnar evaluator's id-native numeric path.
        q("SELECT ?actor (SUM(?r) AS ?total) (AVG(?r) AS ?avg) \
           (MIN(?r) AS ?lo) (MAX(?r) AS ?hi) (COUNT(?r) AS ?n) \
           FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?movie dbpp:rating ?r } \
           GROUP BY ?actor ORDER BY ?actor"),
        // DISTINCT over duplicated numeric values (SUM/AVG change, MIN/MAX
        // don't; dedup is on ids for the id-native paths).
        q(
            "SELECT ?actor (SUM(DISTINCT ?r) AS ?total) (AVG(DISTINCT ?r) AS ?avg) \
           FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?movie dbpp:rating ?r } \
           GROUP BY ?actor ORDER BY ?actor",
        ),
        // Mixed int/double column: still numeric, exercises f64 compare.
        q("SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (SUM(?v) AS ?s) \
           FROM <http://dbpedia.org> WHERE { \
             { ?movie dbpp:rating ?v } UNION { ?movie dbpp:score ?v } }"),
        // Mixed numeric/string column: must fall back to term aggregation
        // identically on every path.
        q(
            "SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) (COUNT(DISTINCT ?v) AS ?n) \
           FROM <http://dbpedia.org> WHERE { ?movie dbpp:note ?v }",
        ),
        // COUNT DISTINCT of a *computed* expression: inputs intern through
        // the TermPool and dedup on ids in the id-native paths.
        q("SELECT ?actor (COUNT(DISTINCT str(?movie)) AS ?n) \
           FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor } \
           GROUP BY ?actor ORDER BY ?actor"),
        // SUM over a computed expression with DISTINCT.
        q(
            "SELECT (SUM(DISTINCT ?r + 1) AS ?s) FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:rating ?r }",
        ),
        // Implicit single group over an empty input: aggregates over no rows.
        q(
            "SELECT (SUM(?r) AS ?s) (MIN(?r) AS ?lo) FROM <http://dbpedia.org> \
           WHERE { ?x <http://nothing/here> ?r }",
        ),
        // --- merge joins & FILTER pushdown ------------------------------
        // Star join of two (?x <p> <o>) groups: both sides scan POS with a
        // bound (p, o) prefix, so both arrive sorted on ?x and the
        // optimizer rewrites the hash join into a merge join.
        q("SELECT ?x FROM <http://dbpedia.org> WHERE { \
             { ?x dbpp:birthPlace dbpr:United_States } \
             { ?x dbpp:academyAward dbpr:Oscar } }"),
        // Conjunctive FILTER whose two single-variable conjuncts sink into
        // *different* patterns of one BGP (id-equality and numeric shapes).
        q("SELECT ?movie ?actor FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?c . \
             ?movie dbpp:rating ?r \
             FILTER ( ?c = dbpr:United_States && ?r >= 70 ) }"),
        // Mixed conjunction: one conjunct sinks, the two-variable one must
        // stay behind as a residual filter.
        q("SELECT ?movie ?r FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:rating ?r . ?movie dbpp:score ?s \
             FILTER ( ?r >= 60 && ?r < ?s ) }"),
        // Pushdown through the *left* side of an OPTIONAL.
        q("SELECT ?actor ?aw FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c OPTIONAL { ?actor dbpp:academyAward ?aw } \
             FILTER ( ?c != dbpr:United_Kingdom ) }"),
        // General (regex) single-variable conjunct: pushed with per-id
        // memoized evaluation.
        q("SELECT ?actor FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?c \
             FILTER ( regex(str(?c), \"United\") && isIRI(?c) ) }"),
        // --- order-aware OPTIONAL / DISTINCT / GROUP BY ------------------
        // OPTIONAL whose two sides both scan POS with a bound (p, o)
        // prefix: both sorted on ?actor, so the left join merges.
        q("SELECT ?actor ?l FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace dbpr:United_States \
             OPTIONAL { ?actor dbpp:academyAward dbpr:Oscar . \
                        ?actor <http://www.w3.org/2000/01/rdf-schema#label> ?l } }"),
        // DISTINCT whose projected columns are exactly the BGP's sort
        // sequence ([?actor, ?movie] off the POS starring scan): dedup by
        // run detection.
        q(
            "SELECT DISTINCT ?actor ?movie FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor }",
        ),
        // GROUP BY on the leading order variable: grouping by run
        // detection (keys are an order prefix).
        q(
            "SELECT ?actor (COUNT(?movie) AS ?n) (MIN(?movie) AS ?first) \
           FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor } \
           GROUP BY ?actor",
        ),
        // GROUP BY on a non-prefix variable (?movie is the *secondary*
        // order): must keep hashing, identically everywhere.
        q(
            "SELECT ?movie (COUNT(?actor) AS ?n) FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } GROUP BY ?movie",
        ),
        // DISTINCT over a projection that drops the secondary order column
        // (?actor): the surviving [?c] prefix still covers the schema, so
        // run detection works on the single remaining sorted column.
        q("SELECT DISTINCT ?c FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c . ?movie dbpp:starring ?actor }"),
    ]
}

/// The three evaluators, same optimizer setting.
fn engines(ds: Arc<Dataset>, optimize: bool) -> Vec<(&'static str, Engine)> {
    [
        ("columnar", EvalMode::Columnar),
        ("id-native-rows", EvalMode::IdNative),
        ("reference", EvalMode::TermReference),
    ]
    .into_iter()
    .map(|(name, eval_mode)| {
        (
            name,
            Engine::with_config(
                Arc::clone(&ds),
                EngineConfig {
                    optimize,
                    eval_mode,
                    ..EngineConfig::new()
                },
            ),
        )
    })
    .collect()
}

/// Run every query on every evaluator and demand identical bags and
/// identical `rows_scanned`.
fn assert_all_paths_agree(ds: Arc<Dataset>, optimize: bool, label: &str) {
    let engines = engines(ds, optimize);
    for q in queries() {
        let mut results = Vec::new();
        for (name, engine) in &engines {
            let (mut t, stats) = engine
                .execute_with_stats(&q)
                .unwrap_or_else(|e| panic!("{name} failed ({label}): {e}\n{q}"));
            t.canonicalize();
            results.push((name, t, stats.rows_scanned));
        }
        let (base_name, base_table, base_scanned) = &results[0];
        for (name, table, scanned) in &results[1..] {
            assert_eq!(
                base_table, table,
                "results diverge between {base_name} and {name} ({label}) for:\n{q}"
            );
            assert_eq!(
                base_scanned, scanned,
                "work metric diverges between {base_name} and {name} ({label}) for:\n{q}"
            );
        }
    }
}

#[test]
fn all_three_evaluators_agree_on_compacted_graphs() {
    assert_all_paths_agree(dataset(true), true, "compacted");
}

#[test]
fn all_three_evaluators_agree_on_uncompacted_graphs() {
    assert_all_paths_agree(dataset(false), true, "uncompacted");
}

#[test]
fn unoptimized_paths_also_agree() {
    assert_all_paths_agree(dataset(true), false, "compacted, no optimizer");
    assert_all_paths_agree(dataset(false), false, "uncompacted, no optimizer");
}

#[test]
fn compacted_and_uncompacted_storage_agree() {
    // Same data, different physical layout: results and scan counts must be
    // layout-independent.
    let compacted = Engine::new(dataset(true));
    let delta = Engine::new(dataset(false));
    for q in queries() {
        let (mut a, stats_a) = compacted.execute_with_stats(&q).unwrap();
        let (mut b, stats_b) = delta.execute_with_stats(&q).unwrap();
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b, "storage layouts diverge for:\n{q}");
        assert_eq!(stats_a.rows_scanned, stats_b.rows_scanned, "{q}");
    }
}

#[test]
fn pushdown_and_merge_rewrites_preserve_results() {
    // The two physical rewrites on vs off, across both storage layouts and
    // all three evaluators: identical bags everywhere (scan counts differ —
    // that is the point of the rewrites).
    for compacted in [true, false] {
        let ds = dataset(compacted);
        let plain = Engine::with_config(
            Arc::clone(&ds),
            EngineConfig {
                filter_pushdown: false,
                merge_joins: false,
                rank_order_by: false,
                ..EngineConfig::new()
            },
        );
        let rewriting = engines(Arc::clone(&ds), true);
        for q in queries() {
            let (mut base, _) = plain
                .execute_with_stats(&q)
                .unwrap_or_else(|e| panic!("plain engine failed: {e}\n{q}"));
            base.canonicalize();
            for (name, engine) in &rewriting {
                let (mut t, _) = engine
                    .execute_with_stats(&q)
                    .unwrap_or_else(|e| panic!("{name} failed: {e}\n{q}"));
                t.canonicalize();
                assert_eq!(
                    base, t,
                    "rewrites changed results on {name} (compacted={compacted}) for:\n{q}"
                );
            }
        }
    }
}

#[test]
fn merge_join_fires_and_pushdown_cuts_scans() {
    for compacted in [true, false] {
        let ds = dataset(compacted);
        let engine = Engine::new(Arc::clone(&ds));

        // The star join runs as a real merge join (counter, not just plan
        // shape) on slab-resident *and* delta-resident storage.
        let star = format!(
            "{PREFIXES}SELECT ?x FROM <http://dbpedia.org> WHERE {{ \
               {{ ?x dbpp:birthPlace dbpr:United_States }} \
               {{ ?x dbpp:academyAward dbpr:Oscar }} }}"
        );
        let (t, stats) = engine.execute_with_stats(&star).unwrap();
        assert_eq!(t.len(), 1, "only actor1 is US-born with an award");
        assert!(
            stats.merge_joins > 0,
            "merge join must fire (compacted={compacted}): {stats:?}"
        );

        // Pushdown strictly reduces the scan work: the birthPlace pattern
        // binds ?c first, so UK-born rows die before the starring scan.
        let filtered = format!(
            "{PREFIXES}SELECT ?actor FROM <http://dbpedia.org> WHERE {{ \
               ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?c \
               FILTER ( ?c = dbpr:United_States ) }}"
        );
        let no_pushdown = Engine::with_config(
            Arc::clone(&ds),
            EngineConfig {
                filter_pushdown: false,
                ..EngineConfig::new()
            },
        );
        let (mut a, s_on) = engine.execute_with_stats(&filtered).unwrap();
        let (mut b, s_off) = no_pushdown.execute_with_stats(&filtered).unwrap();
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b);
        assert!(
            s_on.rows_scanned < s_off.rows_scanned,
            "pushdown must scan strictly less: {} vs {}",
            s_on.rows_scanned,
            s_off.rows_scanned
        );
    }
}

#[test]
fn order_aware_rewrites_fire_and_agree_per_toggle() {
    // For each of the three new rewrites: the counter fires (>0) on a query
    // shaped for it, on slab-resident *and* delta-resident storage, and
    // toggling just that rewrite off yields identical results with *exactly*
    // the same `rows_scanned` (these rewrites change join/dedup/group
    // strategy, never scan work).
    let optional_q = format!(
        "{PREFIXES}SELECT ?actor ?l FROM <http://dbpedia.org> WHERE {{ \
           ?actor dbpp:birthPlace dbpr:United_States \
           OPTIONAL {{ ?actor dbpp:academyAward dbpr:Oscar . \
                       ?actor <http://www.w3.org/2000/01/rdf-schema#label> ?l }} }}"
    );
    let distinct_q = format!(
        "{PREFIXES}SELECT DISTINCT ?actor ?movie FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }}"
    );
    let group_q = format!(
        "{PREFIXES}SELECT ?actor (COUNT(?movie) AS ?n) FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }} GROUP BY ?actor"
    );
    type CounterFn = Box<dyn Fn(&sparql_engine::ExecStats) -> u64>;
    for compacted in [true, false] {
        let ds = dataset(compacted);
        let on = Engine::new(Arc::clone(&ds));

        let cases: [(&str, &str, CounterFn, EngineConfig); 3] = [
            (
                "merge_left_joins",
                optional_q.as_str(),
                Box::new(|s| s.merge_left_joins),
                EngineConfig {
                    merge_left_joins: false,
                    ..EngineConfig::new()
                },
            ),
            (
                "sorted_distinct",
                distinct_q.as_str(),
                Box::new(|s| s.sorted_distincts),
                EngineConfig {
                    sorted_distinct: false,
                    ..EngineConfig::new()
                },
            ),
            (
                "sorted_group_by",
                group_q.as_str(),
                Box::new(|s| s.sorted_groups),
                EngineConfig {
                    sorted_group_by: false,
                    ..EngineConfig::new()
                },
            ),
        ];
        for (name, query, counter, off_config) in cases {
            let (mut with, s_on) = on.execute_with_stats(query).unwrap();
            assert!(
                counter(&s_on) > 0,
                "{name} must fire (compacted={compacted}): {s_on:?}\n{query}"
            );
            let off = Engine::with_config(Arc::clone(&ds), off_config);
            let (mut without, s_off) = off.execute_with_stats(query).unwrap();
            assert_eq!(
                counter(&s_off),
                0,
                "{name} must not fire when toggled off (compacted={compacted})"
            );
            with.canonicalize();
            without.canonicalize();
            assert_eq!(
                with, without,
                "{name} changed results (compacted={compacted}) for:\n{query}"
            );
            assert_eq!(
                s_on.rows_scanned, s_off.rows_scanned,
                "{name} changed scan work (compacted={compacted}) for:\n{query}"
            );
        }
    }
}

#[test]
fn paged_execution_matches_full_execution() {
    let ds = dataset(true);
    let engines = engines(ds, true);
    let q = format!(
        "{PREFIXES} SELECT ?movie ?actor FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }} ORDER BY ?movie ?actor"
    );
    let full = engines[0].1.execute(&q).unwrap();
    for offset in 0..=full.len() + 1 {
        let (page, _) = engines[0].1.execute_page(&q, offset, 2).unwrap();
        for (name, engine) in &engines[1..] {
            let (other, _) = engine.execute_page(&q, offset, 2).unwrap();
            assert_eq!(page, other, "page at offset {offset} diverges on {name}");
        }
        let lo = offset.min(full.rows.len());
        let hi = (offset + 2).min(full.rows.len());
        assert_eq!(&page.rows[..], &full.rows[lo..hi]);
    }
}

// ---- property-based differential + interner round-trip -------------------

/// A pattern position: variable index (0..4) or constant.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Var(u8),
    Const(u8),
}

fn pos_strategy(consts: u8) -> impl Strategy<Value = Pos> {
    prop_oneof![
        (0u8..4).prop_map(Pos::Var),
        (0u8..consts).prop_map(Pos::Const),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = (Pos, Pos, Pos)> {
    (pos_strategy(6), pos_strategy(3), pos_strategy(6))
}

fn triple_strategy() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..6, 0u8..3, 0u8..6)
}

/// Two overlapping graphs: triples split between them, shared terms appear
/// in both, so joins routinely cross the graph boundary. Graph `a` is
/// compacted; graph `b` stays delta-resident.
fn build_two_graph_dataset(triples: &[(u8, u8, u8)]) -> Arc<Dataset> {
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for (i, (s, p, o)) in triples.iter().enumerate() {
        let t = Triple::new(
            Term::iri(format!("http://test/s{s}")),
            Term::iri(format!("http://test/p{p}")),
            Term::iri(format!("http://test/o{o}")),
        );
        if i % 2 == 0 {
            g1.insert(&t);
        } else {
            g2.insert(&t);
        }
    }
    let mut ds = Dataset::new();
    ds.insert_graph("http://test/a", g1);
    ds.insert_shared("http://test/b", Arc::new(g2));
    Arc::new(ds)
}

fn render_query(patterns: &[(Pos, Pos, Pos)]) -> String {
    render_query_with_filters(patterns, &[])
}

fn render_query_with_filters(patterns: &[(Pos, Pos, Pos)], conds: &[Cond]) -> String {
    // No FROM clause: the default graph is the union of both graphs, so BGP
    // extension hops between graphs and joins on global ids.
    let mut q = "SELECT * WHERE {\n".to_string();
    for (s, p, o) in patterns {
        let term = |pos: &Pos, kind: char| match pos {
            Pos::Var(v) => format!("?v{v}"),
            Pos::Const(c) => format!("<http://test/{kind}{c}>"),
        };
        q.push_str(&format!(
            "  {} {} {} .\n",
            term(s, 's'),
            term(p, 'p'),
            term(o, 'o')
        ));
    }
    if !conds.is_empty() {
        let rendered: Vec<String> = conds.iter().map(Cond::render).collect();
        q.push_str(&format!("  FILTER ( {} )\n", rendered.join(" && ")));
    }
    q.push('}');
    q
}

/// One conjunct of a random FILTER: the pushable single-variable equality
/// shape (sometimes over a variable the BGP does not bind, sometimes over a
/// constant that exists nowhere) or a two-variable comparison that must
/// stay above the BGP.
#[derive(Debug, Clone)]
enum Cond {
    /// `?v{var} =/!= <http://test/{kind}{c}>`.
    EqConst {
        var: u8,
        kind: char,
        c: u8,
        negate: bool,
    },
    /// `?v{a} = ?v{b}` — not single-variable, never pushed.
    VarVar(u8, u8),
}

impl Cond {
    fn render(&self) -> String {
        match self {
            Cond::EqConst {
                var,
                kind,
                c,
                negate,
            } => format!(
                "?v{var} {} <http://test/{kind}{c}>",
                if *negate { "!=" } else { "=" }
            ),
            Cond::VarVar(a, b) => format!("?v{a} = ?v{b}"),
        }
    }
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        (0u8..4, 0u8..3, 0u8..8, 0u8..2).prop_map(|(var, kind, c, neg)| Cond::EqConst {
            var,
            kind: ['s', 'p', 'o'][kind as usize],
            c,
            negate: neg == 1,
        }),
        (0u8..4, 0u8..4).prop_map(|(a, b)| Cond::VarVar(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_evaluators_match_on_random_multi_graph_queries(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
    ) {
        let ds = build_two_graph_dataset(&triples);
        let engines = engines(ds, true);
        let q = render_query(&patterns);
        let mut results = Vec::new();
        for (name, engine) in &engines {
            let (mut t, stats) = engine.execute_with_stats(&q).unwrap();
            t.canonicalize();
            results.push((name, t, stats.rows_scanned));
        }
        for pair in results.windows(2) {
            prop_assert_eq!(&pair[0].1, &pair[1].1, "{} vs {}: {}", pair[0].0, pair[1].0, q);
            prop_assert_eq!(pair[0].2, pair[1].2, "{} vs {}: {}", pair[0].0, pair[1].0, q);
        }
    }

    #[test]
    fn pushdown_agrees_with_no_pushdown_on_random_filtered_bgps(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        conds in proptest::collection::vec(cond_strategy(), 1..4),
    ) {
        let ds = build_two_graph_dataset(&triples);
        let q = render_query_with_filters(&patterns, &conds);
        let pushdown = Engine::new(Arc::clone(&ds));
        let plain = Engine::with_config(
            Arc::clone(&ds),
            EngineConfig {
                filter_pushdown: false,
                merge_joins: false,
                ..EngineConfig::new()
            },
        );
        let (mut a, _) = pushdown.execute_with_stats(&q).unwrap();
        let (mut b, _) = plain.execute_with_stats(&q).unwrap();
        a.canonicalize();
        b.canonicalize();
        prop_assert_eq!(&a, &b, "pushdown changed results: {}", q);
        // And the rewritten plan still holds exact cross-evaluator parity.
        let engines = engines(ds, true);
        let mut results = Vec::new();
        for (name, engine) in &engines {
            let (mut t, stats) = engine.execute_with_stats(&q).unwrap();
            t.canonicalize();
            results.push((name, t, stats.rows_scanned));
        }
        for pair in results.windows(2) {
            prop_assert_eq!(&pair[0].1, &pair[1].1, "{} vs {}: {}", pair[0].0, pair[1].0, q);
            prop_assert_eq!(pair[0].2, pair[1].2, "{} vs {}: {}", pair[0].0, pair[1].0, q);
        }
    }

    #[test]
    fn sorted_dedup_and_grouping_agree_with_hash_paths_on_random_bgps(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        group_var in 0u8..4,
    ) {
        // Mirrors `pushdown_agrees_with_no_pushdown_on_random_filtered_bgps`
        // for the order-aware DISTINCT/GROUP BY/LeftJoin rewrites: random
        // BGPs (graph `a` compacted, graph `b` delta-resident) wrapped in
        // DISTINCT and in GROUP BY, executed with the sorted fast paths on
        // vs off — identical bags — and with exact result + `rows_scanned`
        // parity across all three evaluators on the rewritten plans.
        let ds = build_two_graph_dataset(&triples);
        let body = render_query(&patterns);
        let pattern_block = body.strip_prefix("SELECT * ").unwrap();
        let distinct_q = format!("SELECT DISTINCT * {pattern_block}");
        let group_q = format!(
            "SELECT ?v{group_var} (COUNT(*) AS ?n) {pattern_block} GROUP BY ?v{group_var}"
        );
        let sorted = Engine::new(Arc::clone(&ds));
        let hashed = Engine::with_config(
            Arc::clone(&ds),
            EngineConfig {
                sorted_distinct: false,
                sorted_group_by: false,
                merge_left_joins: false,
                ..EngineConfig::new()
            },
        );
        for q in [&distinct_q, &group_q] {
            let (mut a, s_a) = sorted.execute_with_stats(q).unwrap();
            let (mut b, s_b) = hashed.execute_with_stats(q).unwrap();
            a.canonicalize();
            b.canonicalize();
            prop_assert_eq!(&a, &b, "sorted fast path changed results: {}", q);
            prop_assert_eq!(s_a.rows_scanned, s_b.rows_scanned, "scan work drifted: {}", q);
            // Cross-evaluator parity on the rewritten plan.
            let engines = engines(Arc::clone(&ds), true);
            let mut results = Vec::new();
            for (name, engine) in &engines {
                let (mut t, stats) = engine.execute_with_stats(q).unwrap();
                t.canonicalize();
                results.push((name, t, stats.rows_scanned));
            }
            for pair in results.windows(2) {
                prop_assert_eq!(&pair[0].1, &pair[1].1, "{} vs {}: {}", pair[0].0, pair[1].0, q);
                prop_assert_eq!(pair[0].2, pair[1].2, "{} vs {}: {}", pair[0].0, pair[1].0, q);
            }
        }
    }

    #[test]
    fn projection_round_trips_through_shared_interner(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..3),
    ) {
        let ds = build_two_graph_dataset(&triples);
        let engine = Engine::new(Arc::clone(&ds));
        let q = render_query(&patterns);
        let table = engine.execute(&q).unwrap();
        // Every bound term in an id-native result was materialized from a
        // global id; looking it up again must yield an id that resolves to
        // an equal term (terms of stored triples round-trip exactly).
        for row in &table.rows {
            for cell in row.iter().flatten() {
                let id = ds.lookup(cell);
                prop_assert!(id.is_some(), "term {cell} not in shared interner");
                prop_assert_eq!(ds.resolve(id.unwrap()), cell);
            }
        }
    }
}
