//! Differential tests: the id-native evaluator against the seed
//! term-materialized reference evaluator.
//!
//! Every query from the end-to-end suite runs on both paths; results must be
//! identical after `canonicalize()` and the deterministic work metric
//! (`rows_scanned`) must match exactly — the refactor changes the row
//! representation, not the access-path order. A proptest additionally checks
//! that terms projected out of id-native joins round-trip through the
//! dataset's shared interner.

use std::sync::Arc;

use proptest::prelude::*;
use rdf_model::{Dataset, Graph, Literal, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EvalMode};

fn iri(s: &str) -> Term {
    Term::iri(s.to_string())
}

/// The movie graph of the end-to-end suite.
fn movie_graph() -> Graph {
    let mut g = Graph::new();
    let starring = iri("http://dbpedia.org/property/starring");
    let birth_place = iri("http://dbpedia.org/property/birthPlace");
    let award = iri("http://dbpedia.org/property/academyAward");
    let usa = iri("http://dbpedia.org/resource/United_States");
    let uk = iri("http://dbpedia.org/resource/United_Kingdom");

    let actors = [
        ("actor1", &usa, 3, true),
        ("actor2", &usa, 1, false),
        ("actor3", &uk, 2, false),
    ];
    for (name, place, movies, has_award) in actors {
        let a = iri(&format!("http://dbpedia.org/resource/{name}"));
        g.insert(&Triple::new(a.clone(), birth_place.clone(), (*place).clone()));
        for m in 0..movies {
            let movie = iri(&format!("http://dbpedia.org/resource/{name}_movie{m}"));
            g.insert(&Triple::new(movie, starring.clone(), a.clone()));
        }
        if has_award {
            g.insert(&Triple::new(
                a.clone(),
                award.clone(),
                iri("http://dbpedia.org/resource/Oscar"),
            ));
        }
        g.insert(&Triple::new(
            a.clone(),
            iri("http://www.w3.org/2000/01/rdf-schema#label"),
            Term::Literal(Literal::lang_string(format!("Actor {name}"), "en")),
        ));
    }
    g
}

fn dataset() -> Arc<Dataset> {
    let mut ds = Dataset::new();
    ds.insert_graph("http://dbpedia.org", movie_graph());
    let mut yago = Graph::new();
    yago.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actor1"),
        iri("http://yago/actedIn"),
        iri("http://yago/movieY"),
    ));
    yago.insert(&Triple::new(
        iri("http://dbpedia.org/resource/actor3"),
        iri("http://yago/actedIn"),
        iri("http://yago/movieZ"),
    ));
    ds.insert_graph("http://yago-knowledge.org", yago);
    Arc::new(ds)
}

const PREFIXES: &str = "PREFIX dbpp: <http://dbpedia.org/property/>\n\
                        PREFIX dbpr: <http://dbpedia.org/resource/>\n";

/// Every query shape exercised by the end-to-end suite, plus cross-graph
/// and expression-heavy variants.
fn queries() -> Vec<String> {
    let q = |body: &str| format!("{PREFIXES}{body}");
    vec![
        q("SELECT ?movie ?actor FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor }"),
        q("SELECT ?actor FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?c \
             FILTER ( ?c = dbpr:United_States ) }"),
        q("SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?n) \
           FROM <http://dbpedia.org> WHERE { ?movie dbpp:starring ?actor } \
           GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 )"),
        q("SELECT ?actor ?aw FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c OPTIONAL { ?actor dbpp:academyAward ?aw } }"),
        q("SELECT ?x FROM <http://dbpedia.org> WHERE { \
             { ?x dbpp:academyAward ?a } UNION { ?x dbpp:birthPlace dbpr:United_Kingdom } }"),
        q("SELECT * FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor \
             { SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) WHERE { \
                 ?movie dbpp:starring ?actor . ?actor dbpp:birthPlace ?actor_country \
                 FILTER ( ?actor_country = dbpr:United_States ) } \
               GROUP BY ?actor HAVING ( COUNT(DISTINCT ?movie) >= 2 ) } \
             OPTIONAL { ?actor dbpp:academyAward ?award } }"),
        q("SELECT ?movie FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?movie LIMIT 2 OFFSET 1"),
        q("SELECT DISTINCT ?actor FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor }"),
        q("SELECT ?actor ?c FROM <http://dbpedia.org> WHERE { \
             ?actor dbpp:birthPlace ?c FILTER regex(str(?c), \"United_States\") }"),
        "SELECT * FROM <http://dbpedia.org> WHERE { ?s ?p ?o . FILTER ( isIRI(?o) ) }".into(),
        "SELECT ?a ?m WHERE { \
           GRAPH <http://dbpedia.org> { ?a <http://dbpedia.org/property/birthPlace> ?c } \
           GRAPH <http://yago-knowledge.org> { ?a <http://yago/actedIn> ?m } }"
            .into(),
        q("SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor }"),
        "SELECT (COUNT(*) AS ?n) FROM <http://dbpedia.org> \
         WHERE { ?x <http://nothing/here> ?y }"
            .into(),
        q("SELECT ?actor ?aw ?c FROM <http://dbpedia.org> WHERE { \
             { { ?actor dbpp:academyAward ?aw } OPTIONAL { ?actor dbpp:birthPlace ?c } } \
             UNION \
             { { ?actor dbpp:birthPlace ?c } OPTIONAL { ?actor dbpp:academyAward ?aw } } }"),
        // BIND + arithmetic: computed terms must intern into the overflow
        // pool and stay joinable/groupable downstream.
        q("SELECT ?actor ?n2 FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor } \
           GROUP BY ?actor HAVING ( COUNT(?movie) >= 1 ) \
           ORDER BY ?actor"),
        q("SELECT ?movie (1 AS ?one) FROM <http://dbpedia.org> WHERE { \
             ?movie dbpp:starring ?actor . BIND ( 1 AS ?one ) }"),
        // ORDER BY + LIMIT exercises the TopK fusion on the id-native path
        // (and plain sort+truncate on the reference path).
        q("SELECT ?movie ?actor FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?actor ?movie LIMIT 3"),
        q("SELECT ?movie FROM <http://dbpedia.org> \
           WHERE { ?movie dbpp:starring ?actor } ORDER BY ?movie LIMIT 100"),
    ]
}

fn engines(ds: Arc<Dataset>) -> (Engine, Engine) {
    let id_native = Engine::with_config(
        Arc::clone(&ds),
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::IdNative,
        },
    );
    let reference = Engine::with_config(
        ds,
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::TermReference,
        },
    );
    (id_native, reference)
}

#[test]
fn id_native_matches_reference_on_all_queries() {
    let (id_native, reference) = engines(dataset());
    for q in queries() {
        let (mut a, stats_a) = id_native
            .execute_with_stats(&q)
            .unwrap_or_else(|e| panic!("id-native failed: {e}\n{q}"));
        let (mut b, stats_b) = reference
            .execute_with_stats(&q)
            .unwrap_or_else(|e| panic!("reference failed: {e}\n{q}"));
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b, "results diverge for:\n{q}");
        assert_eq!(
            stats_a.rows_scanned, stats_b.rows_scanned,
            "work metric diverges for:\n{q}"
        );
    }
}

#[test]
fn unoptimized_paths_also_agree() {
    let ds = dataset();
    let id_native = Engine::with_config(
        Arc::clone(&ds),
        EngineConfig {
            optimize: false,
            eval_mode: EvalMode::IdNative,
        },
    );
    let reference = Engine::with_config(
        ds,
        EngineConfig {
            optimize: false,
            eval_mode: EvalMode::TermReference,
        },
    );
    for q in queries() {
        let (mut a, stats_a) = id_native.execute_with_stats(&q).unwrap();
        let (mut b, stats_b) = reference.execute_with_stats(&q).unwrap();
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a, b, "results diverge for:\n{q}");
        assert_eq!(stats_a.rows_scanned, stats_b.rows_scanned);
    }
}

#[test]
fn paged_execution_matches_full_execution() {
    let (id_native, reference) = engines(dataset());
    let q = format!(
        "{PREFIXES} SELECT ?movie ?actor FROM <http://dbpedia.org> \
         WHERE {{ ?movie dbpp:starring ?actor }} ORDER BY ?movie ?actor"
    );
    let full = id_native.execute(&q).unwrap();
    for offset in 0..=full.len() + 1 {
        let (page, _) = id_native.execute_page(&q, offset, 2).unwrap();
        let (ref_page, _) = reference.execute_page(&q, offset, 2).unwrap();
        assert_eq!(page, ref_page, "page at offset {offset}");
        let lo = offset.min(full.rows.len());
        let hi = (offset + 2).min(full.rows.len());
        assert_eq!(&page.rows[..], &full.rows[lo..hi]);
    }
}

// ---- property-based differential + interner round-trip -------------------

/// A pattern position: variable index (0..4) or constant.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Var(u8),
    Const(u8),
}

fn pos_strategy(consts: u8) -> impl Strategy<Value = Pos> {
    prop_oneof![
        (0u8..4).prop_map(Pos::Var),
        (0u8..consts).prop_map(Pos::Const),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = (Pos, Pos, Pos)> {
    (pos_strategy(6), pos_strategy(3), pos_strategy(6))
}

fn triple_strategy() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..6, 0u8..3, 0u8..6)
}

/// Two overlapping graphs: triples split between them, shared terms appear
/// in both, so joins routinely cross the graph boundary.
fn build_two_graph_dataset(triples: &[(u8, u8, u8)]) -> Arc<Dataset> {
    let mut g1 = Graph::new();
    let mut g2 = Graph::new();
    for (i, (s, p, o)) in triples.iter().enumerate() {
        let t = Triple::new(
            Term::iri(format!("http://test/s{s}")),
            Term::iri(format!("http://test/p{p}")),
            Term::iri(format!("http://test/o{o}")),
        );
        if i % 2 == 0 {
            g1.insert(&t);
        } else {
            g2.insert(&t);
        }
    }
    let mut ds = Dataset::new();
    ds.insert_graph("http://test/a", g1);
    ds.insert_graph("http://test/b", g2);
    Arc::new(ds)
}

fn render_query(patterns: &[(Pos, Pos, Pos)]) -> String {
    // No FROM clause: the default graph is the union of both graphs, so BGP
    // extension hops between graphs and joins on global ids.
    let mut q = "SELECT * WHERE {\n".to_string();
    for (s, p, o) in patterns {
        let term = |pos: &Pos, kind: char| match pos {
            Pos::Var(v) => format!("?v{v}"),
            Pos::Const(c) => format!("<http://test/{kind}{c}>"),
        };
        q.push_str(&format!(
            "  {} {} {} .\n",
            term(s, 's'),
            term(p, 'p'),
            term(o, 'o')
        ));
    }
    q.push('}');
    q
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn id_native_matches_reference_on_random_multi_graph_queries(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
    ) {
        let ds = build_two_graph_dataset(&triples);
        let (id_native, reference) = engines(ds);
        let q = render_query(&patterns);
        let (mut a, stats_a) = id_native.execute_with_stats(&q).unwrap();
        let (mut b, stats_b) = reference.execute_with_stats(&q).unwrap();
        a.canonicalize();
        b.canonicalize();
        prop_assert_eq!(&a, &b, "{}", q);
        prop_assert_eq!(stats_a.rows_scanned, stats_b.rows_scanned, "{}", q);
    }

    #[test]
    fn projection_round_trips_through_shared_interner(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..3),
    ) {
        let ds = build_two_graph_dataset(&triples);
        let engine = Engine::new(Arc::clone(&ds));
        let q = render_query(&patterns);
        let table = engine.execute(&q).unwrap();
        // Every bound term in an id-native result was materialized from a
        // global id; looking it up again must yield an id that resolves to
        // an equal term (terms of stored triples round-trip exactly).
        for row in &table.rows {
            for cell in row.iter().flatten() {
                let id = ds.lookup(cell);
                prop_assert!(id.is_some(), "term {cell} not in shared interner");
                prop_assert_eq!(ds.resolve(id.unwrap()), cell);
            }
        }
    }
}
