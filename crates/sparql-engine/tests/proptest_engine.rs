//! Property-based tests for the SPARQL engine.
//!
//! Strategy: generate small random graphs and random conjunctive queries,
//! then check engine invariants —
//! - plan independence: optimizer ON ≡ optimizer OFF (any join order is
//!   semantics-preserving);
//! - BGP results against a brute-force nested-loop oracle;
//! - DISTINCT is the support of the bag; LIMIT/OFFSET slice consistently.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rdf_model::{Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, SolutionTable};

const GRAPH_URI: &str = "http://test";

/// A triple as small integers (subjects 0..S, predicates 0..P, objects 0..O).
fn triple_strategy() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..6, 0u8..3, 0u8..6)
}

fn build_graph(triples: &[(u8, u8, u8)]) -> Arc<Dataset> {
    let mut g = Graph::new();
    for (s, p, o) in triples {
        g.insert(&Triple::new(
            Term::iri(format!("http://test/s{s}")),
            Term::iri(format!("http://test/p{p}")),
            Term::iri(format!("http://test/o{o}")),
        ));
    }
    let mut ds = Dataset::new();
    ds.insert_graph(GRAPH_URI, g);
    Arc::new(ds)
}

/// A pattern position: variable index (0..4) or constant.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Var(u8),
    Const(u8),
}

fn pos_strategy(consts: u8) -> impl Strategy<Value = Pos> {
    prop_oneof![
        (0u8..4).prop_map(Pos::Var),
        (0u8..consts).prop_map(Pos::Const),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = (Pos, Pos, Pos)> {
    (pos_strategy(6), pos_strategy(3), pos_strategy(6))
}

fn render_query(patterns: &[(Pos, Pos, Pos)]) -> String {
    let mut q = format!("SELECT * FROM <{GRAPH_URI}> WHERE {{\n");
    for (s, p, o) in patterns {
        let term = |pos: &Pos, kind: char| match pos {
            Pos::Var(v) => format!("?v{v}"),
            Pos::Const(c) => format!("<http://test/{kind}{c}>"),
        };
        q.push_str(&format!(
            "  {} {} {} .\n",
            term(s, 's'),
            term(p, 'p'),
            term(o, 'o')
        ));
    }
    q.push('}');
    q
}

/// Brute-force BGP evaluation: nested loops over the raw triple list with
/// a binding environment.
fn brute_force(triples: &[(u8, u8, u8)], patterns: &[(Pos, Pos, Pos)]) -> Vec<HashMap<u8, String>> {
    // Deduplicate the triple list (the graph is a set).
    let mut set: Vec<(u8, u8, u8)> = Vec::new();
    for t in triples {
        if !set.contains(t) {
            set.push(*t);
        }
    }
    let mut solutions: Vec<HashMap<u8, String>> = vec![HashMap::new()];
    for (ps, pp, po) in patterns {
        let mut next = Vec::new();
        for env in &solutions {
            for (s, p, o) in &set {
                let mut candidate = env.clone();
                let mut ok = true;
                for (pos, val, kind) in [(ps, s, 's'), (pp, p, 'p'), (po, o, 'o')] {
                    let term = format!("http://test/{kind}{val}");
                    match pos {
                        Pos::Const(c) => {
                            ok &= format!("http://test/{kind}{c}") == term;
                        }
                        Pos::Var(v) => match candidate.get(v) {
                            Some(bound) => ok &= *bound == term,
                            None => {
                                candidate.insert(*v, term);
                            }
                        },
                    }
                    if !ok {
                        break;
                    }
                }
                if ok {
                    next.push(candidate);
                }
            }
        }
        solutions = next;
    }
    solutions
}

fn canonical_rows(table: &SolutionTable) -> Vec<Vec<String>> {
    let mut order: Vec<usize> = (0..table.vars.len()).collect();
    order.sort_by(|&a, &b| table.vars[a].cmp(&table.vars[b]));
    let mut rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            order
                .iter()
                .map(|&i| r[i].as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bgp_matches_brute_force(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
    ) {
        let ds = build_graph(&triples);
        let engine = Engine::new(ds);
        let q = render_query(&patterns);
        let table = engine.execute(&q).unwrap();

        let expected = brute_force(&triples, &patterns);
        // Compare multisets: canonicalize both to sorted var-name order.
        let mut expected_rows: Vec<Vec<String>> = expected
            .iter()
            .map(|env| {
                let mut vars: Vec<&u8> = env.keys().collect();
                vars.sort();
                vars.iter().map(|v| format!("<{}>", env[v])).collect()
            })
            .collect();
        expected_rows.sort();
        // Engine var order: v0..v3 sorted lexically matches numeric here.
        let got = canonical_rows(&table);
        prop_assert_eq!(got.len(), expected_rows.len(), "row counts differ for {}", q);
        prop_assert_eq!(got, expected_rows, "{}", q);
    }

    #[test]
    fn optimizer_is_semantics_preserving(
        triples in proptest::collection::vec(triple_strategy(), 1..30),
        patterns in proptest::collection::vec(pattern_strategy(), 1..5),
    ) {
        let ds = build_graph(&triples);
        let q = render_query(&patterns);
        let on = Engine::new(Arc::clone(&ds)).execute(&q).unwrap();
        let off = Engine::with_config(ds, EngineConfig { optimize: false, ..EngineConfig::new() })
            .execute(&q)
            .unwrap();
        prop_assert_eq!(canonical_rows(&on), canonical_rows(&off), "{}", q);
    }

    #[test]
    fn distinct_is_support_of_bag(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..3),
    ) {
        let ds = build_graph(&triples);
        let engine = Engine::new(ds);
        let q = render_query(&patterns);
        let bag = engine.execute(&q).unwrap();
        let distinct_q = q.replacen("SELECT *", "SELECT DISTINCT *", 1);
        let set = engine.execute(&distinct_q).unwrap();
        let mut bag_rows = canonical_rows(&bag);
        bag_rows.dedup();
        prop_assert_eq!(bag_rows, canonical_rows(&set), "{}", q);
    }

    #[test]
    fn limit_offset_slice_consistently(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        limit in 1usize..10,
        offset in 0usize..10,
    ) {
        let ds = build_graph(&triples);
        let engine = Engine::new(ds);
        // ORDER BY makes the slice deterministic.
        let all = engine
            .execute(&format!(
                "SELECT * FROM <{GRAPH_URI}> WHERE {{ ?s ?p ?o }} ORDER BY ?s ?p ?o"
            ))
            .unwrap();
        let sliced = engine
            .execute(&format!(
                "SELECT * FROM <{GRAPH_URI}> WHERE {{ ?s ?p ?o }} ORDER BY ?s ?p ?o \
                 LIMIT {limit} OFFSET {offset}"
            ))
            .unwrap();
        let lo = offset.min(all.rows.len());
        let hi = (offset + limit).min(all.rows.len());
        prop_assert_eq!(&sliced.rows[..], &all.rows[lo..hi]);
    }

    #[test]
    fn count_star_equals_row_count(
        triples in proptest::collection::vec(triple_strategy(), 1..25),
        patterns in proptest::collection::vec(pattern_strategy(), 1..3),
    ) {
        let ds = build_graph(&triples);
        let engine = Engine::new(ds);
        let q = render_query(&patterns);
        let rows = engine.execute(&q).unwrap().len() as i64;
        let count_q = q.replacen("SELECT *", "SELECT (COUNT(*) AS ?n)", 1);
        let counted = engine.execute(&count_q).unwrap();
        prop_assert_eq!(counted.rows[0][0].clone(), Some(Term::integer(rows)));
    }
}
