//! Streaming-pipeline satellites: LIMIT early exit, bounded live memory,
//! budget semantics, and telemetry — plus a property test that random
//! BGP/OPTIONAL/GROUP BY shapes stream byte-identically at random batch
//! sizes.
//!
//! **The LIMIT carve-out.** The parity oracle everywhere else in this
//! repository is *exact* `rows_scanned` equality between evaluators and
//! between streaming and materializing execution. `LIMIT` is the one
//! deliberate exception: the streaming slice stops pulling its upstream
//! once the limit is satisfied, so upstream scans never run — streaming
//! legitimately scans *fewer* index entries. Results (rows, order, bytes)
//! remain identical; only the work count drops.

use std::sync::Arc;

use proptest::prelude::*;
use rdf_model::{Dataset, Graph, Term, Triple};
use sparql_engine::{Engine, EngineConfig, EngineError, ExecStats, QueryBudget, ResourceKind};

const GRAPH: &str = "http://g";

/// `n` triples `s{i} p o{i%7}`, either compacted into frozen slabs (the
/// steady-state layout) or left entirely in the mutable delta overlay
/// (the post-append layout) — scans and resume positions must behave
/// identically over both.
fn dataset(n: usize, delta_resident: bool) -> Arc<Dataset> {
    let mut g = if delta_resident {
        Graph::with_delta_threshold(usize::MAX)
    } else {
        Graph::new()
    };
    for i in 0..n {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/s{i}")),
            Term::iri("http://x/p"),
            Term::iri(format!("http://x/o{}", i % 7)),
        ));
    }
    if delta_resident {
        assert_eq!(g.delta_len(), n, "layout setup: delta must hold all rows");
    } else {
        g.compact();
        assert_eq!(g.delta_len(), 0, "layout setup: slabs must hold all rows");
    }
    let mut ds = Dataset::new();
    ds.insert_graph(GRAPH, g);
    Arc::new(ds)
}

fn engine(ds: &Arc<Dataset>, streaming: bool, budget: QueryBudget) -> Engine {
    Engine::with_config(
        Arc::clone(ds),
        EngineConfig {
            streaming,
            budget,
            ..EngineConfig::new()
        },
    )
}

/// Drain a cursor completely, returning term-materialized rows (in cursor
/// order) and the post-drain statistics.
fn drain(engine: &Engine, q: &str, batch_rows: usize) -> (Vec<Vec<Option<Term>>>, ExecStats) {
    let prepared = engine.prepare(q).unwrap();
    let mut cursor = engine.cursor(&prepared, batch_rows).unwrap();
    let mut rows = Vec::new();
    while let Some(batch) = cursor.next_batch().unwrap() {
        for row in 0..batch.len {
            rows.push(
                (0..batch.vars().len())
                    .map(|c| batch.get(c, row).map(|id| batch.resolve(id).clone()))
                    .collect(),
            );
        }
    }
    (rows, cursor.stats())
}

#[test]
fn limit_early_exit_reduces_scan_work_on_both_layouts() {
    const N: usize = 5000;
    let q = format!("SELECT ?s ?o FROM <{GRAPH}> WHERE {{ ?s <http://x/p> ?o }} LIMIT 10");
    for delta_resident in [false, true] {
        let ds = dataset(N, delta_resident);
        let streaming = engine(&ds, true, QueryBudget::unlimited());
        let materializing = engine(&ds, false, QueryBudget::unlimited());
        let (rows_s, stats_s) = drain(&streaming, &q, 16);
        let (rows_m, stats_m) = drain(&materializing, &q, 16);
        // Same ten rows, same order — the carve-out never changes results.
        assert_eq!(rows_s, rows_m, "delta_resident={delta_resident}");
        assert_eq!(rows_s.len(), 10);
        // The materializing path scans the whole index range; the
        // streaming slice stops pulling after one 16-row batch.
        assert!(
            stats_m.rows_scanned >= N as u64,
            "delta_resident={delta_resident}: materializing scanned {}",
            stats_m.rows_scanned
        );
        assert!(
            stats_s.rows_scanned < stats_m.rows_scanned,
            "delta_resident={delta_resident}: streaming must scan strictly less \
             ({} vs {})",
            stats_s.rows_scanned,
            stats_m.rows_scanned
        );
        assert!(
            stats_s.rows_scanned < 1000,
            "delta_resident={delta_resident}: early exit barely helped: {}",
            stats_s.rows_scanned
        );
    }
}

/// N triples × N triples with no shared variable: N² results.
const CROSS_JOIN: &str = "SELECT ?a ?b ?c ?d FROM <http://g> WHERE { \
     ?a <http://x/p> ?b . ?c <http://x/p> ?d }";

#[test]
fn streaming_completes_under_budget_that_trips_materialization() {
    // Scale 250 → 62 500 result rows: far over the 10 000-row intermediate
    // budget when materialized, comfortably under it per 200-row streaming
    // batch. (Batches stay below the 256-row parallel gate so the outcome
    // is identical at any RDFFRAMES_THREADS setting.)
    let ds = dataset(250, false);
    let budget = QueryBudget::unlimited().with_max_intermediate_rows(10_000);

    let materializing = engine(&ds, false, budget.clone());
    let err = materializing
        .execute(CROSS_JOIN)
        .expect_err("full materialization must trip the budget");
    assert!(matches!(
        err,
        EngineError::ResourceExhausted {
            resource: ResourceKind::IntermediateRows,
            ..
        }
    ));

    let streaming = engine(&ds, true, budget.clone());
    let (rows, stats) = drain(&streaming, CROSS_JOIN, 200);
    assert_eq!(rows.len(), 250 * 250, "streaming must produce every row");
    assert!(
        stats.peak_live_rows < 10_000,
        "live state exceeded the budget it claims to respect: {}",
        stats.peak_live_rows
    );

    // A pipeline breaker on top genuinely needs its whole input live, so
    // the *same* streaming engine must still trip — typed, with bounded
    // overshoot (one batch past the limit, never the whole N² result).
    let ordered = format!("{CROSS_JOIN} ORDER BY ?a");
    let prepared = streaming.prepare(&ordered).unwrap();
    let mut cursor = streaming.cursor(&prepared, 200).unwrap();
    let err = loop {
        match cursor.next_batch() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("breaker query must not complete under budget"),
            Err(e) => break e,
        }
    };
    match err {
        EngineError::ResourceExhausted {
            resource, observed, ..
        } => {
            assert_eq!(resource, ResourceKind::IntermediateRows);
            assert!(observed < 20_000, "overshoot {observed} is not bounded");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn peak_live_rows_tracks_batch_size_not_result_size() {
    const N: usize = 20_000;
    const BATCH: usize = 256;
    let ds = dataset(N, false);
    let q = format!("SELECT ?s ?o FROM <{GRAPH}> WHERE {{ ?s <http://x/p> ?o }}");

    let streaming = engine(&ds, true, QueryBudget::unlimited());
    let (rows, stats) = drain(&streaming, &q, BATCH);
    assert_eq!(rows.len(), N);
    assert!(
        stats.batches_emitted >= (N / BATCH) as u64,
        "expected ~{} batches, saw {}",
        N / BATCH,
        stats.batches_emitted
    );
    // O(batch), not O(result): scan state + staged output + the emitted
    // batch are each bounded by the batch size (with small constants).
    assert!(
        stats.peak_live_rows < 16 * BATCH as u64,
        "streaming peak {} rows is not O(batch_rows)",
        stats.peak_live_rows
    );

    let materializing = engine(&ds, false, QueryBudget::unlimited());
    let (_, stats_m) = drain(&materializing, &q, BATCH);
    assert!(
        stats_m.peak_live_rows >= N as u64,
        "materializing peak {} should cover the whole result",
        stats_m.peak_live_rows
    );
    assert_eq!(stats.rows_scanned, stats_m.rows_scanned, "no LIMIT: parity");
}

// ---------------------------------------------------------------------------
// Property test: random shapes × random batch sizes
// ---------------------------------------------------------------------------

/// A pattern position: variable index (0..4) or constant.
#[derive(Debug, Clone, Copy)]
enum Pos {
    Var(u8),
    Const(u8),
}

fn pos_strategy(consts: u8) -> impl Strategy<Value = Pos> {
    prop_oneof![
        (0u8..4).prop_map(Pos::Var),
        (0u8..consts).prop_map(Pos::Const),
    ]
}

fn pattern_strategy() -> impl Strategy<Value = (Pos, Pos, Pos)> {
    (pos_strategy(6), pos_strategy(3), pos_strategy(6))
}

fn term_text(pos: &Pos, kind: char) -> String {
    match pos {
        Pos::Var(v) => format!("?v{v}"),
        Pos::Const(c) => format!("<http://x/{kind}{c}>"),
    }
}

fn pattern_text(p: &(Pos, Pos, Pos)) -> String {
    format!(
        "{} {} {} .",
        term_text(&p.0, 's'),
        term_text(&p.1, 'p'),
        term_text(&p.2, 'o')
    )
}

fn build_graph(triples: &[(u8, u8, u8)], delta_resident: bool) -> Arc<Dataset> {
    let mut g = if delta_resident {
        Graph::with_delta_threshold(usize::MAX)
    } else {
        Graph::new()
    };
    for (s, p, o) in triples {
        g.insert(&Triple::new(
            Term::iri(format!("http://x/s{s}")),
            Term::iri(format!("http://x/p{p}")),
            Term::iri(format!("http://x/o{o}")),
        ));
    }
    if !delta_resident {
        g.compact();
    }
    let mut ds = Dataset::new();
    ds.insert_graph(GRAPH, g);
    Arc::new(ds)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random BGP (+ optional OPTIONAL tail, + optional GROUP BY head)
    /// over a random graph in a random storage layout: the streaming
    /// cursor must produce byte-identical rows in identical order with
    /// identical `rows_scanned` as the materializing cursor, at any batch
    /// size (none of these shapes has a LIMIT, so the carve-out is moot).
    #[test]
    fn random_shapes_stream_identically(
        triples in proptest::collection::vec((0u8..6, 0u8..3, 0u8..6), 1..40),
        patterns in proptest::collection::vec(pattern_strategy(), 1..4),
        tail in pattern_strategy(),
        with_optional in any::<bool>(),
        with_group in any::<bool>(),
        delta_resident in any::<bool>(),
        batch_rows in 1usize..70,
    ) {
        let ds = build_graph(&triples, delta_resident);
        let mut body = String::new();
        for p in &patterns {
            body.push_str(&pattern_text(p));
            body.push('\n');
        }
        if with_optional {
            body.push_str(&format!("OPTIONAL {{ {} }}\n", pattern_text(&tail)));
        }
        let q = if with_group {
            format!(
                "SELECT ?v0 (COUNT(*) AS ?n) FROM <{GRAPH}> WHERE {{\n{body}}} GROUP BY ?v0"
            )
        } else {
            format!("SELECT * FROM <{GRAPH}> WHERE {{\n{body}}}")
        };
        let streaming = engine(&ds, true, QueryBudget::unlimited());
        let materializing = engine(&ds, false, QueryBudget::unlimited());
        let (rows_s, stats_s) = drain(&streaming, &q, batch_rows);
        let (rows_m, stats_m) = drain(&materializing, &q, batch_rows);
        prop_assert_eq!(rows_s, rows_m, "rows diverge for {} @ batch {}", &q, batch_rows);
        prop_assert_eq!(
            stats_s.rows_scanned,
            stats_m.rows_scanned,
            "scan work diverges for {} @ batch {}",
            &q,
            batch_rows
        );
    }
}
