//! Pull-based streaming operator pipeline over the columnar evaluator.
//!
//! Each plan node becomes an [`Operator`] that produces its output batch
//! at a time by pulling batches from its inputs, holding only per-operator
//! staging state between calls. The contract with the materializing path
//! ([`Evaluator::eval_to_ids`]) is strict: the concatenation of all emitted
//! batches is byte-identical to the materialized table for every batch
//! size, `rows_scanned` totals match exactly (fully drained plans), and
//! order-aware rewrite counters (`merge_joins`, `sorted_distincts`,
//! `sorted_groups`) reach the same values because every sortedness claim is
//! re-verified incrementally (batch-local checks plus run boundaries).
//!
//! Streaming operators (BGP extension, join probe, filter/extend/project,
//! slice) keep live state bounded by the batch size; pipeline breakers
//! (sort, top-k, group, distinct, the join build side, union's nothing —
//! union streams too) materialize only their own input or their own
//! accumulation state and charge it against the budget as it grows, so
//! `max_intermediate_rows`/`max_memory_bytes` bound *peak live state* per
//! operator rather than whole-query materialization.
//!
//! The one deliberate divergence: [`SliceOp`] stops pulling upstream once
//! its limit is satisfied, so `LIMIT` queries legitimately scan *fewer*
//! index entries than the materializing path (the early-exit carve-out in
//! the differential oracle).

use rdf_model::ScanPos;

use super::*;

/// One streaming operator: a node of the pull-based pipeline.
///
/// `next_batch` returns `Some(batch)` with at least one row, or `None`
/// when exhausted (and keeps returning `None`). Operators never emit empty
/// batches; they loop internally until they have output or their input is
/// dry. Batches may be *smaller* than `batch_rows` (operators flush at
/// input-batch boundaries rather than buffer across them), never larger.
pub(crate) trait Operator<'e> {
    /// Output schema (stable across all batches).
    fn vars(&self) -> &[String];

    /// Produce the next non-empty output batch, or `None` when exhausted.
    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>>;

    /// Current live state of this operator *and its inputs*, as
    /// `(rows, bytes)` — staging buffers, accumulated build/breaker state,
    /// and undrained staged output. Feeds `ExecStats::peak_live_rows`.
    fn live_size(&self) -> (u64, u64);
}

/// A boxed operator (the pipeline is built as a tree of these).
pub(crate) type BoxOp<'e> = Box<dyn Operator<'e> + 'e>;

/// Build the operator pipeline for a plan.
///
/// Graph resolution happens eagerly here (same [`EngineError::UnknownGraph`]
/// timing as the materializing path, which resolves before any scan).
pub(crate) fn build<'e>(ev: &Evaluator<'e>, plan: &'e Plan) -> Result<BoxOp<'e>> {
    Ok(match plan {
        Plan::Unit => Box::new(UnitOp { done: false }),
        Plan::Bgp {
            patterns,
            graph,
            filters,
        } => Box::new(BgpOp::new(ev, patterns, graph, filters)?),
        Plan::Join(a, b) => Box::new(JoinOp::new(
            build(ev, a)?,
            build(ev, b)?,
            JoinKind::Inner,
            None,
        )),
        Plan::LeftJoin(a, b) => Box::new(JoinOp::new(
            build(ev, a)?,
            build(ev, b)?,
            JoinKind::Left,
            None,
        )),
        Plan::MergeJoin { left, right, key } => Box::new(JoinOp::new(
            build(ev, left)?,
            build(ev, right)?,
            JoinKind::Inner,
            Some(key),
        )),
        Plan::MergeLeftJoin { left, right, key } => Box::new(JoinOp::new(
            build(ev, left)?,
            build(ev, right)?,
            JoinKind::Left,
            Some(key),
        )),
        Plan::Union(a, b) => Box::new(UnionOp::new(build(ev, a)?, build(ev, b)?)),
        Plan::Filter(expr, p) => Box::new(FilterOp {
            input: build(ev, p)?,
            expr,
        }),
        Plan::Extend(var, expr, p) => Box::new(ExtendOp::new(build(ev, p)?, var, expr)),
        Plan::Group {
            keys,
            aggs,
            input,
            sorted_on,
        } => Box::new(GroupOp::new(build(ev, input)?, keys, aggs, sorted_on)),
        Plan::Project(vars, p) => Box::new(ProjectOp {
            input: build(ev, p)?,
            vars: vars.clone(),
        }),
        Plan::Distinct(p) => Box::new(DistinctOp::new(build(ev, p)?, None)),
        Plan::SortedDistinct { order, input } => {
            Box::new(DistinctOp::new(build(ev, input)?, Some(order)))
        }
        Plan::OrderBy(keys, p) => Box::new(SortOp::new(build(ev, p)?, keys, None)),
        Plan::TopK { keys, k, input } => Box::new(SortOp::new(build(ev, input)?, keys, Some(*k))),
        Plan::Slice {
            limit,
            offset,
            input,
        } => Box::new(SliceOp {
            input: build(ev, input)?,
            offset: *offset,
            limit: *limit,
            skipped: 0,
            emitted: 0,
            done: false,
        }),
    })
}

// ---------------------------------------------------------------------------
// Shared staging helpers
// ---------------------------------------------------------------------------

/// Staged output: a table an operator produced in one gulp (a flush, a
/// sorted result, a join's assembled batch) being handed out in windows.
struct Staged {
    table: IdTable,
    off: usize,
}

impl Staged {
    fn remaining(&self) -> usize {
        self.table.len().saturating_sub(self.off)
    }
}

/// Cut the next window of up to `n` rows off a staged table, clearing it
/// when exhausted. Whole-table staging hands the table out without a copy.
fn take_window(staged: &mut Option<Staged>, n: usize) -> Option<IdTable> {
    let s = staged.as_mut()?;
    let len = s.table.len();
    if s.off >= len {
        *staged = None;
        return None;
    }
    let out = if s.off == 0 && len <= n {
        let t = std::mem::take(&mut s.table);
        *staged = None;
        t
    } else {
        let end = (s.off + n).min(len);
        let idx: Vec<u32> = (s.off as u32..end as u32).collect();
        let w = s.table.gather_rows(&idx);
        s.off = end;
        if s.off >= len {
            *staged = None;
        }
        w
    };
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn staged_live(staged: &Option<Staged>) -> (u64, u64) {
    match staged {
        Some(s) => (s.remaining() as u64, s.table.estimated_bytes()),
        None => (0, 0),
    }
}

fn add2(a: (u64, u64), b: (u64, u64)) -> (u64, u64) {
    (a.0.saturating_add(b.0), a.1.saturating_add(b.1))
}

/// Incremental sortedness check for one batch against `cols`, carrying the
/// previous batch's last key row in `prev` so run boundaries that cross
/// batch edges are verified too. Returns `false` (claim refuted) on any
/// unbound key cell, in-batch inversion, or boundary inversion; on success
/// updates `prev` to this batch's last key row.
fn batch_sorted_on(t: &IdTable, cols: &[usize], prev: &mut Option<Vec<TermId>>) -> bool {
    if t.is_empty() {
        return true;
    }
    for &c in cols {
        if !t.col(c).all_present() {
            return false;
        }
    }
    if let Some(p) = prev.as_ref() {
        for (k, &c) in cols.iter().enumerate() {
            match p[k].cmp(&t.col(c).ids()[0]) {
                Ordering::Less => break,
                Ordering::Equal => continue,
                Ordering::Greater => return false,
            }
        }
    }
    for i in 1..t.len() {
        if lex_cmp_prev(t, cols, i) == Ordering::Greater {
            return false;
        }
    }
    *prev = Some(cols.iter().map(|&c| t.col(c).ids()[t.len() - 1]).collect());
    true
}

// ---------------------------------------------------------------------------
// Unit
// ---------------------------------------------------------------------------

/// [`Plan::Unit`]: the single empty solution, emitted once.
struct UnitOp {
    done: bool,
}

impl<'e> Operator<'e> for UnitOp {
    fn vars(&self) -> &[String] {
        &[]
    }

    fn next_batch(&mut self, _ev: &mut Evaluator<'e>, _n: usize) -> Result<Option<IdTable>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(Some(IdTable::unit()))
    }

    fn live_size(&self) -> (u64, u64) {
        (0, 0)
    }
}

// ---------------------------------------------------------------------------
// BGP
// ---------------------------------------------------------------------------

/// Suspension point of a level's scan: which `(graph, pattern)` entry, and
/// where inside its index range (`None` = restart the entry from its
/// beginning — only produced transiently by [`extend_level_seq`]).
struct Scan {
    entry: usize,
    at: Option<ScanPos>,
}

/// One BGP pattern's streaming extension state.
struct Level<'e> {
    /// `(graph index, resolved slots)` per graph where every constant
    /// resolved; a graph missing a constant contributes no matches.
    pats: Vec<(usize, [Slot; 3])>,
    /// Columns this pattern newly binds, one per value slot.
    free_cols: Vec<usize>,
    /// `(slot, position)` — which triple position binds each slot.
    primaries: Vec<(usize, usize)>,
    /// Repeated-new-variable positions needing per-match equality.
    dup_checks: Vec<(usize, usize)>,
    /// Pushed filters firing at this pattern, routed to value slots.
    checks: Vec<(usize, PushedEval<'e>)>,
    /// Input-side bound-ness (vars bound by earlier levels).
    bound: Vec<bool>,
    /// Current input batch from the previous level (full-width schema).
    input: IdTable,
    /// Next input row to extend.
    pos: usize,
    /// In-flight suspended scan within row `pos`.
    scan: Option<Scan>,
    /// Match gather indexes (global row numbers into `input`).
    src: Vec<u32>,
    /// New-binding value vectors, one per slot.
    vals: Vec<Vec<TermId>>,
    /// Assembled output being windowed out.
    staged: Option<Staged>,
    /// Previous level exhausted.
    upstream_done: bool,
}

/// Streaming BGP: a cascade of [`Level`]s, one per pattern, each extending
/// input batches depth-first. Both this and the materializing
/// breadth-first pass emit rows in lexicographic per-level match-index
/// order and fully drain every input row's scans, so the concatenated
/// output and the scan totals are identical at any batch size.
struct BgpOp<'e> {
    vars: Vec<String>,
    graphs: Vec<(Arc<Graph>, Arc<GraphIdMap>)>,
    levels: Vec<Level<'e>>,
    /// Empty-pattern BGP: the identity row, emitted once.
    identity_emitted: bool,
}

impl<'e> BgpOp<'e> {
    fn new(
        ev: &Evaluator<'e>,
        patterns: &'e [TriplePattern],
        graph: &GraphRef,
        filters: &'e [PushedFilter],
    ) -> Result<Self> {
        let graphs = ev.resolve_graphs(graph)?;

        // Variable schema in first-mention order (same as `eval_bgp`).
        let mut vars: Vec<String> = Vec::new();
        for p in patterns {
            for v in p.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let width = vars.len();
        let var_idx: HashMap<&str, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        let pool = ev.pool();
        let mut pattern_filters: Vec<Vec<(usize, PushedEval<'e>)>> =
            crate::algebra::attach_filters(patterns, filters, |v| var_idx[v])
                .into_iter()
                .map(|routed| {
                    routed
                        .into_iter()
                        .map(|(col, f)| (col, PushedEval::compile(&f.var, &f.expr, pool)))
                        .collect()
                })
                .collect();

        let mut bound = vec![false; width];
        let mut levels: Vec<Level<'e>> = Vec::with_capacity(patterns.len());
        for (pi, pattern) in patterns.iter().enumerate() {
            let pats: Vec<(usize, [Slot; 3])> = graphs
                .iter()
                .enumerate()
                .filter_map(|(gix, (_, map))| {
                    let s = Evaluator::pattern_slot(ev.dataset, &pattern.subject, map, &var_idx)?;
                    let p = Evaluator::pattern_slot(ev.dataset, &pattern.predicate, map, &var_idx)?;
                    let o = Evaluator::pattern_slot(ev.dataset, &pattern.object, map, &var_idx)?;
                    Some((gix, [s, p, o]))
                })
                .collect();

            let terms = [&pattern.subject, &pattern.predicate, &pattern.object];
            let mut free_cols: Vec<usize> = Vec::new();
            let mut primaries: Vec<(usize, usize)> = Vec::new();
            let mut dup_checks: Vec<(usize, usize)> = Vec::new();
            for (pos, term) in terms.iter().enumerate() {
                if let PatternTerm::Var(v) = term {
                    let col = var_idx[v.as_str()];
                    if bound[col] {
                        continue;
                    }
                    match free_cols.iter().position(|&c| c == col) {
                        Some(slot) => dup_checks.push((primaries[slot].1, pos)),
                        None => {
                            let slot = free_cols.len();
                            free_cols.push(col);
                            primaries.push((slot, pos));
                        }
                    }
                }
            }
            let checks: Vec<(usize, PushedEval<'e>)> = std::mem::take(&mut pattern_filters[pi])
                .into_iter()
                .map(|(col, pe)| {
                    let slot = free_cols
                        .iter()
                        .position(|c| *c == col)
                        .expect("filter var is newly bound at its attachment pattern");
                    (slot, pe)
                })
                .collect();

            let n_slots = free_cols.len();
            levels.push(Level {
                pats,
                free_cols,
                primaries,
                dup_checks,
                checks,
                bound: bound.clone(),
                input: IdTable::with_vars(vars.clone()),
                pos: 0,
                scan: None,
                src: Vec::new(),
                vals: (0..n_slots).map(|_| Vec::new()).collect(),
                staged: None,
                upstream_done: false,
            });
            for lvl in levels.last().unwrap().free_cols.clone() {
                bound[lvl] = true;
            }
        }
        drop(var_idx);

        // Seed the first level with the BGP extension identity: one
        // all-absent row (it has no upstream to pull it from).
        if let Some(first) = levels.first_mut() {
            first.input = IdTable::from_columns(
                vars.clone(),
                (0..width).map(|_| Column::absent(1)).collect(),
                1,
            );
            first.upstream_done = true;
        }

        Ok(BgpOp {
            vars,
            graphs,
            levels,
            identity_emitted: false,
        })
    }

    /// Extend pending input rows of level `k`, either through the parallel
    /// block fan-out (fresh block of rows, no partial state — delegates to
    /// [`Evaluator::extend_rows`], the same entry point the materializing
    /// path uses) or the sequential resumable loop.
    fn extend_level(&mut self, ev: &mut Evaluator<'e>, k: usize, target: usize) -> Result<()> {
        let par_block = {
            let lvl = &self.levels[k];
            ev.par.is_some()
                && lvl.scan.is_none()
                && lvl.src.is_empty()
                && lvl.input.len() - lvl.pos >= PAR_MIN_ROWS
        };
        let BgpOp { graphs, levels, .. } = self;
        let lvl = &mut levels[k];
        if par_block {
            let pats_view: Vec<(&Graph, &GraphIdMap, [Slot; 3])> = lvl
                .pats
                .iter()
                .map(|&(gix, slots)| {
                    let (g, m) = &graphs[gix];
                    (g.as_ref(), m.as_ref(), slots)
                })
                .collect();
            let n_slots = lvl.free_cols.len();
            let (src, vals, scanned) = ev.extend_rows(
                lvl.pos..lvl.input.len(),
                &pats_view,
                lvl.input.columns(),
                &lvl.bound,
                &lvl.primaries,
                &lvl.dup_checks,
                &mut lvl.checks,
                n_slots,
            )?;
            ev.rows_scanned += scanned;
            lvl.src = src;
            lvl.vals = vals;
            lvl.pos = lvl.input.len();
            return Ok(());
        }
        extend_level_seq(graphs, lvl, ev, target)
    }

    /// Assemble the level's match buffers into a staged output table
    /// (identical column assembly to `eval_bgp`'s per-pattern step).
    fn flush_level(&mut self, ev: &mut Evaluator<'e>, k: usize) -> Result<()> {
        let BgpOp { vars, levels, .. } = self;
        let lvl = &mut levels[k];
        let total = lvl.src.len();
        if total == 0 {
            return Ok(());
        }
        let mut cols: Vec<Column> = Vec::with_capacity(vars.len());
        for (col, cur_col) in lvl.input.columns().iter().enumerate() {
            if lvl.bound[col] {
                let mut out = Column::with_capacity(total);
                out.gather_from(cur_col, &lvl.src);
                cols.push(out);
            } else if let Some(slot) = lvl.free_cols.iter().position(|&c| c == col) {
                cols.push(Column::from_ids(std::mem::take(&mut lvl.vals[slot])));
            } else {
                cols.push(Column::absent(total));
            }
        }
        lvl.src.clear();
        let t = IdTable::from_columns(vars.clone(), cols, total);
        if ev.meter.is_active() {
            ev.meter
                .charge_intermediate(t.len() as u64, t.estimated_bytes())?;
        }
        lvl.staged = Some(Staged { table: t, off: 0 });
        Ok(())
    }

    /// Produce the next output window of level `k` (depth-first pull).
    fn produce(
        &mut self,
        ev: &mut Evaluator<'e>,
        k: usize,
        target: usize,
    ) -> Result<Option<IdTable>> {
        loop {
            if let Some(w) = take_window(&mut self.levels[k].staged, target) {
                return Ok(Some(w));
            }
            let pending = {
                let lvl = &self.levels[k];
                lvl.pos < lvl.input.len() || lvl.scan.is_some()
            };
            if pending {
                self.extend_level(ev, k, target)?;
                let consumed = {
                    let lvl = &self.levels[k];
                    lvl.pos >= lvl.input.len() && lvl.scan.is_none()
                };
                if consumed || self.levels[k].src.len() >= target {
                    self.flush_level(ev, k)?;
                }
                continue;
            }
            if self.levels[k].upstream_done {
                return Ok(None);
            }
            match self.produce(ev, k - 1, target)? {
                Some(t) => {
                    let lvl = &mut self.levels[k];
                    lvl.input = t;
                    lvl.pos = 0;
                }
                None => self.levels[k].upstream_done = true,
            }
        }
    }
}

impl<'e> Operator<'e> for BgpOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        let target = batch_rows.max(1);
        if self.levels.is_empty() {
            // No patterns: the identity (matches `eval_bgp` on `[]`).
            if self.identity_emitted {
                return Ok(None);
            }
            self.identity_emitted = true;
            return Ok(Some(IdTable::unit()));
        }
        let last = self.levels.len() - 1;
        self.produce(ev, last, target)
    }

    fn live_size(&self) -> (u64, u64) {
        let mut acc = (0u64, 0u64);
        for lvl in &self.levels {
            acc = add2(acc, (lvl.input.len() as u64, lvl.input.estimated_bytes()));
            let buf_rows = lvl.src.len() as u64;
            let buf_bytes = (lvl.src.len() as u64).saturating_mul(4).saturating_add(
                lvl.vals
                    .iter()
                    .fold(0u64, |a, v| a.saturating_add(v.len() as u64 * 4)),
            );
            acc = add2(acc, (buf_rows, buf_bytes));
            acc = add2(acc, staged_live(&lvl.staged));
        }
        acc
    }
}

/// Sequential resumable extension of one level: the same per-row scan body
/// as [`bgp_scan_rows`] (dup checks, pushed filters, gather/value buffers,
/// per-segment budget charges), plus suspension — the match visitor stops
/// the index scan once `target` matches are buffered and records a
/// [`ScanPos`] to resume from, so a batch never overshoots its size while
/// every visited index entry is still processed exactly once.
fn extend_level_seq<'e>(
    graphs: &[(Arc<Graph>, Arc<GraphIdMap>)],
    lvl: &mut Level<'e>,
    ev: &mut Evaluator<'e>,
    target: usize,
) -> Result<()> {
    let Level {
        pats,
        dup_checks,
        primaries,
        checks,
        src,
        vals,
        input,
        bound,
        pos,
        scan,
        ..
    } = lvl;
    let cur = input.columns();
    let len = input.len();
    let pool = &ev.pool;
    let caches = &mut ev.caches;
    let meter = &mut ev.meter;
    while *pos < len {
        let i = *pos;
        let (start_entry, mut resume_at) = match scan.take() {
            Some(s) => (s.entry, s.at),
            None => {
                if src.len() >= target {
                    return Ok(());
                }
                (0, None)
            }
        };
        for (entry, (gix, slots)) in pats.iter().enumerate().skip(start_entry) {
            let (g, map) = &graphs[*gix];
            let at = resume_at.take();
            // Refine slots against row `i` (a bound variable with no local
            // id in this graph can match nothing here).
            let mut refined = [None; 3];
            let mut ok = true;
            for (ppos, slot) in slots.iter().enumerate() {
                refined[ppos] = match slot {
                    Slot::Bound(local) => Some(*local),
                    Slot::Var(col) if bound[*col] => match map.to_local(cur[*col].ids()[i]) {
                        Some(local) => Some(local),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    Slot::Var(_) => None,
                };
            }
            if !ok {
                continue;
            }
            let row = i as u32;
            let map_ref = map.as_ref();
            let (visited, stopped) =
                g.for_each_match_from(refined[0], refined[1], refined[2], at, |ms, mp, mo| {
                    let m = [ms, mp, mo];
                    if dup_checks.iter().any(|&(a, b)| m[a] != m[b]) {
                        return src.len() < target;
                    }
                    let mut globals = [TermId(0); 3];
                    for &(slot, ppos) in primaries.iter() {
                        globals[slot] = map_ref.to_global(m[ppos]);
                    }
                    for (slot, pe) in checks.iter_mut() {
                        if !pe.test(globals[*slot], pool, caches) {
                            return src.len() < target;
                        }
                    }
                    src.push(row);
                    for &(slot, _) in primaries.iter() {
                        vals[slot].push(globals[slot]);
                    }
                    src.len() < target
                });
            ev.rows_scanned += visited;
            if meter.charge_scan(visited)? {
                let bytes = (src.len() as u64).saturating_mul(4).saturating_add(
                    vals.iter()
                        .fold(0u64, |a, v| a.saturating_add(v.len() as u64 * 4)),
                );
                meter.charge_intermediate(src.len() as u64, bytes)?;
            }
            if let Some(p) = stopped {
                *scan = Some(Scan { entry, at: Some(p) });
                return Ok(());
            }
        }
        *pos += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Persistent merge-probe state: the right-side run pointer (forward-only
/// across batches) and the previous batch's last left key (the boundary
/// half of the incremental sortedness check).
struct MergeState {
    r_key: usize,
    run: usize,
    prev: Option<TermId>,
}

/// Cached probe index over the materialized right side, keyed by the key
/// positions it was built for (rebuilt only when a left batch's bound-ness
/// changes the usable key set).
struct ProbeCache {
    key_positions: Vec<usize>,
    index: ProbeIndex,
}

enum ProbeIndex {
    One(HashMap<TermId, Vec<u32>>),
    Many(HashMap<Vec<TermId>, Vec<u32>>),
    Nested,
}

/// Streaming join (inner or left): the right input is materialized as the
/// build side (charged against the budget as it accumulates — joins are
/// half pipeline-breaker), the left streams through as the probe side.
///
/// Every probe strategy — merge run, single-/multi-key hash, cross-product
/// bucket, nested loop — emits the identical pair list (per left row in
/// input order, compatible right rows in ascending right-index order, an
/// unmatched marker for left joins), so the per-batch strategy choice and
/// any mid-stream merge→hash demotion are invisible downstream.
struct JoinOp<'e> {
    left: BoxOp<'e>,
    right: BoxOp<'e>,
    kind: JoinKind,
    merge_key: Option<&'e str>,
    vars: Vec<String>,
    right_table: Option<IdTable>,
    /// `Some` while the merge-join claim survives; demoted to `None` (hash
    /// probing) the moment a left batch refutes it.
    merge: Option<MergeState>,
    probe: Option<ProbeCache>,
    staged: Option<Staged>,
    done: bool,
}

impl<'e> JoinOp<'e> {
    fn new(left: BoxOp<'e>, right: BoxOp<'e>, kind: JoinKind, merge_key: Option<&'e str>) -> Self {
        let mut vars = left.vars().to_vec();
        for v in right.vars() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        JoinOp {
            left,
            right,
            kind,
            merge_key,
            vars,
            right_table: None,
            merge: None,
            probe: None,
            staged: None,
            done: false,
        }
    }

    /// Drain and materialize the build (right) side, then check the
    /// merge-join claim's right half (key column fully bound and
    /// non-decreasing — the same check `join_sorted` runs).
    fn build_side(&mut self, ev: &mut Evaluator<'e>, target: usize) -> Result<()> {
        let mut acc = IdTable::with_vars(self.right.vars().to_vec());
        while let Some(b) = self.right.next_batch(ev, target)? {
            acc.append(&b);
            ev.meter
                .charge_intermediate(acc.len() as u64, acc.estimated_bytes())?;
        }
        if let Some(key) = self.merge_key {
            let left_has = self.left.vars().iter().any(|v| v == key);
            if let (true, Some(rc)) = (left_has, acc.column_index(key)) {
                let col = acc.col(rc);
                if col.all_present() && col.ids().windows(2).all(|w| w[0] <= w[1]) {
                    self.merge = Some(MergeState {
                        r_key: rc,
                        run: 0,
                        prev: None,
                    });
                }
            }
        }
        self.right_table = Some(acc);
        Ok(())
    }
}

impl<'e> Operator<'e> for JoinOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        let target = batch_rows.max(1);
        loop {
            if let Some(w) = take_window(&mut self.staged, target) {
                return Ok(Some(w));
            }
            if self.done {
                return Ok(None);
            }
            if self.right_table.is_none() {
                self.build_side(ev, target)?;
            }
            let batch = match self.left.next_batch(ev, target)? {
                Some(b) => b,
                None => {
                    self.done = true;
                    // The rewrite counter records a merge join that held its
                    // claim over the *entire* left input — exactly when the
                    // materializing `join_sorted` would have taken it.
                    if self.merge_key.is_some() && self.merge.is_some() {
                        match self.kind {
                            JoinKind::Inner => ev.merge_joins += 1,
                            JoinKind::Left => ev.merge_left_joins += 1,
                        }
                    }
                    return Ok(None);
                }
            };
            let JoinOp {
                right_table,
                merge,
                probe,
                kind,
                merge_key,
                ..
            } = self;
            let right = right_table.as_ref().expect("build side materialized");
            let shape = JoinShape::new(&batch, right);

            // Left half of the merge claim, checked batch-incrementally.
            let mut merge_key_col = None;
            if merge.is_some() {
                let lc = batch
                    .column_index(merge_key.expect("merge state implies key"))
                    .expect("key column is static in the left schema");
                let col = batch.col(lc);
                let ok = col.all_present()
                    && col.ids().windows(2).all(|w| w[0] <= w[1])
                    && merge
                        .as_ref()
                        .and_then(|m| m.prev)
                        .is_none_or(|p| p <= col.ids()[0]);
                if ok {
                    merge_key_col = Some(lc);
                } else {
                    *merge = None;
                }
            }

            let pairs = match (&mut *merge, merge_key_col) {
                (Some(ms), Some(lc)) => {
                    let lk = batch.col(lc).ids();
                    let rk = right.col(ms.r_key).ids();
                    let mut pairs: Vec<(u32, u32)> = Vec::new();
                    for (li, &key) in lk.iter().enumerate() {
                        while ms.run < rk.len() && rk[ms.run] < key {
                            ms.run += 1;
                        }
                        let mut ri = ms.run;
                        let mut matched = false;
                        while ri < rk.len() && rk[ri] == key {
                            if shape.compatible(&batch, right, li, ri) {
                                pairs.push((li as u32, ri as u32));
                                matched = true;
                            }
                            ri += 1;
                        }
                        if !matched && *kind == JoinKind::Left {
                            pairs.push((li as u32, NO_MATCH));
                        }
                        ev.meter
                            .charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
                    }
                    ms.prev = lk.last().copied();
                    pairs
                }
                _ => hash_probe(&batch, right, &shape, probe, *kind, &mut ev.meter)?,
            };
            if pairs.is_empty() {
                continue;
            }
            let out = assemble_join(&batch, right, shape.out_vars, &pairs);
            self.staged = Some(Staged { table: out, off: 0 });
        }
    }

    fn live_size(&self) -> (u64, u64) {
        let mut acc = add2(self.left.live_size(), self.right.live_size());
        if let Some(r) = &self.right_table {
            acc = add2(acc, (r.len() as u64, r.estimated_bytes()));
        }
        add2(acc, staged_live(&self.staged))
    }
}

/// Hash-probe one left batch against the materialized right side,
/// replicating [`join`]'s key selection and pair order exactly. The key
/// positions are chosen per batch (bound-ness of the *batch*, not the whole
/// left input, is what's observable here); any choice yields the same pair
/// list because bucket membership plus the compatibility check equals the
/// full compatibility predicate whenever the key columns are all-present.
fn hash_probe(
    batch: &IdTable,
    right: &IdTable,
    shape: &JoinShape,
    probe: &mut Option<ProbeCache>,
    kind: JoinKind,
    meter: &mut BudgetMeter,
) -> Result<Vec<(u32, u32)>> {
    let key_positions: Vec<usize> = (0..shape.shared_len())
        .filter(|&k| {
            batch.col(shape.l_idx[k]).all_present() && right.col(shape.r_idx[k]).all_present()
        })
        .collect();
    let rebuild = match probe.as_ref() {
        Some(pc) => pc.key_positions != key_positions,
        None => true,
    };
    if rebuild {
        let index = if key_positions.len() == 1 {
            let rk = right.col(shape.r_idx[key_positions[0]]);
            let mut m: HashMap<TermId, Vec<u32>> = HashMap::with_capacity(right.len());
            for (ri, &id) in rk.ids().iter().enumerate() {
                m.entry(id).or_default().push(ri as u32);
            }
            ProbeIndex::One(m)
        } else if !key_positions.is_empty() || shape.shared_len() == 0 {
            let mut m: HashMap<Vec<TermId>, Vec<u32>> = HashMap::with_capacity(right.len());
            for ri in 0..right.len() {
                let key: Vec<TermId> = key_positions
                    .iter()
                    .map(|&k| right.col(shape.r_idx[k]).ids()[ri])
                    .collect();
                m.entry(key).or_default().push(ri as u32);
            }
            ProbeIndex::Many(m)
        } else {
            ProbeIndex::Nested
        };
        *probe = Some(ProbeCache {
            key_positions: key_positions.clone(),
            index,
        });
    }
    let index = &probe.as_ref().expect("probe index built").index;

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for li in 0..batch.len() {
        let mut matched = false;
        match index {
            ProbeIndex::One(m) => {
                let id = batch.col(shape.l_idx[key_positions[0]]).ids()[li];
                if let Some(candidates) = m.get(&id) {
                    for &ri in candidates {
                        if shape.compatible(batch, right, li, ri as usize) {
                            pairs.push((li as u32, ri));
                            matched = true;
                        }
                    }
                }
            }
            ProbeIndex::Many(m) => {
                let key: Vec<TermId> = key_positions
                    .iter()
                    .map(|&k| batch.col(shape.l_idx[k]).ids()[li])
                    .collect();
                if let Some(candidates) = m.get(&key) {
                    for &ri in candidates {
                        if shape.compatible(batch, right, li, ri as usize) {
                            pairs.push((li as u32, ri));
                            matched = true;
                        }
                    }
                }
            }
            ProbeIndex::Nested => {
                for ri in 0..right.len() {
                    if shape.compatible(batch, right, li, ri) {
                        pairs.push((li as u32, ri as u32));
                        matched = true;
                    }
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            pairs.push((li as u32, NO_MATCH));
        }
        meter.charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
    }
    Ok(pairs)
}

// ---------------------------------------------------------------------------
// Union
// ---------------------------------------------------------------------------

/// Bag union: stream the left input, then the right, aligning each batch
/// to the combined schema (same column-at-a-time alignment as [`union`]).
struct UnionOp<'e> {
    left: BoxOp<'e>,
    right: BoxOp<'e>,
    vars: Vec<String>,
    left_done: bool,
}

impl<'e> UnionOp<'e> {
    fn new(left: BoxOp<'e>, right: BoxOp<'e>) -> Self {
        let mut vars = left.vars().to_vec();
        for v in right.vars() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        UnionOp {
            left,
            right,
            vars,
            left_done: false,
        }
    }

    fn align(&self, t: IdTable) -> IdTable {
        if t.vars == self.vars {
            return t;
        }
        let rows = t.len();
        let mut cols = Vec::with_capacity(self.vars.len());
        for v in &self.vars {
            match t.column_index(v) {
                Some(c) => {
                    let mut col = Column::with_capacity(rows);
                    for i in 0..rows {
                        col.push(t.get(i, c));
                    }
                    cols.push(col);
                }
                None => cols.push(Column::absent(rows)),
            }
        }
        IdTable::from_columns(self.vars.clone(), cols, rows)
    }
}

impl<'e> Operator<'e> for UnionOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        if !self.left_done {
            if let Some(t) = self.left.next_batch(ev, batch_rows)? {
                return Ok(Some(self.align(t)));
            }
            self.left_done = true;
        }
        match self.right.next_batch(ev, batch_rows)? {
            Some(t) => Ok(Some(self.align(t))),
            None => Ok(None),
        }
    }

    fn live_size(&self) -> (u64, u64) {
        add2(self.left.live_size(), self.right.live_size())
    }
}

// ---------------------------------------------------------------------------
// Row-independent per-batch wrappers
// ---------------------------------------------------------------------------

/// [`Plan::Filter`]: per-batch application of the identical filter body.
struct FilterOp<'e> {
    input: BoxOp<'e>,
    expr: &'e Expr,
}

impl<'e> Operator<'e> for FilterOp<'e> {
    fn vars(&self) -> &[String] {
        self.input.vars()
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        loop {
            match self.input.next_batch(ev, batch_rows)? {
                Some(t) => {
                    let out = ev.filter_table(self.expr, t);
                    if !out.is_empty() {
                        return Ok(Some(out));
                    }
                }
                None => return Ok(None),
            }
        }
    }

    fn live_size(&self) -> (u64, u64) {
        self.input.live_size()
    }
}

/// [`Plan::Extend`]: rows are evaluated in input order (intern order is
/// row order), so per-batch application produces the identical column.
struct ExtendOp<'e> {
    input: BoxOp<'e>,
    var: &'e str,
    expr: &'e Expr,
    vars: Vec<String>,
}

impl<'e> ExtendOp<'e> {
    fn new(input: BoxOp<'e>, var: &'e str, expr: &'e Expr) -> Self {
        let mut vars = input.vars().to_vec();
        if !vars.iter().any(|v| v == var) {
            vars.push(var.to_string());
        }
        ExtendOp {
            input,
            var,
            expr,
            vars,
        }
    }
}

impl<'e> Operator<'e> for ExtendOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        match self.input.next_batch(ev, batch_rows)? {
            Some(t) => Ok(Some(ev.extend_table(self.var, self.expr, t))),
            None => Ok(None),
        }
    }

    fn live_size(&self) -> (u64, u64) {
        self.input.live_size()
    }
}

/// [`Plan::Project`]: pure column shuffling, applied per batch.
struct ProjectOp<'e> {
    input: BoxOp<'e>,
    vars: Vec<String>,
}

impl<'e> Operator<'e> for ProjectOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        match self.input.next_batch(ev, batch_rows)? {
            Some(t) => Ok(Some(project_table(&self.vars, t))),
            None => Ok(None),
        }
    }

    fn live_size(&self) -> (u64, u64) {
        self.input.live_size()
    }
}

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

/// A sortedness claim tracked incrementally across batches: refuted once,
/// refuted forever. Controls only the rewrite *counters* (`sorted_groups`,
/// `sorted_distincts`) — the streaming operators always use hash state, so
/// a refuted claim changes no output (hash and run-detection strategies
/// are pinned to emit identical first-occurrence bags).
struct SortedClaim {
    cols: Vec<usize>,
    prev: Option<Vec<TermId>>,
    valid: bool,
}

impl SortedClaim {
    fn check(&mut self, batch: &IdTable) {
        if self.valid && !batch_sorted_on(batch, &self.cols, &mut self.prev) {
            self.valid = false;
        }
    }
}

/// Per-aggregate streaming plan. Mirrors `eval_group`'s id-native plans
/// except `SUM/AVG/MIN/MAX` over a column, which needs a whole-input
/// numeric precheck the streaming operator cannot run — those degrade to
/// the general term path, whose results are pinned identical to the
/// numeric accumulator by `numeric_accum_matches_agg_state`.
enum StreamAggPlan<'e> {
    Star,
    CountCol { idx: usize, distinct: bool },
    SampleCol { idx: usize },
    General(&'e Expr),
}

enum StreamAccum {
    Terms(Box<AggState>),
    CountIds {
        seen: Option<HashSet<TermId>>,
        count: usize,
    },
    First(Option<TermId>),
}

enum StreamGroupIndex {
    One(HashMap<u64, usize>),
    Many(HashMap<Vec<u64>, usize>),
}

/// Streaming GROUP BY: a pipeline breaker whose live state is the group
/// table, not the input — rows accumulate into per-group accumulators
/// batch by batch and the output is emitted only at input exhaustion, in
/// first-occurrence order (the order every materializing strategy emits).
struct GroupOp<'e> {
    input: BoxOp<'e>,
    keys: &'e [String],
    aggs: &'e [AggSpec],
    vars: Vec<String>,
    key_indices: Vec<Option<usize>>,
    plans: Vec<StreamAggPlan<'e>>,
    index: StreamGroupIndex,
    groups: Vec<(Vec<Option<TermId>>, Vec<StreamAccum>)>,
    claim: Option<SortedClaim>,
    group_bytes: u64,
    staged: Option<Staged>,
    drained: bool,
}

impl<'e> GroupOp<'e> {
    fn new(
        input: BoxOp<'e>,
        keys: &'e [String],
        aggs: &'e [AggSpec],
        sorted_on: &'e [String],
    ) -> Self {
        let child = input.vars();
        let key_indices: Vec<Option<usize>> = keys
            .iter()
            .map(|k| child.iter().position(|v| v == k))
            .collect();
        let plans: Vec<StreamAggPlan<'e>> = aggs
            .iter()
            .map(|spec| match &spec.expr {
                None => StreamAggPlan::Star,
                Some(Expr::Var(v)) => match child.iter().position(|c| c == v) {
                    Some(idx) => match spec.op {
                        AggOp::Count => StreamAggPlan::CountCol {
                            idx,
                            distinct: spec.distinct,
                        },
                        AggOp::Sample => StreamAggPlan::SampleCol { idx },
                        AggOp::Sum | AggOp::Avg | AggOp::Min | AggOp::Max => {
                            StreamAggPlan::General(spec.expr.as_ref().unwrap())
                        }
                    },
                    None => StreamAggPlan::General(spec.expr.as_ref().unwrap()),
                },
                Some(e) => StreamAggPlan::General(e),
            })
            .collect();

        let mut index = if key_indices.len() == 1 {
            StreamGroupIndex::One(HashMap::new())
        } else {
            StreamGroupIndex::Many(HashMap::new())
        };
        let mut groups: Vec<(Vec<Option<TermId>>, Vec<StreamAccum>)> = Vec::new();
        if keys.is_empty() {
            // Implicit single group (aggregation without GROUP BY).
            if let StreamGroupIndex::Many(m) = &mut index {
                m.insert(Vec::new(), 0);
            }
            groups.push((Vec::new(), fresh_stream_accums(aggs, &plans)));
        }

        // Static half of the `sorted_on` claim (the batch-local half runs
        // per batch): annotation present, set-equal to the keys, and every
        // claimed column exists in the input schema.
        let eligible = !sorted_on.is_empty()
            && keys.iter().all(|k| sorted_on.contains(k))
            && sorted_on.iter().all(|v| keys.contains(v));
        let claim = if eligible {
            sorted_on
                .iter()
                .map(|v| child.iter().position(|c| c == v))
                .collect::<Option<Vec<_>>>()
                .map(|cols| SortedClaim {
                    cols,
                    prev: None,
                    valid: true,
                })
        } else {
            None
        };

        let mut vars: Vec<String> = keys.to_vec();
        vars.extend(aggs.iter().map(|a| a.output.clone()));
        let group_bytes =
            (keys.len() as u64).saturating_mul(16) + (aggs.len() as u64).saturating_mul(64);
        GroupOp {
            input,
            keys,
            aggs,
            vars,
            key_indices,
            plans,
            index,
            groups,
            claim,
            group_bytes,
            staged: None,
            drained: false,
        }
    }

    /// Fold one input batch into the group table (the identical per-row
    /// body as `eval_group`'s sequential loop, hash strategies only).
    fn accumulate(&mut self, ev: &mut Evaluator<'e>, batch: &IdTable) -> Result<()> {
        if let Some(claim) = &mut self.claim {
            claim.check(batch);
        }
        let GroupOp {
            aggs,
            key_indices,
            plans,
            index,
            groups,
            group_bytes,
            ..
        } = self;
        for i in 0..batch.len() {
            ev.meter.charge_intermediate(
                groups.len() as u64,
                (groups.len() as u64).saturating_mul(*group_bytes),
            )?;
            let existing: Option<usize> = match index {
                StreamGroupIndex::One(m) => {
                    let enc = match key_indices[0] {
                        Some(c) => batch.col(c).hash_code(i),
                        None => 0,
                    };
                    let slot = m.entry(enc).or_insert(usize::MAX);
                    if *slot == usize::MAX {
                        *slot = groups.len();
                        None
                    } else {
                        Some(*slot)
                    }
                }
                StreamGroupIndex::Many(m) => {
                    let key_enc: Vec<u64> = key_indices
                        .iter()
                        .map(|ki| match ki {
                            Some(c) => batch.col(*c).hash_code(i),
                            None => 0,
                        })
                        .collect();
                    let slot = m.entry(key_enc).or_insert(usize::MAX);
                    if *slot == usize::MAX {
                        *slot = groups.len();
                        None
                    } else {
                        Some(*slot)
                    }
                }
            };
            let gi = match existing {
                Some(gi) => gi,
                None => {
                    let gi = groups.len();
                    let key: Vec<Option<TermId>> = key_indices
                        .iter()
                        .map(|ki| ki.and_then(|c| batch.get(i, c)))
                        .collect();
                    groups.push((key, fresh_stream_accums(aggs, plans)));
                    gi
                }
            };
            for (accum, plan) in groups[gi].1.iter_mut().zip(plans.iter()) {
                match (accum, plan) {
                    (StreamAccum::Terms(state), StreamAggPlan::Star) => state.push_star(),
                    (StreamAccum::Terms(state), StreamAggPlan::General(e)) => {
                        let value = {
                            let buf = &mut ev.scratch;
                            batch.read_row(i, buf);
                            let ctx = IdRowCtx {
                                vars: &batch.vars,
                                row: buf,
                                pool: &ev.pool,
                            };
                            eval_expr(e, ctx, &mut ev.caches)
                        };
                        state.push_pooled(value, &mut ev.pool);
                    }
                    (
                        StreamAccum::CountIds { seen, count },
                        StreamAggPlan::CountCol { idx, .. },
                    ) => {
                        if let Some(id) = batch.get(i, *idx) {
                            match seen {
                                Some(set) => {
                                    if set.insert(id) {
                                        *count += 1;
                                    }
                                }
                                None => *count += 1,
                            }
                        }
                    }
                    (StreamAccum::First(first), StreamAggPlan::SampleCol { idx }) => {
                        if first.is_none() {
                            *first = batch.get(i, *idx);
                        }
                    }
                    _ => unreachable!("accumulator/plan shape mismatch"),
                }
            }
        }
        Ok(())
    }

    /// Emit the group table (first-occurrence order, identical interning
    /// sequence to `eval_group`'s finish loop).
    fn finish(&mut self, ev: &mut Evaluator<'e>) -> Result<()> {
        if let Some(claim) = &self.claim {
            if claim.valid {
                ev.sorted_groups += 1;
            }
        }
        let groups = std::mem::take(&mut self.groups);
        let n_groups = groups.len();
        let mut key_cols: Vec<Column> = (0..self.keys.len())
            .map(|_| Column::with_capacity(n_groups))
            .collect();
        let mut agg_cols: Vec<Column> = (0..self.aggs.len())
            .map(|_| Column::with_capacity(n_groups))
            .collect();
        for (key, accums) in groups {
            for (col, v) in key_cols.iter_mut().zip(key) {
                col.push(v);
            }
            for (col, accum) in agg_cols.iter_mut().zip(accums) {
                let value: Option<TermId> = match accum {
                    StreamAccum::Terms(state) => state.finish().map(|t| ev.pool.intern(t)),
                    StreamAccum::CountIds { count, .. } => {
                        Some(ev.pool.intern(Term::integer(count as i64)))
                    }
                    StreamAccum::First(id) => id,
                };
                col.push(value);
            }
        }
        key_cols.extend(agg_cols);
        let t = IdTable::from_columns(self.vars.clone(), key_cols, n_groups);
        self.staged = Some(Staged { table: t, off: 0 });
        Ok(())
    }
}

fn fresh_stream_accums(aggs: &[AggSpec], plans: &[StreamAggPlan]) -> Vec<StreamAccum> {
    aggs.iter()
        .zip(plans)
        .map(|(a, plan)| match plan {
            StreamAggPlan::CountCol { distinct, .. } => StreamAccum::CountIds {
                seen: distinct.then(HashSet::new),
                count: 0,
            },
            StreamAggPlan::SampleCol { .. } => StreamAccum::First(None),
            _ => StreamAccum::Terms(Box::new(AggState::new_id_distinct(a.op, a.distinct))),
        })
        .collect()
}

impl<'e> Operator<'e> for GroupOp<'e> {
    fn vars(&self) -> &[String] {
        &self.vars
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        let target = batch_rows.max(1);
        if !self.drained {
            while let Some(b) = self.input.next_batch(ev, target)? {
                self.accumulate(ev, &b)?;
            }
            self.drained = true;
            self.finish(ev)?;
        }
        Ok(take_window(&mut self.staged, target))
    }

    fn live_size(&self) -> (u64, u64) {
        let own = (
            self.groups.len() as u64,
            (self.groups.len() as u64).saturating_mul(self.group_bytes),
        );
        add2(add2(self.input.live_size(), own), staged_live(&self.staged))
    }
}

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

/// Streaming DISTINCT (plain and order-claimed): a persistent seen-set
/// keeps first occurrences across batches — the exact keep-first bag both
/// `hash_distinct` and the sorted run-detection path produce. The order
/// claim (when present) is verified incrementally purely to drive the
/// `sorted_distincts` counter.
struct DistinctOp<'e> {
    input: BoxOp<'e>,
    seen_one: Option<HashSet<u64>>,
    seen_many: Option<HashSet<Vec<u64>>>,
    claim: Option<SortedClaim>,
    done: bool,
}

impl<'e> DistinctOp<'e> {
    fn new(input: BoxOp<'e>, order: Option<&'e [String]>) -> Self {
        let child = input.vars();
        let width = child.len();
        // Static half of the order claim: every order var is a column and
        // every column is covered by the order (else order-equal rows could
        // differ and the claim is ineligible, same as `sorted_distinct_mask`).
        let claim = order.and_then(|order| {
            let cols: Option<Vec<usize>> = order
                .iter()
                .map(|v| child.iter().position(|c| c == v))
                .collect();
            let covered = child.iter().all(|v| order.contains(v));
            match (cols, covered) {
                (Some(cols), true) => Some(SortedClaim {
                    cols,
                    prev: None,
                    valid: true,
                }),
                _ => None,
            }
        });
        DistinctOp {
            input,
            seen_one: (width == 1).then(HashSet::new),
            seen_many: (width != 1).then(HashSet::new),
            claim,
            done: false,
        }
    }
}

impl<'e> Operator<'e> for DistinctOp<'e> {
    fn vars(&self) -> &[String] {
        self.input.vars()
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        loop {
            if self.done {
                return Ok(None);
            }
            match self.input.next_batch(ev, batch_rows)? {
                None => {
                    self.done = true;
                    if let Some(claim) = &self.claim {
                        if claim.valid {
                            ev.sorted_distincts += 1;
                        }
                    }
                    return Ok(None);
                }
                Some(mut t) => {
                    if let Some(claim) = &mut self.claim {
                        claim.check(&t);
                    }
                    let width = t.vars.len();
                    let mut keep = Vec::with_capacity(t.len());
                    let mut live = 0u64;
                    if let Some(seen) = &mut self.seen_one {
                        let col = t.col(0);
                        for i in 0..t.len() {
                            keep.push(seen.insert(col.hash_code(i)));
                        }
                        live = seen.len() as u64;
                    } else if let Some(seen) = &mut self.seen_many {
                        for i in 0..t.len() {
                            let key: Vec<u64> = (0..width).map(|c| t.col(c).hash_code(i)).collect();
                            keep.push(seen.insert(key));
                        }
                        live = seen.len() as u64;
                    }
                    // The seen-set is this breaker's accumulating state.
                    ev.meter
                        .charge_intermediate(live, live.saturating_mul(8 * width.max(1) as u64))?;
                    t.filter_mask(&keep);
                    if !t.is_empty() {
                        return Ok(Some(t));
                    }
                }
            }
        }
    }

    fn live_size(&self) -> (u64, u64) {
        let rows = self
            .seen_one
            .as_ref()
            .map(|s| s.len() as u64)
            .or_else(|| self.seen_many.as_ref().map(|s| s.len() as u64))
            .unwrap_or(0);
        add2(self.input.live_size(), (rows, rows.saturating_mul(16)))
    }
}

// ---------------------------------------------------------------------------
// Sort / TopK (pipeline breakers)
// ---------------------------------------------------------------------------

/// ORDER BY (full sort) and TopK (bounded sort): materialize only their
/// own input, charging the accumulation against the budget as it grows.
/// TopK additionally compacts periodically — `top_k` of a prefix keeps
/// exactly the rows that can still reach the final top `k` and preserves
/// arrival order among key-equal survivors, so compaction is invisible in
/// the final result.
struct SortOp<'e> {
    input: BoxOp<'e>,
    keys: &'e [OrderKey],
    k: Option<usize>,
    acc: IdTable,
    staged: Option<Staged>,
    drained: bool,
}

impl<'e> SortOp<'e> {
    fn new(input: BoxOp<'e>, keys: &'e [OrderKey], k: Option<usize>) -> Self {
        let acc = IdTable::with_vars(input.vars().to_vec());
        SortOp {
            input,
            keys,
            k,
            acc,
            staged: None,
            drained: false,
        }
    }

    /// Compaction threshold: enough headroom that compaction is rare
    /// (amortized O(1) per row) while the accumulator stays O(k + const).
    fn compact_at(k: usize) -> usize {
        k.saturating_add(k.max(8192))
    }
}

impl<'e> Operator<'e> for SortOp<'e> {
    fn vars(&self) -> &[String] {
        self.input.vars()
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        let target = batch_rows.max(1);
        if !self.drained {
            while let Some(b) = self.input.next_batch(ev, target)? {
                self.acc.append(&b);
                ev.meter
                    .charge_intermediate(self.acc.len() as u64, self.acc.estimated_bytes())?;
                if let Some(k) = self.k {
                    if self.acc.len() >= Self::compact_at(k) {
                        ev.top_k(&mut self.acc, self.keys, k);
                    }
                }
            }
            self.drained = true;
            let mut acc = std::mem::take(&mut self.acc);
            match self.k {
                Some(k) => ev.top_k(&mut acc, self.keys, k),
                None => ev.sort_rows(&mut acc, self.keys),
            }
            self.staged = Some(Staged { table: acc, off: 0 });
        }
        Ok(take_window(&mut self.staged, target))
    }

    fn live_size(&self) -> (u64, u64) {
        let own = (self.acc.len() as u64, self.acc.estimated_bytes());
        add2(add2(self.input.live_size(), own), staged_live(&self.staged))
    }
}

// ---------------------------------------------------------------------------
// Slice (early exit)
// ---------------------------------------------------------------------------

/// OFFSET/LIMIT with genuine early termination: once `limit` rows have
/// been emitted the operator stops pulling upstream entirely, so upstream
/// scans never run — the one place streaming legitimately does *less* scan
/// work than the materializing path (the documented parity carve-out).
struct SliceOp<'e> {
    input: BoxOp<'e>,
    offset: usize,
    limit: Option<usize>,
    skipped: usize,
    emitted: usize,
    done: bool,
}

impl<'e> Operator<'e> for SliceOp<'e> {
    fn vars(&self) -> &[String] {
        self.input.vars()
    }

    fn next_batch(&mut self, ev: &mut Evaluator<'e>, batch_rows: usize) -> Result<Option<IdTable>> {
        loop {
            if self.done {
                return Ok(None);
            }
            if let Some(lim) = self.limit {
                if self.emitted >= lim {
                    self.done = true;
                    return Ok(None);
                }
            }
            match self.input.next_batch(ev, batch_rows)? {
                None => {
                    self.done = true;
                    return Ok(None);
                }
                Some(mut t) => {
                    if self.skipped < self.offset {
                        let skip = (self.offset - self.skipped).min(t.len());
                        self.skipped += skip;
                        if skip == t.len() {
                            continue;
                        }
                        t.slice(skip, None);
                    }
                    if let Some(lim) = self.limit {
                        let rem = lim - self.emitted;
                        if t.len() > rem {
                            t.slice(0, Some(rem));
                        }
                    }
                    if t.is_empty() {
                        continue;
                    }
                    self.emitted += t.len();
                    return Ok(Some(t));
                }
            }
        }
    }

    fn live_size(&self) -> (u64, u64) {
        self.input.live_size()
    }
}
