//! Query result representations.
//!
//! Two row layouts exist on purpose:
//!
//! - [`IdTable`] is the evaluator's *internal* representation: every cell is
//!   an `Option<TermId>` (8 bytes) in the dataset's global id space, so
//!   joins, DISTINCT, and grouping hash integers. It never leaves the
//!   engine.
//! - [`SolutionTable`] is the *public* boundary type: cells are owned
//!   [`Term`] values, materialized exactly once when a query finishes (or a
//!   page of it is shipped).

use rdf_model::{Term, TermId};

/// Keep rows `[offset, offset+limit)` in place (`None` limit = to the end),
/// clamping both bounds to the table. Shared by `LIMIT`/`OFFSET` evaluation
/// and the engine's paging boundary.
pub fn slice_rows<T>(rows: &mut Vec<T>, offset: usize, limit: Option<usize>) {
    let start = offset.min(rows.len());
    let end = match limit {
        Some(l) => start.saturating_add(l).min(rows.len()),
        None => rows.len(),
    };
    rows.drain(..start);
    rows.truncate(end - start);
}

/// Internal id-native solution table (cells are global [`TermId`]s).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdTable {
    /// Column (variable) names.
    pub vars: Vec<String>,
    /// Rows; each row is parallel to `vars`. `None` = unbound.
    pub rows: Vec<Vec<Option<TermId>>>,
}

impl IdTable {
    /// Empty table with a schema.
    pub fn with_vars(vars: Vec<String>) -> Self {
        IdTable {
            vars,
            rows: Vec::new(),
        }
    }

    /// The unit table: no columns, one empty row (join identity).
    pub fn unit() -> Self {
        IdTable {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }
}

/// A solution table: named columns over rows of optional terms (`None` =
/// unbound). This is the engine's public result type; the evaluator works on
/// [`IdTable`]s internally and materializes terms only when producing one of
/// these.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolutionTable {
    /// Column (variable) names.
    pub vars: Vec<String>,
    /// Rows; each row is parallel to `vars`.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl SolutionTable {
    /// Empty table with a schema.
    pub fn with_vars(vars: Vec<String>) -> Self {
        SolutionTable {
            vars,
            rows: Vec::new(),
        }
    }

    /// The unit table: no columns, one empty row (join identity).
    pub fn unit() -> Self {
        SolutionTable {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Iterate the values of one column.
    pub fn column(&self, name: &str) -> Option<impl Iterator<Item = Option<&Term>>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(move |r| r[idx].as_ref()))
    }

    /// Render as a compact TSV-ish string (tests / debugging).
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.vars.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Some(t) => t.to_string(),
                    None => String::new(),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }

    /// Sort rows lexicographically (for order-insensitive comparisons in
    /// tests and result checksums).
    pub fn canonicalize(&mut self) {
        let order = |a: &Vec<Option<Term>>, b: &Vec<Option<Term>>| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = match (x, y) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x.order_cmp(y),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        self.rows.sort_by(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_empty() {
        let u = SolutionTable::unit();
        assert_eq!(u.len(), 1);
        assert!(u.vars.is_empty());
        let e = SolutionTable::with_vars(vec!["x".into()]);
        assert!(e.is_empty());
    }

    #[test]
    fn column_access() {
        let mut t = SolutionTable::with_vars(vec!["a".into(), "b".into()]);
        t.rows.push(vec![Some(Term::integer(1)), None]);
        t.rows.push(vec![Some(Term::integer(2)), Some(Term::string("x"))]);
        let a: Vec<_> = t.column("a").unwrap().collect();
        assert_eq!(a.len(), 2);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn canonicalize_sorts() {
        let mut t = SolutionTable::with_vars(vec!["a".into()]);
        t.rows.push(vec![Some(Term::integer(2))]);
        t.rows.push(vec![None]);
        t.rows.push(vec![Some(Term::integer(1))]);
        t.canonicalize();
        assert_eq!(t.rows[0], vec![None]);
        assert_eq!(t.rows[1], vec![Some(Term::integer(1))]);
    }

    #[test]
    fn id_table_unit_and_columns() {
        let u = IdTable::unit();
        assert_eq!(u.len(), 1);
        let mut t = IdTable::with_vars(vec!["a".into(), "b".into()]);
        assert!(t.is_empty());
        t.rows.push(vec![Some(TermId(3)), None]);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("z"), None);
    }
}
