//! Query result representations.
//!
//! Three row layouts exist on purpose:
//!
//! - [`IdTable`] is the default evaluator's *internal* representation: a
//!   struct-of-arrays table with one dense `Vec<TermId>` per variable column
//!   plus a presence bitmap (`None`/unbound is a cleared bit, the slot holds
//!   a zero filler). Joins, DISTINCT, and grouping read column slices
//!   sequentially and hash integers; BGP extension appends into column
//!   buffers instead of allocating a `Vec` per row. It never leaves the
//!   engine.
//! - [`RowTable`] is the row-major id layout (`Vec<Option<TermId>>` per
//!   row) used by the PR 1 row-at-a-time evaluator, kept as a differential
//!   oracle and benchmark baseline ([`crate::eval_rows`]).
//! - [`SolutionTable`] is the *public* boundary type: cells are owned
//!   [`Term`] values, materialized exactly once when a query finishes (or a
//!   page of it is shipped).

use rdf_model::{Term, TermId};

/// Keep rows `[offset, offset+limit)` in place (`None` limit = to the end),
/// clamping both bounds to the table. Shared by `LIMIT`/`OFFSET` evaluation
/// and the engine's paging boundary.
pub fn slice_rows<T>(rows: &mut Vec<T>, offset: usize, limit: Option<usize>) {
    let start = offset.min(rows.len());
    let end = match limit {
        Some(l) => start.saturating_add(l).min(rows.len()),
        None => rows.len(),
    };
    rows.drain(..start);
    rows.truncate(end - start);
}

/// Filler stored in absent slots so equal tables compare equal bit-for-bit.
const ABSENT: TermId = TermId(0);

/// One column of optional [`TermId`]s: dense id vector + presence bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    ids: Vec<TermId>,
    present: Vec<u64>,
}

impl Column {
    /// Empty column with room for `cap` values.
    pub fn with_capacity(cap: usize) -> Self {
        Column {
            ids: Vec::with_capacity(cap),
            present: Vec::with_capacity(cap.div_ceil(64)),
        }
    }

    /// An all-absent column of length `len`.
    pub fn absent(len: usize) -> Self {
        Column {
            ids: vec![ABSENT; len],
            present: vec![0; len.div_ceil(64)],
        }
    }

    /// A fully-present column owning `ids`.
    pub fn from_ids(ids: Vec<TermId>) -> Self {
        let len = ids.len();
        let mut present = vec![!0u64; len / 64];
        if !len.is_multiple_of(64) {
            present.push((1u64 << (len % 64)) - 1);
        }
        Column { ids, present }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Append one optional value.
    #[inline]
    pub fn push(&mut self, v: Option<TermId>) {
        let i = self.ids.len();
        if i.is_multiple_of(64) {
            self.present.push(0);
        }
        match v {
            Some(id) => {
                self.ids.push(id);
                self.present[i / 64] |= 1 << (i % 64);
            }
            None => self.ids.push(ABSENT),
        }
    }

    /// Is slot `i` bound?
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.present[i / 64] & (1 << (i % 64)) != 0
    }

    /// Read slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<TermId> {
        if self.is_present(i) {
            Some(self.ids[i])
        } else {
            None
        }
    }

    /// The raw id slice (absent slots hold a zero filler — consult the
    /// bitmap or [`Column::all_present`] before trusting values).
    pub fn ids(&self) -> &[TermId] {
        &self.ids
    }

    /// True when every slot is bound (one popcount pass over the bitmap —
    /// this is what lets joins pick hash-key columns without a row scan).
    pub fn all_present(&self) -> bool {
        let len = self.ids.len();
        let full = len / 64;
        if self.present[..full].iter().any(|&w| w != !0u64) {
            return false;
        }
        if !len.is_multiple_of(64) {
            let mask = (1u64 << (len % 64)) - 1;
            return self.present[full] & mask == mask;
        }
        true
    }

    /// Append `src[i]` for every index in `idx` (presence-preserving gather).
    pub fn gather_from(&mut self, src: &Column, idx: &[u32]) {
        self.ids.reserve(idx.len());
        for &i in idx {
            self.push(src.get(i as usize));
        }
    }

    /// Keep only slots whose mask bit is `true` (in order).
    pub fn filter_mask(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.ids.len());
        let mut out = Column::with_capacity(self.ids.len());
        for (i, &k) in keep.iter().enumerate() {
            if k {
                out.push(self.get(i));
            }
        }
        *self = out;
    }

    /// Encode slot `i` for hashing: 0 = unbound, otherwise id + 1.
    #[inline]
    pub fn hash_code(&self, i: usize) -> u64 {
        match self.get(i) {
            Some(id) => id.0 as u64 + 1,
            None => 0,
        }
    }

    /// Estimated heap bytes held by this column (id vector + presence
    /// bitmap). Used by budget enforcement; tracks the dominant
    /// allocations, not the allocator's exact footprint.
    pub fn estimated_bytes(&self) -> u64 {
        (self.ids.len() as u64).saturating_mul(std::mem::size_of::<TermId>() as u64)
            + (self.present.len() as u64).saturating_mul(8)
    }

    /// Shorten the column to `len` slots, zeroing bitmap bits past the end
    /// (the invariant `Eq` and [`Column::all_present`] rely on).
    pub fn truncate(&mut self, len: usize) {
        if len >= self.ids.len() {
            return;
        }
        self.ids.truncate(len);
        self.present.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = self.present.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
    }
}

/// Internal columnar id-native solution table (struct-of-arrays).
///
/// Each variable is a [`Column`]; all columns share the table's row count.
/// The unit table (no columns, one row) is representable because the row
/// count is stored explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdTable {
    /// Column (variable) names.
    pub vars: Vec<String>,
    cols: Vec<Column>,
    rows: usize,
}

impl IdTable {
    /// Empty table with a schema.
    pub fn with_vars(vars: Vec<String>) -> Self {
        let cols = vars.iter().map(|_| Column::default()).collect();
        IdTable {
            vars,
            cols,
            rows: 0,
        }
    }

    /// Table assembled from prebuilt columns (all of length `rows`).
    pub fn from_columns(vars: Vec<String>, cols: Vec<Column>, rows: usize) -> Self {
        debug_assert_eq!(vars.len(), cols.len());
        debug_assert!(cols.iter().all(|c| c.len() == rows));
        IdTable { vars, cols, rows }
    }

    /// The unit table: no columns, one empty row (join identity).
    pub fn unit() -> Self {
        IdTable {
            vars: Vec::new(),
            cols: Vec::new(),
            rows: 1,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Borrow a column.
    pub fn col(&self, idx: usize) -> &Column {
        &self.cols[idx]
    }

    /// Borrow all columns (the streaming BGP operator hands them to the
    /// shared scan-loop body, which takes a column slice).
    pub(crate) fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Read one cell.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<TermId> {
        self.cols[col].get(row)
    }

    /// Append a row given as a slice parallel to `vars` (test/boundary
    /// helper; hot paths build whole columns instead).
    pub fn push_row(&mut self, row: &[Option<TermId>]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(*v);
        }
        self.rows += 1;
    }

    /// Copy row `i` into `buf` (reused scratch for expression contexts).
    pub fn read_row(&self, i: usize, buf: &mut Vec<Option<TermId>>) {
        buf.clear();
        buf.extend(self.cols.iter().map(|c| c.get(i)));
    }

    /// Keep only rows whose mask bit is `true`.
    pub fn filter_mask(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.rows);
        for c in &mut self.cols {
            c.filter_mask(keep);
        }
        self.rows = keep.iter().filter(|&&k| k).count();
    }

    /// New table holding rows `idx` (in `idx` order; duplicates allowed).
    pub fn gather_rows(&self, idx: &[u32]) -> IdTable {
        let cols = self
            .cols
            .iter()
            .map(|c| {
                let mut out = Column::with_capacity(idx.len());
                out.gather_from(c, idx);
                out
            })
            .collect();
        IdTable {
            vars: self.vars.clone(),
            cols,
            rows: idx.len(),
        }
    }

    /// Keep rows `[offset, offset+limit)` (`None` limit = to the end).
    pub fn slice(&mut self, offset: usize, limit: Option<usize>) {
        let start = offset.min(self.rows);
        let end = match limit {
            Some(l) => start.saturating_add(l).min(self.rows),
            None => self.rows,
        };
        if start == 0 {
            // LIMIT without OFFSET: truncate columns in place, no copies.
            for c in &mut self.cols {
                c.truncate(end);
            }
            self.rows = end;
            return;
        }
        let idx: Vec<u32> = (start as u32..end as u32).collect();
        *self = self.gather_rows(&idx);
    }

    /// Concatenate another table's rows onto this one, column-wise. Both
    /// tables must share the same schema (the streaming pipeline's
    /// accumulating operators append same-plan batches).
    pub(crate) fn append(&mut self, other: &IdTable) {
        debug_assert_eq!(self.vars, other.vars);
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            for i in 0..other.rows {
                dst.push(src.get(i));
            }
        }
        self.rows += other.rows;
    }

    /// Decompose into `(vars, columns, row count)` so consuming operators
    /// (projection) can move columns out instead of cloning them.
    pub fn into_parts(self) -> (Vec<String>, Vec<Column>, usize) {
        (self.vars, self.cols, self.rows)
    }

    /// Add a column (must match the current row count).
    pub fn add_column(&mut self, name: String, col: Column) {
        debug_assert_eq!(col.len(), self.rows);
        self.vars.push(name);
        self.cols.push(col);
    }

    /// Replace an existing column (must match the current row count).
    pub fn replace_column(&mut self, idx: usize, col: Column) {
        debug_assert_eq!(col.len(), self.rows);
        self.cols[idx] = col;
    }

    /// Estimated heap bytes held by this table's columns (budget
    /// enforcement input; see [`Column::estimated_bytes`]).
    pub fn estimated_bytes(&self) -> u64 {
        self.cols
            .iter()
            .fold(0u64, |acc, c| acc.saturating_add(c.estimated_bytes()))
    }
}

/// Internal row-major id table (`Option<TermId>` per cell) used by the PR 1
/// row-at-a-time evaluator kept in [`crate::eval_rows`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowTable {
    /// Column (variable) names.
    pub vars: Vec<String>,
    /// Rows; each row is parallel to `vars`. `None` = unbound.
    pub rows: Vec<Vec<Option<TermId>>>,
}

impl RowTable {
    /// Empty table with a schema.
    pub fn with_vars(vars: Vec<String>) -> Self {
        RowTable {
            vars,
            rows: Vec::new(),
        }
    }

    /// The unit table: no columns, one empty row (join identity).
    pub fn unit() -> Self {
        RowTable {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }
}

/// A solution table: named columns over rows of optional terms (`None` =
/// unbound). This is the engine's public result type; the evaluator works on
/// [`IdTable`]s internally and materializes terms only when producing one of
/// these.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolutionTable {
    /// Column (variable) names.
    pub vars: Vec<String>,
    /// Rows; each row is parallel to `vars`.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl SolutionTable {
    /// Empty table with a schema.
    pub fn with_vars(vars: Vec<String>) -> Self {
        SolutionTable {
            vars,
            rows: Vec::new(),
        }
    }

    /// The unit table: no columns, one empty row (join identity).
    pub fn unit() -> Self {
        SolutionTable {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Iterate the values of one column.
    pub fn column(&self, name: &str) -> Option<impl Iterator<Item = Option<&Term>>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(move |r| r[idx].as_ref()))
    }

    /// Render as a compact TSV-ish string (tests / debugging).
    pub fn to_tsv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.vars.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| match c {
                    Some(t) => t.to_string(),
                    None => String::new(),
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }

    /// Sort rows lexicographically (for order-insensitive comparisons in
    /// tests and result checksums).
    pub fn canonicalize(&mut self) {
        let order = |a: &Vec<Option<Term>>, b: &Vec<Option<Term>>| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = match (x, y) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => x.order_cmp(y),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        self.rows.sort_by(order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_empty() {
        let u = SolutionTable::unit();
        assert_eq!(u.len(), 1);
        assert!(u.vars.is_empty());
        let e = SolutionTable::with_vars(vec!["x".into()]);
        assert!(e.is_empty());
    }

    #[test]
    fn column_access() {
        let mut t = SolutionTable::with_vars(vec!["a".into(), "b".into()]);
        t.rows.push(vec![Some(Term::integer(1)), None]);
        t.rows
            .push(vec![Some(Term::integer(2)), Some(Term::string("x"))]);
        let a: Vec<_> = t.column("a").unwrap().collect();
        assert_eq!(a.len(), 2);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn canonicalize_sorts() {
        let mut t = SolutionTable::with_vars(vec!["a".into()]);
        t.rows.push(vec![Some(Term::integer(2))]);
        t.rows.push(vec![None]);
        t.rows.push(vec![Some(Term::integer(1))]);
        t.canonicalize();
        assert_eq!(t.rows[0], vec![None]);
        assert_eq!(t.rows[1], vec![Some(Term::integer(1))]);
    }

    #[test]
    fn row_table_unit_and_columns() {
        let u = RowTable::unit();
        assert_eq!(u.len(), 1);
        let mut t = RowTable::with_vars(vec!["a".into(), "b".into()]);
        assert!(t.is_empty());
        t.rows.push(vec![Some(TermId(3)), None]);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("z"), None);
    }

    #[test]
    fn column_bitmap_round_trip() {
        let mut c = Column::default();
        for i in 0..130u32 {
            c.push(if i % 3 == 0 { Some(TermId(i)) } else { None });
        }
        assert_eq!(c.len(), 130);
        assert!(!c.all_present());
        for i in 0..130 {
            assert_eq!(
                c.get(i),
                if i % 3 == 0 {
                    Some(TermId(i as u32))
                } else {
                    None
                }
            );
        }
        let full = Column::from_ids((0..130).map(TermId).collect());
        assert!(full.all_present());
        assert_eq!(full.get(129), Some(TermId(129)));

        // Truncation must zero tail bits so equal contents compare equal.
        let mut trunc = c.clone();
        trunc.truncate(65);
        assert_eq!(trunc.len(), 65);
        let mut rebuilt = Column::default();
        for i in 0..65 {
            rebuilt.push(c.get(i));
        }
        assert_eq!(trunc, rebuilt);
        let mut short = Column::from_ids((0..10).map(TermId).collect());
        short.truncate(3);
        assert!(short.all_present());
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn column_filter_and_gather() {
        let mut c = Column::default();
        c.push(Some(TermId(1)));
        c.push(None);
        c.push(Some(TermId(3)));
        let mut g = Column::default();
        g.gather_from(&c, &[2, 0, 1, 2]);
        assert_eq!(g.get(0), Some(TermId(3)));
        assert_eq!(g.get(1), Some(TermId(1)));
        assert_eq!(g.get(2), None);
        assert_eq!(g.get(3), Some(TermId(3)));
        c.filter_mask(&[true, false, true]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(TermId(3)));
        assert!(c.all_present());
    }

    #[test]
    fn id_table_unit_rows_and_slice() {
        let u = IdTable::unit();
        assert_eq!(u.len(), 1);
        assert!(u.vars.is_empty());

        let mut t = IdTable::with_vars(vec!["a".into(), "b".into()]);
        assert!(t.is_empty());
        t.push_row(&[Some(TermId(3)), None]);
        t.push_row(&[Some(TermId(4)), Some(TermId(5))]);
        t.push_row(&[None, Some(TermId(6))]);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.get(1, 1), Some(TermId(5)));
        assert_eq!(t.get(2, 0), None);

        let mut buf = Vec::new();
        t.read_row(1, &mut buf);
        assert_eq!(buf, vec![Some(TermId(4)), Some(TermId(5))]);

        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0, 1), Some(TermId(6)));

        t.slice(1, Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0, 0), Some(TermId(4)));

        // Out-of-range slices clamp to empty, with saturating arithmetic.
        let mut oob = g.clone();
        oob.slice(5, Some(3));
        assert_eq!(oob.len(), 0);
        let mut oob = g.clone();
        oob.slice(usize::MAX, Some(usize::MAX));
        assert_eq!(oob.len(), 0);
        assert_eq!(oob.vars, g.vars);
        let mut rows = vec![1, 2, 3];
        slice_rows(&mut rows, 7, Some(usize::MAX));
        assert!(rows.is_empty());
        let mut rows = vec![1, 2, 3];
        slice_rows(&mut rows, 1, Some(usize::MAX));
        assert_eq!(rows, vec![2, 3]);

        let mut t2 = IdTable::with_vars(vec!["a".into()]);
        t2.push_row(&[Some(TermId(1))]);
        t2.push_row(&[Some(TermId(2))]);
        t2.filter_mask(&[false, true]);
        assert_eq!(t2.len(), 1);
        assert_eq!(t2.get(0, 0), Some(TermId(2)));
    }
}
