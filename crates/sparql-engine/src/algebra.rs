//! Translation from the parsed AST to the SPARQL algebra.
//!
//! The algebra follows the SPARQL 1.1 spec structure (Section 18): group
//! graph patterns become joins of BGPs / `LeftJoin`s / `Union`s, group-level
//! `FILTER`s apply to the whole group, aggregation inserts a `Group` node
//! whose aggregate expressions are pulled out of `SELECT` and `HAVING`, and
//! solution modifiers wrap the plan in the spec-mandated order
//! (Extend → OrderBy → Project → Distinct → Slice).

use crate::ast::{
    AggOp, Expr, GroupGraphPattern, OrderKey, PatternElem, Projection, SelectItem, SelectQuery,
    TriplePattern,
};
use crate::error::{EngineError, Result};

/// Which graph a BGP is matched against.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphRef {
    /// The query's default graph(s) (`FROM`, or the whole dataset).
    Default,
    /// An explicit `GRAPH <uri>` context.
    Named(String),
}

/// One aggregate computed by a [`Plan::Group`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Aggregate operation.
    pub op: AggOp,
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// Aggregated expression (`None` = `COUNT(*)`).
    pub expr: Option<Expr>,
    /// Output column name.
    pub output: String,
}

/// A single-variable `FILTER` conjunct the optimizer has sunk into a BGP.
///
/// Invariant: `expr` references exactly the one variable `var`, and `var`
/// is bound by some pattern of the BGP carrying the filter. Evaluators test
/// candidates against `expr` at the first pattern (in evaluation order)
/// that binds `var`, *before* the row is extended — rejected rows never
/// reach later patterns, so downstream index scans (and the `rows_scanned`
/// work metric) shrink identically on every evaluator.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedFilter {
    /// The one variable the expression references.
    pub var: String,
    /// The predicate over `var` (error/unbound counts as rejected, exactly
    /// like a `FILTER` above the BGP).
    pub expr: Expr,
}

/// Route each pushed filter to the pattern it fires at — the first pattern
/// (in evaluation order) mentioning, and therefore newly binding, its
/// variable — paired with the variable's column index per `column_index`.
///
/// This attachment rule is load-bearing: every evaluator must reject the
/// same candidates at the same pattern for the differential suites' exact
/// `rows_scanned` parity to hold, so it lives here, once.
pub fn attach_filters<'f>(
    patterns: &[TriplePattern],
    filters: &'f [PushedFilter],
    column_index: impl Fn(&str) -> usize,
) -> Vec<Vec<(usize, &'f PushedFilter)>> {
    let mut per_pattern: Vec<Vec<(usize, &PushedFilter)>> =
        (0..patterns.len()).map(|_| Vec::new()).collect();
    for f in filters {
        let at = patterns
            .iter()
            .position(|p| p.variables().any(|v| v == f.var))
            .expect("pushed filter var is bound by some pattern");
        per_pattern[at].push((column_index(&f.var), f));
    }
    per_pattern
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// The unit table: one empty solution.
    Unit,
    /// A basic graph pattern evaluated against `graph`.
    Bgp {
        /// Triple patterns, in evaluation order (the optimizer may permute).
        patterns: Vec<TriplePattern>,
        /// Target graph.
        graph: GraphRef,
        /// Filters sunk into the extension loop by the optimizer. Always
        /// empty straight out of translation.
        filters: Vec<PushedFilter>,
    },
    /// Inner join.
    Join(Box<Plan>, Box<Plan>),
    /// Inner join whose inputs are both known to arrive sorted on `key`
    /// (ascending global [`rdf_model::TermId`] order, always bound). Never
    /// produced by translation; the optimizer rewrites [`Plan::Join`] into
    /// this when interesting-order tracking proves both sides sorted, and
    /// the columnar evaluator runs a linear merge over the key column
    /// slices instead of building a hash table (with a defensive run-time
    /// sortedness check that falls back to the hash join). Row-oriented
    /// evaluators treat it exactly as [`Plan::Join`]; the merge emits pairs
    /// in the same left-major order the hash join does, so all evaluators
    /// stay row-for-row identical.
    MergeJoin {
        /// Left input (sorted on `key`).
        left: Box<Plan>,
        /// Right input (sorted on `key`).
        right: Box<Plan>,
        /// The shared join variable both inputs are sorted by.
        key: String,
    },
    /// Left outer join (`OPTIONAL`) whose inputs are both known to arrive
    /// sorted on `key` (same contract as [`Plan::MergeJoin`]). Never
    /// produced by translation; the optimizer rewrites [`Plan::LeftJoin`]
    /// into this, and the columnar evaluator runs a linear merge that emits
    /// unmatched left rows in place — exactly the hash left join's pair
    /// order — with the same run-time sortedness check + hash fallback.
    /// Row-oriented evaluators treat it exactly as [`Plan::LeftJoin`].
    MergeLeftJoin {
        /// Left (preserved) input, sorted on `key`.
        left: Box<Plan>,
        /// Right (optional) input, sorted on `key`.
        right: Box<Plan>,
        /// The shared join variable both inputs are sorted by.
        key: String,
    },
    /// Left outer join (`OPTIONAL`).
    LeftJoin(Box<Plan>, Box<Plan>),
    /// Bag union.
    Union(Box<Plan>, Box<Plan>),
    /// Filter by effective boolean value.
    Filter(Expr, Box<Plan>),
    /// Bind `var := expr`.
    Extend(String, Expr, Box<Plan>),
    /// Grouping and aggregation.
    Group {
        /// Grouping variables.
        keys: Vec<String>,
        /// Aggregates to compute per group.
        aggs: Vec<AggSpec>,
        /// Input plan.
        input: Box<Plan>,
        /// Sort-order prefix of the input that covers exactly the grouping
        /// keys (ascending global [`rdf_model::TermId`] order). Empty
        /// straight out of translation; the optimizer fills it when
        /// interesting-order tracking proves the input sorted with the keys
        /// as a prefix, letting the columnar evaluator detect group runs
        /// over raw id column slices instead of hashing (with a run-time
        /// sortedness check + hash fallback). Groups come out in
        /// first-occurrence order either way, so the rewrite is invisible.
        sorted_on: Vec<String>,
    },
    /// Projection to the named columns.
    Project(Vec<String>, Box<Plan>),
    /// Duplicate elimination (keeps first occurrence).
    Distinct(Box<Plan>),
    /// Duplicate elimination over an input the optimizer proved sorted on
    /// `order` (the input's full interesting-order sequence). Never produced
    /// by translation. The columnar evaluator deduplicates by linear run
    /// detection over raw id column slices when `order` covers every output
    /// column (verified at run time together with sortedness; hash fallback
    /// otherwise). Keeps first occurrences in input order, exactly like
    /// [`Plan::Distinct`], which row-oriented evaluators run it as.
    SortedDistinct {
        /// The variable sequence the input is sorted by.
        order: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Sorting.
    OrderBy(Vec<OrderKey>, Box<Plan>),
    /// Bounded sorting: the first `k` rows of the ORDER BY order. Never
    /// produced by translation; the optimizer fuses `Slice { limit }` over
    /// `OrderBy` into this so the evaluator can select top-k instead of
    /// fully sorting.
    TopK {
        /// Sort keys.
        keys: Vec<OrderKey>,
        /// Number of rows to keep (`limit + offset` of the enclosing slice).
        k: usize,
        /// Input plan.
        input: Box<Plan>,
    },
    /// LIMIT / OFFSET.
    Slice {
        /// Max rows (`None` = unlimited).
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
        /// Input plan.
        input: Box<Plan>,
    },
}

impl Plan {
    fn join(self, other: Plan) -> Plan {
        match (self, other) {
            (Plan::Unit, p) | (p, Plan::Unit) => p,
            (a, b) => Plan::Join(Box::new(a), Box::new(b)),
        }
    }
}

/// Translate a full SELECT query to a plan. `FROM` clauses are *not* encoded
/// in the plan; the engine resolves [`GraphRef::Default`] using the
/// query-level `FROM` list.
pub fn translate_query(query: &SelectQuery) -> Result<Plan> {
    let mut plan = translate_ggp(&query.pattern, &GraphRef::Default)?;

    let mut extends: Vec<(String, Expr)> = Vec::new();
    let mut having = query.having.clone();

    if query.is_aggregated() {
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut counter = 0usize;
        // Pull aggregates out of SELECT items.
        if let Projection::Items(items) = &query.projection {
            for item in items {
                if let SelectItem::Expr { expr, alias } = item {
                    if let Expr::Aggregate {
                        op,
                        distinct,
                        expr: inner,
                    } = expr
                    {
                        // Direct `(AGG(..) AS ?alias)`: name the aggregate
                        // output after the alias, no Extend needed.
                        aggs.push(AggSpec {
                            op: *op,
                            distinct: *distinct,
                            expr: inner.as_deref().cloned(),
                            output: alias.clone(),
                        });
                    } else {
                        let rewritten = extract_aggregates(expr, &mut aggs, &mut counter);
                        extends.push((alias.clone(), rewritten));
                    }
                }
            }
        }
        // Pull aggregates out of HAVING.
        having = having
            .iter()
            .map(|h| extract_aggregates(h, &mut aggs, &mut counter))
            .collect();
        plan = Plan::Group {
            keys: query.group_by.clone(),
            aggs,
            input: Box::new(plan),
            sorted_on: Vec::new(),
        };
    } else {
        if !query.having.is_empty() {
            return Err(EngineError::Semantic(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        if let Projection::Items(items) = &query.projection {
            for item in items {
                if let SelectItem::Expr { expr, alias } = item {
                    extends.push((alias.clone(), expr.clone()));
                }
            }
        }
    }

    for h in having {
        plan = Plan::Filter(h, Box::new(plan));
    }
    for (alias, expr) in extends {
        plan = Plan::Extend(alias, expr, Box::new(plan));
    }
    if !query.order_by.is_empty() {
        plan = Plan::OrderBy(query.order_by.clone(), Box::new(plan));
    }
    let projected = query.projected_vars();
    plan = Plan::Project(projected, Box::new(plan));
    if query.distinct {
        plan = Plan::Distinct(Box::new(plan));
    }
    if query.limit.is_some() || query.offset.is_some() {
        plan = Plan::Slice {
            limit: query.limit,
            offset: query.offset.unwrap_or(0),
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

/// Replace every `Expr::Aggregate` inside `expr` with a fresh variable and
/// record the corresponding [`AggSpec`]. Identical aggregates are shared.
fn extract_aggregates(expr: &Expr, aggs: &mut Vec<AggSpec>, counter: &mut usize) -> Expr {
    match expr {
        Expr::Aggregate {
            op,
            distinct,
            expr: inner,
        } => {
            let inner = inner.as_deref().cloned();
            // Reuse an existing identical aggregate if present.
            if let Some(existing) = aggs
                .iter()
                .find(|a| a.op == *op && a.distinct == *distinct && a.expr == inner)
            {
                return Expr::Var(existing.output.clone());
            }
            let name = format!("__agg{counter}");
            *counter += 1;
            aggs.push(AggSpec {
                op: *op,
                distinct: *distinct,
                expr: inner,
                output: name.clone(),
            });
            Expr::Var(name)
        }
        Expr::Var(_) | Expr::Const(_) => expr.clone(),
        Expr::And(a, b) => Expr::And(
            Box::new(extract_aggregates(a, aggs, counter)),
            Box::new(extract_aggregates(b, aggs, counter)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(extract_aggregates(a, aggs, counter)),
            Box::new(extract_aggregates(b, aggs, counter)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(extract_aggregates(a, aggs, counter))),
        Expr::Neg(a) => Expr::Neg(Box::new(extract_aggregates(a, aggs, counter))),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(extract_aggregates(a, aggs, counter)),
            Box::new(extract_aggregates(b, aggs, counter)),
        ),
        Expr::Arith(op, a, b) => Expr::Arith(
            *op,
            Box::new(extract_aggregates(a, aggs, counter)),
            Box::new(extract_aggregates(b, aggs, counter)),
        ),
        Expr::In {
            expr: e,
            list,
            negated,
        } => Expr::In {
            expr: Box::new(extract_aggregates(e, aggs, counter)),
            list: list
                .iter()
                .map(|i| extract_aggregates(i, aggs, counter))
                .collect(),
            negated: *negated,
        },
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter()
                .map(|a| extract_aggregates(a, aggs, counter))
                .collect(),
        ),
    }
}

/// Translate a group graph pattern under a graph context.
pub fn translate_ggp(group: &GroupGraphPattern, graph: &GraphRef) -> Result<Plan> {
    let mut plan = Plan::Unit;
    let mut filters: Vec<Expr> = Vec::new();
    let mut bgp: Vec<TriplePattern> = Vec::new();

    fn flush(plan: Plan, bgp: &mut Vec<TriplePattern>, graph: &GraphRef) -> Plan {
        if bgp.is_empty() {
            return plan;
        }
        let patterns = std::mem::take(bgp);
        plan.join(Plan::Bgp {
            patterns,
            graph: graph.clone(),
            filters: Vec::new(),
        })
    }

    for elem in &group.elems {
        match elem {
            PatternElem::Triple(t) => bgp.push(t.clone()),
            PatternElem::Filter(e) => filters.push(e.clone()),
            PatternElem::Optional(inner) => {
                plan = flush(plan, &mut bgp, graph);
                let right = translate_ggp(inner, graph)?;
                plan = Plan::LeftJoin(Box::new(plan), Box::new(right));
            }
            PatternElem::Union(branches) => {
                plan = flush(plan, &mut bgp, graph);
                let mut it = branches.iter();
                let first = it
                    .next()
                    .ok_or_else(|| EngineError::Semantic("empty UNION".into()))?;
                let mut u = translate_ggp(first, graph)?;
                for branch in it {
                    let b = translate_ggp(branch, graph)?;
                    u = Plan::Union(Box::new(u), Box::new(b));
                }
                plan = plan.join(u);
            }
            PatternElem::Group(inner) => {
                plan = flush(plan, &mut bgp, graph);
                plan = plan.join(translate_ggp(inner, graph)?);
            }
            PatternElem::SubSelect(q) => {
                plan = flush(plan, &mut bgp, graph);
                // Subqueries inherit the enclosing graph context: rebuild
                // their pattern under `graph` when it is a named graph.
                let sub = if *graph == GraphRef::Default {
                    translate_query(q)?
                } else {
                    translate_subquery_in_graph(q, graph)?
                };
                plan = plan.join(sub);
            }
            PatternElem::Graph(uri, inner) => {
                plan = flush(plan, &mut bgp, graph);
                let g = GraphRef::Named(uri.clone());
                plan = plan.join(translate_ggp(inner, &g)?);
            }
            PatternElem::Bind(e, v) => {
                plan = flush(plan, &mut bgp, graph);
                plan = Plan::Extend(v.clone(), e.clone(), Box::new(plan));
            }
        }
    }
    plan = flush(plan, &mut bgp, graph);
    for f in filters {
        plan = Plan::Filter(f, Box::new(plan));
    }
    Ok(plan)
}

/// Translate a subquery whose BGPs should match a specific named graph.
fn translate_subquery_in_graph(q: &SelectQuery, graph: &GraphRef) -> Result<Plan> {
    let plan = translate_query(q)?;
    Ok(rebind_graph(plan, graph))
}

fn rebind_graph(plan: Plan, graph: &GraphRef) -> Plan {
    match plan {
        Plan::Bgp {
            patterns,
            graph: GraphRef::Default,
            filters,
        } => Plan::Bgp {
            patterns,
            graph: graph.clone(),
            filters,
        },
        Plan::Bgp {
            patterns,
            graph,
            filters,
        } => Plan::Bgp {
            patterns,
            graph,
            filters,
        },
        Plan::Unit => Plan::Unit,
        Plan::Join(a, b) => Plan::Join(
            Box::new(rebind_graph(*a, graph)),
            Box::new(rebind_graph(*b, graph)),
        ),
        Plan::MergeJoin { left, right, key } => Plan::MergeJoin {
            left: Box::new(rebind_graph(*left, graph)),
            right: Box::new(rebind_graph(*right, graph)),
            key,
        },
        Plan::MergeLeftJoin { left, right, key } => Plan::MergeLeftJoin {
            left: Box::new(rebind_graph(*left, graph)),
            right: Box::new(rebind_graph(*right, graph)),
            key,
        },
        Plan::LeftJoin(a, b) => Plan::LeftJoin(
            Box::new(rebind_graph(*a, graph)),
            Box::new(rebind_graph(*b, graph)),
        ),
        Plan::Union(a, b) => Plan::Union(
            Box::new(rebind_graph(*a, graph)),
            Box::new(rebind_graph(*b, graph)),
        ),
        Plan::Filter(e, p) => Plan::Filter(e, Box::new(rebind_graph(*p, graph))),
        Plan::Extend(v, e, p) => Plan::Extend(v, e, Box::new(rebind_graph(*p, graph))),
        Plan::Group {
            keys,
            aggs,
            input,
            sorted_on,
        } => Plan::Group {
            keys,
            aggs,
            input: Box::new(rebind_graph(*input, graph)),
            sorted_on,
        },
        Plan::Project(vars, p) => Plan::Project(vars, Box::new(rebind_graph(*p, graph))),
        Plan::Distinct(p) => Plan::Distinct(Box::new(rebind_graph(*p, graph))),
        Plan::SortedDistinct { order, input } => Plan::SortedDistinct {
            order,
            input: Box::new(rebind_graph(*input, graph)),
        },
        Plan::OrderBy(keys, p) => Plan::OrderBy(keys, Box::new(rebind_graph(*p, graph))),
        Plan::TopK { keys, k, input } => Plan::TopK {
            keys,
            k,
            input: Box::new(rebind_graph(*input, graph)),
        },
        Plan::Slice {
            limit,
            offset,
            input,
        } => Plan::Slice {
            limit,
            offset,
            input: Box::new(rebind_graph(*input, graph)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PatternTerm;
    use rdf_model::Term;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let conv = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(Term::iri(x.to_string()))
            }
        };
        TriplePattern::new(conv(s), conv(p), conv(o))
    }

    #[test]
    fn adjacent_triples_merge_into_one_bgp() {
        let g = GroupGraphPattern {
            elems: vec![
                PatternElem::Triple(tp("?a", "http://p", "?b")),
                PatternElem::Triple(tp("?b", "http://q", "?c")),
            ],
        };
        let plan = translate_ggp(&g, &GraphRef::Default).unwrap();
        match plan {
            Plan::Bgp { patterns, .. } => assert_eq!(patterns.len(), 2),
            other => panic!("expected single BGP, got {other:?}"),
        }
    }

    #[test]
    fn optional_becomes_leftjoin() {
        let g = GroupGraphPattern {
            elems: vec![
                PatternElem::Triple(tp("?a", "http://p", "?b")),
                PatternElem::Optional(GroupGraphPattern {
                    elems: vec![PatternElem::Triple(tp("?a", "http://q", "?c"))],
                }),
            ],
        };
        let plan = translate_ggp(&g, &GraphRef::Default).unwrap();
        assert!(matches!(plan, Plan::LeftJoin(..)));
    }

    #[test]
    fn filter_applies_to_whole_group() {
        let g = GroupGraphPattern {
            elems: vec![
                PatternElem::Filter(Expr::Const(Term::integer(1))),
                PatternElem::Triple(tp("?a", "http://p", "?b")),
            ],
        };
        let plan = translate_ggp(&g, &GraphRef::Default).unwrap();
        // Filter wraps the BGP even though it appears first in source order.
        assert!(matches!(plan, Plan::Filter(_, inner) if matches!(*inner, Plan::Bgp { .. })));
    }

    #[test]
    fn graph_context_propagates() {
        let g = GroupGraphPattern {
            elems: vec![PatternElem::Graph(
                "http://yago".into(),
                GroupGraphPattern {
                    elems: vec![PatternElem::Triple(tp("?a", "http://p", "?b"))],
                },
            )],
        };
        let plan = translate_ggp(&g, &GraphRef::Default).unwrap();
        match plan {
            Plan::Bgp { graph, .. } => assert_eq!(graph, GraphRef::Named("http://yago".into())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_aggregates_are_deduplicated() {
        let count_movie = Expr::Aggregate {
            op: AggOp::Count,
            distinct: true,
            expr: Some(Box::new(Expr::Var("movie".into()))),
        };
        let mut aggs = Vec::new();
        let mut counter = 0;
        let a = extract_aggregates(&count_movie, &mut aggs, &mut counter);
        let b = extract_aggregates(&count_movie, &mut aggs, &mut counter);
        assert_eq!(a, b);
        assert_eq!(aggs.len(), 1);
    }
}
