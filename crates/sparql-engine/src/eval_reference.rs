//! Term-materialized reference evaluation (the pre-id-native evaluator).
//!
//! This is the seed implementation of bag-semantics plan evaluation kept
//! verbatim as a *differential-testing oracle* and benchmarking baseline for
//! the id-native evaluator in [`crate::eval`]: every intermediate row holds
//! owned [`Term`] values, and every BGP extension step resolves ids back to
//! terms (and re-looks terms up per row). It implements the same SPARQL
//! multiset semantics of the paper's Section 5.2: BGPs evaluate by
//! index-nested-loop over the store's access paths (in the order chosen by
//! the optimizer), joins are hash joins on the shared variables that are
//! bound on both sides (with compatibility checks on the rest), `OPTIONAL`
//! is a left outer join, `UNION` is bag union with schema alignment, and
//! grouping hashes on key tuples.
//!
//! Select it with [`crate::engine::EvalMode::TermReference`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rdf_model::{Dataset, Graph, Term, TermId};

use crate::algebra::{AggSpec, GraphRef, Plan, PushedFilter};
use crate::ast::{OrderKey, PatternTerm, TriplePattern};
use crate::budget::{BudgetMeter, QueryBudget};
use crate::error::{EngineError, Result};
use crate::expr::{ebv, eval_expr, eval_single_var_filter, AggState, EvalCaches, RowCtx};
use crate::results::SolutionTable;

/// Term-materialized plan evaluator bound to a dataset.
pub struct ReferenceEvaluator<'a> {
    dataset: &'a Dataset,
    default_graphs: Vec<String>,
    caches: EvalCaches,
    rows_scanned: u64,
    /// Budget enforcement state ([`crate::budget`]); inactive by default.
    meter: BudgetMeter,
}

/// Estimated heap bytes of `rows` term-materialized rows of `width` columns.
/// Owned [`Term`]s vary wildly in size; 64 bytes/cell is a deliberately
/// rough stand-in (enum + small string) — the budget needs an order of
/// magnitude, not an audit.
#[inline]
fn term_table_bytes(rows: usize, width: usize) -> u64 {
    (rows as u64).saturating_mul((width as u64).saturating_mul(64).saturating_add(24))
}

impl<'a> ReferenceEvaluator<'a> {
    /// Create an evaluator. `default_graphs` resolves [`GraphRef::Default`].
    pub fn new(dataset: &'a Dataset, default_graphs: Vec<String>) -> Self {
        ReferenceEvaluator {
            dataset,
            default_graphs,
            caches: EvalCaches::new(),
            rows_scanned: 0,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Install a resource budget. The meter (and its deadline clock) is
    /// created here, so call this right before evaluation starts.
    pub fn set_budget(&mut self, budget: &QueryBudget) {
        self.meter = BudgetMeter::new(budget);
    }

    /// Total index entries scanned so far (a deterministic work metric used
    /// by benchmarks alongside wall-clock time).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Evaluate a plan to a solution table.
    ///
    /// This is both the public entry point and the internal recursion, so
    /// it doubles as the budget chokepoint: every operator's output has its
    /// row count and estimated footprint checked here; BGP extension,
    /// joins, and grouping carry in-loop checks of their own.
    pub fn eval(&mut self, plan: &Plan) -> Result<SolutionTable> {
        let t = self.eval_node(plan)?;
        self.meter.charge_intermediate(
            t.rows.len() as u64,
            term_table_bytes(t.rows.len(), t.vars.len()),
        )?;
        Ok(t)
    }

    fn eval_node(&mut self, plan: &Plan) -> Result<SolutionTable> {
        match plan {
            Plan::Unit => Ok(SolutionTable::unit()),
            Plan::Bgp {
                patterns,
                graph,
                filters,
            } => self.eval_bgp(patterns, graph, filters),
            // The merge-join rewrites are columnar-evaluator
            // specializations; the oracle hash-joins them (identical rows
            // in identical order).
            Plan::Join(a, b)
            | Plan::MergeJoin {
                left: a, right: b, ..
            } => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                join(left, right, JoinKind::Inner, &mut self.meter)
            }
            Plan::LeftJoin(a, b)
            | Plan::MergeLeftJoin {
                left: a, right: b, ..
            } => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                join(left, right, JoinKind::Left, &mut self.meter)
            }
            Plan::Union(a, b) => {
                let left = self.eval(a)?;
                let right = self.eval(b)?;
                Ok(union(left, right))
            }
            Plan::Filter(expr, p) => {
                let mut t = self.eval(p)?;
                let vars = t.vars.clone();
                let caches = &mut self.caches;
                t.rows.retain(|row| {
                    let ctx = RowCtx { vars: &vars, row };
                    eval_expr(expr, ctx, caches)
                        .as_ref()
                        .and_then(ebv)
                        .unwrap_or(false)
                });
                Ok(t)
            }
            Plan::Extend(var, expr, p) => {
                let mut t = self.eval(p)?;
                let existing = t.column_index(var);
                let vars_snapshot = t.vars.clone();
                let mut new_column = Vec::with_capacity(t.rows.len());
                for row in &t.rows {
                    let ctx = RowCtx {
                        vars: &vars_snapshot,
                        row,
                    };
                    new_column.push(eval_expr(expr, ctx, &mut self.caches));
                }
                match existing {
                    Some(idx) => {
                        for (row, v) in t.rows.iter_mut().zip(new_column) {
                            row[idx] = v;
                        }
                    }
                    None => {
                        t.vars.push(var.clone());
                        for (row, v) in t.rows.iter_mut().zip(new_column) {
                            row.push(v);
                        }
                    }
                }
                Ok(t)
            }
            // `sorted_on` is a columnar-evaluator hint; hash-group here.
            Plan::Group {
                keys, aggs, input, ..
            } => {
                let t = self.eval(input)?;
                self.eval_group(keys, aggs, t)
            }
            Plan::Project(vars, p) => {
                let t = self.eval(p)?;
                let indices: Vec<Option<usize>> = vars.iter().map(|v| t.column_index(v)).collect();
                let mut out = SolutionTable::with_vars(vars.clone());
                out.rows = t
                    .rows
                    .into_iter()
                    .map(|row| {
                        indices
                            .iter()
                            .map(|i| i.and_then(|i| row[i].clone()))
                            .collect()
                    })
                    .collect();
                Ok(out)
            }
            // Sorted DISTINCT is the same keep-first bag; hash it here.
            Plan::Distinct(p) | Plan::SortedDistinct { input: p, .. } => {
                let mut t = self.eval(p)?;
                let mut seen: HashSet<Vec<Option<Term>>> = HashSet::with_capacity(t.rows.len());
                t.rows.retain(|row| seen.insert(row.clone()));
                Ok(t)
            }
            Plan::OrderBy(keys, p) => {
                let mut t = self.eval(p)?;
                self.sort_rows(&mut t, keys);
                Ok(t)
            }
            // The optimizer may fuse Slice∘OrderBy into TopK; the reference
            // evaluator keeps the unfused semantics: full sort, then cut.
            Plan::TopK { keys, k, input } => {
                let mut t = self.eval(input)?;
                self.sort_rows(&mut t, keys);
                t.rows.truncate(*k);
                Ok(t)
            }
            Plan::Slice {
                limit,
                offset,
                input,
            } => {
                let mut t = self.eval(input)?;
                // Shared clamped slice: `offset > len` yields an empty
                // table, and `offset + limit` saturates instead of
                // overflowing on adversarial LIMIT/OFFSET values.
                crate::results::slice_rows(&mut t.rows, *offset, *limit);
                Ok(t)
            }
        }
    }

    fn resolve_graphs(&self, graph: &GraphRef) -> Result<Vec<Arc<Graph>>> {
        let uris: Vec<&str> = match graph {
            GraphRef::Default => {
                if self.default_graphs.is_empty() {
                    // No FROM clause: the default graph is the union of all
                    // graphs in the dataset.
                    self.dataset.graph_uris().collect()
                } else {
                    self.default_graphs.iter().map(String::as_str).collect()
                }
            }
            GraphRef::Named(uri) => vec![uri.as_str()],
        };
        let mut graphs = Vec::with_capacity(uris.len());
        for uri in uris {
            let g = self
                .dataset
                .graph(uri)
                .ok_or_else(|| EngineError::UnknownGraph(uri.to_string()))?;
            graphs.push(Arc::clone(g));
        }
        Ok(graphs)
    }

    /// Index-nested-loop evaluation of a BGP in pattern order. Pushed
    /// filters cull the row set right after the pattern that binds their
    /// variable (same attachment rule as the id-native evaluators, so the
    /// `rows_scanned` work metric stays in exact agreement); being the
    /// term-materialized oracle, candidates are tested directly on terms.
    fn eval_bgp(
        &mut self,
        patterns: &[TriplePattern],
        graph: &GraphRef,
        filters: &[PushedFilter],
    ) -> Result<SolutionTable> {
        let graphs = self.resolve_graphs(graph)?;

        // Variable schema in first-mention order.
        let mut vars: Vec<String> = Vec::new();
        for p in patterns {
            for v in p.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let var_idx: HashMap<&str, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        // Shared attachment rule ([`crate::algebra::attach_filters`]).
        let pattern_filters = crate::algebra::attach_filters(patterns, filters, |v| var_idx[v]);

        let mut rows: Vec<Vec<Option<Term>>> = vec![vec![None; vars.len()]];
        for (pi, pattern) in patterns.iter().enumerate() {
            if rows.is_empty() {
                break;
            }
            let mut next: Vec<Vec<Option<Term>>> = Vec::new();
            for row in &rows {
                let mut scanned = 0u64;
                for g in &graphs {
                    scanned += self.extend_row_with_pattern(g, pattern, row, &var_idx, &mut next);
                }
                // Budget checkpoint between rows: the scan work this row
                // added, plus (when the periodic poll fires) the output
                // buffer's current size. `for_each_match` has no early
                // exit, so overshoot is bounded by one row's matches.
                if self.meter.charge_scan(scanned)? {
                    self.meter.charge_intermediate(
                        next.len() as u64,
                        term_table_bytes(next.len(), vars.len()),
                    )?;
                }
            }
            rows = next;
            // Per-pattern intermediates never reach the operator-output
            // chokepoint, so check each one here.
            self.meter
                .charge_intermediate(rows.len() as u64, term_table_bytes(rows.len(), vars.len()))?;
            if !pattern_filters[pi].is_empty() {
                let caches = &mut self.caches;
                let checks = &pattern_filters[pi];
                rows.retain(|row| {
                    checks.iter().all(|(col, f)| match &row[*col] {
                        Some(term) => eval_single_var_filter(&f.expr, &f.var, term, caches),
                        None => false,
                    })
                });
            }
        }
        Ok(SolutionTable { vars, rows })
    }

    /// Returns the number of index entries this pattern's scans visited
    /// (also accumulated into `rows_scanned`), so the caller can charge the
    /// budget meter per input row.
    fn extend_row_with_pattern(
        &mut self,
        graph: &Graph,
        pattern: &TriplePattern,
        row: &[Option<Term>],
        var_idx: &HashMap<&str, usize>,
        out: &mut Vec<Vec<Option<Term>>>,
    ) -> u64 {
        // Resolve each position: bound (graph TermId) or free (column index).
        enum Slot {
            Bound(TermId),
            Free(usize),
            Absent,
        }
        let resolve = |t: &PatternTerm| -> Slot {
            match t {
                PatternTerm::Var(v) => {
                    let idx = var_idx[v.as_str()];
                    match &row[idx] {
                        Some(term) => match graph.term_id(term) {
                            Some(id) => Slot::Bound(id),
                            None => Slot::Absent,
                        },
                        None => Slot::Free(idx),
                    }
                }
                PatternTerm::Const(term) => match graph.term_id(term) {
                    Some(id) => Slot::Bound(id),
                    None => Slot::Absent,
                },
            }
        };
        let s = resolve(&pattern.subject);
        let p = resolve(&pattern.predicate);
        let o = resolve(&pattern.object);
        if matches!(s, Slot::Absent) || matches!(p, Slot::Absent) || matches!(o, Slot::Absent) {
            return 0;
        }
        let pick = |slot: &Slot| match slot {
            Slot::Bound(id) => Some(*id),
            _ => None,
        };
        let (sb, pb, ob) = (pick(&s), pick(&p), pick(&o));
        let assign = |slot: &Slot, id: TermId, new_row: &mut Vec<Option<Term>>| {
            if let Slot::Free(idx) = slot {
                let term = graph.term(id).clone();
                match &new_row[*idx] {
                    // Same variable twice in one pattern (?x ?p ?x):
                    // later occurrences must agree.
                    Some(existing) => {
                        if *existing != term {
                            return false;
                        }
                    }
                    None => new_row[*idx] = Some(term),
                }
            }
            true
        };
        // Same allocation-free access path the id-native evaluator uses, so
        // wall-clock comparisons isolate the row-representation difference.
        let scanned = graph.for_each_match(sb, pb, ob, |ms, mp, mo| {
            let mut new_row = row.to_vec();
            let mut ok = true;
            ok &= assign(&s, ms, &mut new_row);
            ok &= assign(&p, mp, &mut new_row);
            ok &= assign(&o, mo, &mut new_row);
            if ok {
                out.push(new_row);
            }
        });
        self.rows_scanned += scanned;
        scanned
    }

    fn eval_group(
        &mut self,
        keys: &[String],
        aggs: &[AggSpec],
        input: SolutionTable,
    ) -> Result<SolutionTable> {
        let key_indices: Vec<Option<usize>> = keys.iter().map(|k| input.column_index(k)).collect();
        let vars_snapshot = input.vars.clone();

        // Group index: key tuple → position in `groups`.
        let mut index: HashMap<Vec<Option<Term>>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Option<Term>>, Vec<AggState>)> = Vec::new();

        let implicit_single_group = keys.is_empty();
        if implicit_single_group {
            index.insert(Vec::new(), 0);
            groups.push((
                Vec::new(),
                aggs.iter()
                    .map(|a| AggState::new(a.op, a.distinct))
                    .collect(),
            ));
        }

        // Rough per-group footprint (key terms + accumulator state) for the
        // memory axis: grouping state is the one allocation that grows
        // without a corresponding operator output until the loop ends.
        let group_bytes =
            (keys.len() as u64).saturating_mul(64) + (aggs.len() as u64).saturating_mul(64);
        for row in &input.rows {
            self.meter.charge_intermediate(
                groups.len() as u64,
                (groups.len() as u64).saturating_mul(group_bytes),
            )?;
            let key: Vec<Option<Term>> = key_indices
                .iter()
                .map(|i| i.and_then(|i| row[i].clone()))
                .collect();
            let gi = match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = groups.len();
                    index.insert(key.clone(), gi);
                    groups.push((
                        key,
                        aggs.iter()
                            .map(|a| AggState::new(a.op, a.distinct))
                            .collect(),
                    ));
                    gi
                }
            };
            let ctx = RowCtx {
                vars: &vars_snapshot,
                row,
            };
            for (state, spec) in groups[gi].1.iter_mut().zip(aggs) {
                match &spec.expr {
                    Some(e) => state.push(eval_expr(e, ctx, &mut self.caches)),
                    None => state.push_star(),
                }
            }
        }

        let mut out_vars: Vec<String> = keys.to_vec();
        out_vars.extend(aggs.iter().map(|a| a.output.clone()));
        let mut out = SolutionTable::with_vars(out_vars);
        for (key, states) in groups {
            let mut row = key;
            for state in states {
                row.push(state.finish());
            }
            out.rows.push(row);
        }
        Ok(out)
    }

    fn sort_rows(&mut self, table: &mut SolutionTable, keys: &[OrderKey]) {
        type KeyedRow = (Vec<Option<Term>>, Vec<Option<Term>>);
        let vars = table.vars.clone();
        // Precompute sort keys (expressions may be non-trivial).
        let mut keyed: Vec<KeyedRow> = table
            .rows
            .drain(..)
            .map(|row| {
                let computed: Vec<Option<Term>> = keys
                    .iter()
                    .map(|k| {
                        let ctx = RowCtx {
                            vars: &vars,
                            row: &row,
                        };
                        eval_expr(&k.expr, ctx, &mut self.caches)
                    })
                    .collect();
                (computed, row)
            })
            .collect();
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (key_spec, (a, b)) in keys.iter().zip(ka.iter().zip(kb.iter())) {
                let ord = match (a, b) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(a), Some(b)) => a.order_cmp(b),
                };
                let ord = if key_spec.ascending {
                    ord
                } else {
                    ord.reverse()
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        table.rows = keyed.into_iter().map(|(_, row)| row).collect();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Left,
}

/// Hash join with SPARQL compatibility semantics.
///
/// Key selection: the shared variables bound in *every* row of both inputs
/// form the hash key; remaining shared variables are checked per candidate
/// pair with unbound-is-compatible semantics. Falls back to nested loop when
/// no always-bound shared variable exists.
///
/// The output rows are the allocation a cross-product-shaped join balloons
/// through, so both probe strategies check them against the budget between
/// left rows (overshoot bounded by one left row's candidates).
fn join(
    left: SolutionTable,
    right: SolutionTable,
    kind: JoinKind,
    meter: &mut BudgetMeter,
) -> Result<SolutionTable> {
    let shared: Vec<String> = left
        .vars
        .iter()
        .filter(|v| right.vars.contains(v))
        .cloned()
        .collect();

    let mut out_vars = left.vars.clone();
    for v in &right.vars {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
        }
    }
    let width = out_vars.len();

    let l_idx: Vec<usize> = shared
        .iter()
        .map(|v| left.column_index(v).expect("shared var in left"))
        .collect();
    let r_idx: Vec<usize> = shared
        .iter()
        .map(|v| right.column_index(v).expect("shared var in right"))
        .collect();

    let always_bound =
        |table: &SolutionTable, idx: usize| -> bool { table.rows.iter().all(|r| r[idx].is_some()) };
    // Positions (within `shared`) usable as hash key.
    let key_positions: Vec<usize> = (0..shared.len())
        .filter(|&k| always_bound(&left, l_idx[k]) && always_bound(&right, r_idx[k]))
        .collect();

    // Precompute merge schema: for each right column, its target index in out.
    let right_targets: Vec<usize> = right
        .vars
        .iter()
        .map(|v| {
            out_vars
                .iter()
                .position(|x| x == v)
                .expect("right var in out")
        })
        .collect();
    let mut out = SolutionTable::with_vars(out_vars);

    let merge = |l_row: &[Option<Term>], r_row: &[Option<Term>]| -> Vec<Option<Term>> {
        let mut row = l_row.to_vec();
        row.resize(width, None);
        for (ri, &target) in right_targets.iter().enumerate() {
            if row[target].is_none() {
                row[target] = r_row[ri].clone();
            }
        }
        row
    };
    let compatible = |l_row: &[Option<Term>], r_row: &[Option<Term>]| -> bool {
        for k in 0..shared.len() {
            if let (Some(a), Some(b)) = (&l_row[l_idx[k]], &r_row[r_idx[k]]) {
                if a != b {
                    return false;
                }
            }
        }
        true
    };

    if !key_positions.is_empty() || shared.is_empty() {
        // Build hash index on the right side.
        let mut table: HashMap<Vec<&Term>, Vec<usize>> = HashMap::new();
        for (ri, r_row) in right.rows.iter().enumerate() {
            let key: Vec<&Term> = key_positions
                .iter()
                .map(|&k| r_row[r_idx[k]].as_ref().expect("always bound"))
                .collect();
            table.entry(key).or_default().push(ri);
        }
        for l_row in &left.rows {
            let key: Vec<&Term> = key_positions
                .iter()
                .map(|&k| l_row[l_idx[k]].as_ref().expect("always bound"))
                .collect();
            let mut matched = false;
            if let Some(candidates) = table.get(&key) {
                for &ri in candidates {
                    let r_row = &right.rows[ri];
                    if compatible(l_row, r_row) {
                        out.rows.push(merge(l_row, r_row));
                        matched = true;
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = l_row.clone();
                row.resize(width, None);
                out.rows.push(row);
            }
            meter.charge_intermediate(
                out.rows.len() as u64,
                term_table_bytes(out.rows.len(), width),
            )?;
        }
    } else {
        // Nested loop with compatibility semantics.
        for l_row in &left.rows {
            let mut matched = false;
            for r_row in &right.rows {
                if compatible(l_row, r_row) {
                    out.rows.push(merge(l_row, r_row));
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = l_row.clone();
                row.resize(width, None);
                out.rows.push(row);
            }
            meter.charge_intermediate(
                out.rows.len() as u64,
                term_table_bytes(out.rows.len(), width),
            )?;
        }
    }
    Ok(out)
}

/// Bag union with schema alignment.
fn union(left: SolutionTable, right: SolutionTable) -> SolutionTable {
    let mut vars = left.vars.clone();
    for v in &right.vars {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let map_right: Vec<usize> = right
        .vars
        .iter()
        .map(|v| vars.iter().position(|x| x == v).expect("var present"))
        .collect();
    let width = vars.len();
    let mut out = SolutionTable::with_vars(vars);
    for mut row in left.rows {
        row.resize(width, None);
        out.rows.push(row);
    }
    for row in right.rows {
        let mut new_row = vec![None; out.vars.len()];
        for (ri, v) in row.into_iter().enumerate() {
            new_row[map_right[ri]] = v;
        }
        out.rows.push(new_row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tbl(vars: &[&str], rows: Vec<Vec<Option<Term>>>) -> SolutionTable {
        SolutionTable {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    fn i(v: i64) -> Option<Term> {
        Some(Term::integer(v))
    }

    #[test]
    fn inner_join_on_shared() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(10)], vec![i(2), i(20)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)], vec![i(3), i(300)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.vars, vec!["x", "y", "z"]);
        assert_eq!(j.rows, vec![vec![i(1), i(10), i(100)]]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)]]);
        let j = join(a, b, JoinKind::Left, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.rows.len(), 2);
        assert_eq!(j.rows[1], vec![i(2), None]);
    }

    #[test]
    fn join_with_partially_unbound_shared_var() {
        // 'g' is shared but sometimes unbound on the left (e.g. OPTIONAL
        // output): unbound is compatible with anything.
        let a = tbl(&["x", "g"], vec![vec![i(1), None], vec![i(2), i(9)]]);
        let b = tbl(&["x", "g"], vec![vec![i(1), i(7)], vec![i(2), i(8)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        // Row (1, None) joins (1, 7) → (1, 7); row (2, 9) vs (2, 8) clash.
        assert_eq!(j.rows, vec![vec![i(1), i(7)]]);
    }

    #[test]
    fn cross_product_when_no_shared() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["y"], vec![vec![i(3)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.rows.len(), 2);
    }

    #[test]
    fn union_aligns_schemas() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(2)]]);
        let b = tbl(&["y", "z"], vec![vec![i(5), i(6)]]);
        let u = union(a, b);
        assert_eq!(u.vars, vec!["x", "y", "z"]);
        assert_eq!(u.rows[0], vec![i(1), i(2), None]);
        assert_eq!(u.rows[1], vec![None, i(5), i(6)]);
    }

    #[test]
    fn bag_semantics_preserved() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let b = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        // 2 × 2 duplicates → 4 rows.
        assert_eq!(j.rows.len(), 4);
    }
}
