//! Engine error type.

use std::fmt;

use crate::budget::ResourceKind;

/// Errors raised while parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Lexical / syntactic error in the query text.
    Parse {
        /// Byte offset where the error was detected.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// Query is syntactically valid but violates SPARQL rules (e.g. bare
    /// variable projected from an aggregated query).
    Semantic(String),
    /// A `FROM` / `GRAPH` clause referenced a graph not in the dataset.
    UnknownGraph(String),
    /// Propagated RDF model error (bad IRI, unknown prefix, ...).
    Model(String),
    /// Evaluation exceeded a [`crate::budget::QueryBudget`] axis. For
    /// [`ResourceKind::Deadline`] the limit and observed values are in
    /// milliseconds; other axes count rows or bytes.
    ResourceExhausted {
        /// Which budget axis tripped.
        resource: ResourceKind,
        /// The configured limit.
        limit: u64,
        /// The observed value at the check that tripped (may overshoot
        /// the limit by up to one hot-loop iteration).
        observed: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            EngineError::Semantic(m) => write!(f, "semantic error: {m}"),
            EngineError::UnknownGraph(g) => write!(f, "unknown graph: {g}"),
            EngineError::Model(m) => write!(f, "model error: {m}"),
            EngineError::ResourceExhausted {
                resource,
                limit,
                observed,
            } => write!(
                f,
                "resource exhausted: {resource} limit {limit} exceeded (observed {observed})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<rdf_model::ModelError> for EngineError {
    fn from(e: rdf_model::ModelError) -> Self {
        EngineError::Model(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;
