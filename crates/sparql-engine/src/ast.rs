//! Abstract syntax tree for parsed SPARQL SELECT queries.
//!
//! Prefixed names are expanded to full IRIs during parsing, so the AST only
//! carries absolute IRIs. Expressions and aggregates are shared with the
//! algebra layer (the translation is mostly structural).

use rdf_model::Term;

/// A term position in a triple pattern: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    /// `?name` variable.
    Var(String),
    /// Concrete RDF term (IRI, literal, blank node).
    Const(Term),
}

impl PatternTerm {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: PatternTerm,
    /// Predicate position.
    pub predicate: PatternTerm,
    /// Object position.
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Construct a pattern.
    pub fn new(subject: PatternTerm, predicate: PatternTerm, object: PatternTerm) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Variables mentioned by this pattern, in S-P-O order.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| t.as_var())
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Built-in functions supported by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Func {
    /// `STR(x)` — lexical form.
    Str,
    /// `LANG(x)` — language tag or "".
    Lang,
    /// `DATATYPE(x)`.
    Datatype,
    /// `BOUND(?x)`.
    Bound,
    /// `isIRI`/`isURI`.
    IsIri,
    /// `isLiteral`.
    IsLiteral,
    /// `isBlank`.
    IsBlank,
    /// `REGEX(text, pattern [, flags])`.
    Regex,
    /// `YEAR(dateTime)`.
    Year,
    /// `MONTH(dateTime)`.
    Month,
    /// `DAY(dateTime)`.
    Day,
    /// Datatype cast written as a function call on a datatype IRI, e.g.
    /// `xsd:dateTime(?date)`. Payload is the datatype IRI.
    Cast(String),
}

/// Aggregate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// `COUNT`
    Count,
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `SAMPLE`
    Sample,
}

/// A SPARQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Constant term.
    Const(Term),
    /// `a && b`
    And(Box<Expr>, Box<Expr>),
    /// `a || b`
    Or(Box<Expr>, Box<Expr>),
    /// `!a`
    Not(Box<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `expr IN (e1, e2, ...)`; `negated` for `NOT IN`.
    In {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// Built-in function call.
    Call(Func, Vec<Expr>),
    /// Aggregate expression (valid in SELECT/HAVING/ORDER BY of a grouped
    /// query). `expr` is `None` for `COUNT(*)`.
    Aggregate {
        /// Aggregate operation.
        op: AggOp,
        /// `DISTINCT` modifier.
        distinct: bool,
        /// Aggregated expression; `None` means `*`.
        expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Collect non-aggregate variables referenced by the expression.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) | Expr::Neg(a) => a.collect_vars(out),
            Expr::In { expr, list, .. } => {
                expr.collect_vars(out);
                for e in list {
                    e.collect_vars(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Aggregate { expr, .. } => {
                if let Some(e) = expr {
                    e.collect_vars(out);
                }
            }
        }
    }

    /// Does the expression contain an aggregate anywhere?
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Var(_) | Expr::Const(_) => false,
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expr::Not(a) | Expr::Neg(a) => a.has_aggregate(),
            Expr::In { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Call(_, args) => args.iter().any(Expr::has_aggregate),
        }
    }
}

/// One item of the SELECT clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain variable.
    Var(String),
    /// `(expr AS ?var)` — possibly containing aggregates.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Target variable name.
        alias: String,
    },
}

/// The SELECT projection: `*` or an explicit item list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// One element of a group graph pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElem {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `FILTER expr` (applies to the whole group).
    Filter(Expr),
    /// `OPTIONAL { ... }`.
    Optional(GroupGraphPattern),
    /// `{A} UNION {B} (UNION {C})*`.
    Union(Vec<GroupGraphPattern>),
    /// A plain nested group `{ ... }`.
    Group(GroupGraphPattern),
    /// A nested `SELECT` subquery.
    SubSelect(Box<SelectQuery>),
    /// `GRAPH <uri> { ... }`.
    Graph(String, GroupGraphPattern),
    /// `BIND(expr AS ?var)`.
    Bind(Expr, String),
}

/// A `{ ... }` group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupGraphPattern {
    /// Elements in source order.
    pub elems: Vec<PatternElem>,
}

impl GroupGraphPattern {
    /// Variables visible (in scope) outside this group, per the SPARQL
    /// variable-scope rules (filters don't bind; subselects expose only
    /// their projection).
    pub fn in_scope_vars(&self, out: &mut Vec<String>) {
        fn push(out: &mut Vec<String>, v: &str) {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
        for elem in &self.elems {
            match elem {
                PatternElem::Triple(t) => {
                    for v in t.variables() {
                        push(out, v);
                    }
                }
                PatternElem::Filter(_) => {}
                PatternElem::Optional(g) | PatternElem::Group(g) | PatternElem::Graph(_, g) => {
                    g.in_scope_vars(out)
                }
                PatternElem::Union(branches) => {
                    for b in branches {
                        b.in_scope_vars(out);
                    }
                }
                PatternElem::SubSelect(q) => {
                    for v in q.projected_vars() {
                        push(out, &v);
                    }
                }
                PatternElem::Bind(_, v) => push(out, v),
            }
        }
    }
}

/// Sort direction plus key expression.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression (usually a variable).
    pub expr: Expr,
    /// Ascending?
    pub ascending: bool,
}

/// A parsed SELECT query (top-level or subquery).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection.
    pub projection: Projection,
    /// `FROM` graph IRIs (empty in subqueries; they inherit).
    pub from: Vec<String>,
    /// The WHERE pattern.
    pub pattern: GroupGraphPattern,
    /// `GROUP BY` variables (we support variable keys, which is all
    /// RDFFrames generates).
    pub group_by: Vec<String>,
    /// `HAVING` constraints (may contain aggregates).
    pub having: Vec<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// Does this query aggregate (explicit GROUP BY or aggregates in the
    /// projection/HAVING)?
    pub fn is_aggregated(&self) -> bool {
        if !self.group_by.is_empty() || !self.having.is_empty() {
            return true;
        }
        match &self.projection {
            Projection::Star => false,
            Projection::Items(items) => items.iter().any(|i| match i {
                SelectItem::Var(_) => false,
                SelectItem::Expr { expr, .. } => expr.has_aggregate(),
            }),
        }
    }

    /// Names of the variables this query projects (resolving `*` against the
    /// pattern's in-scope variables).
    pub fn projected_vars(&self) -> Vec<String> {
        match &self.projection {
            Projection::Star => {
                let mut vars = Vec::new();
                self.pattern.in_scope_vars(&mut vars);
                vars
            }
            Projection::Items(items) => items
                .iter()
                .map(|i| match i {
                    SelectItem::Var(v) => v.clone(),
                    SelectItem::Expr { alias, .. } => alias.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> PatternTerm {
        PatternTerm::Var(v.into())
    }

    #[test]
    fn triple_vars() {
        let t = TriplePattern::new(
            var("s"),
            PatternTerm::Const(Term::iri("http://p")),
            var("o"),
        );
        let vs: Vec<_> = t.variables().collect();
        assert_eq!(vs, vec!["s", "o"]);
    }

    #[test]
    fn in_scope_vars_through_union_and_optional() {
        let g = GroupGraphPattern {
            elems: vec![
                PatternElem::Triple(TriplePattern::new(var("a"), var("p"), var("b"))),
                PatternElem::Optional(GroupGraphPattern {
                    elems: vec![PatternElem::Triple(TriplePattern::new(
                        var("a"),
                        var("q"),
                        var("c"),
                    ))],
                }),
                PatternElem::Union(vec![
                    GroupGraphPattern {
                        elems: vec![PatternElem::Triple(TriplePattern::new(
                            var("a"),
                            var("r"),
                            var("d"),
                        ))],
                    },
                    GroupGraphPattern {
                        elems: vec![PatternElem::Triple(TriplePattern::new(
                            var("a"),
                            var("r"),
                            var("e"),
                        ))],
                    },
                ]),
            ],
        };
        let mut vars = Vec::new();
        g.in_scope_vars(&mut vars);
        assert_eq!(vars, vec!["a", "p", "b", "q", "c", "r", "d", "e"]);
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Aggregate {
                op: AggOp::Count,
                distinct: true,
                expr: Some(Box::new(Expr::Var("movie".into()))),
            }),
            Box::new(Expr::Const(Term::integer(50))),
        );
        assert!(e.has_aggregate());
        let q = SelectQuery {
            distinct: false,
            projection: Projection::Items(vec![SelectItem::Expr {
                expr: e,
                alias: "c".into(),
            }]),
            from: vec![],
            pattern: GroupGraphPattern::default(),
            group_by: vec![],
            having: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert!(q.is_aggregated());
    }
}
