//! Public engine API.
//!
//! [`Engine`] holds a dataset and a configuration and turns SPARQL text into
//! a [`SolutionTable`]: parse → algebra → (optional) optimize → evaluate.
//!
//! Evaluation is columnar and id-native by default: the whole pipeline runs
//! on `u32` [`rdf_model::TermId`]s in struct-of-arrays batches and terms are
//! materialized once at the end (see [`crate::eval`]). Two earlier
//! evaluators are kept selectable for differential testing and baseline
//! benchmarking: the PR 1 row-at-a-time id-native pipeline
//! ([`EvalMode::IdNative`], [`crate::eval_rows`]) and the seed
//! term-materialized one ([`EvalMode::TermReference`],
//! [`crate::eval_reference`]). All three produce identical bags and
//! identical `rows_scanned` work counts.

use std::sync::Arc;

use rdf_model::Dataset;

use crate::algebra::translate_query;
use crate::error::Result;
use crate::eval::Evaluator;
use crate::eval_reference::ReferenceEvaluator;
use crate::eval_rows::RowEvaluator;
use crate::optimizer::Optimizer;
use crate::parser::parse_query;
use crate::results::SolutionTable;

/// Which evaluator executes plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Columnar id-native pipeline (struct-of-arrays [`crate::results::IdTable`],
    /// vectorized BGP extension and joins): the default.
    #[default]
    Columnar,
    /// The PR 1 row-at-a-time id-native pipeline (rows of `Option<TermId>`),
    /// kept as a correctness oracle and perf baseline.
    IdNative,
    /// The seed term-materialized evaluator, kept as a correctness oracle
    /// and perf baseline.
    TermReference,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Enable statistics-driven BGP reordering. Disabling it models an
    /// engine whose optimizer takes queries literally (useful for the
    /// ablation experiments).
    pub optimize: bool,
    /// Evaluator selection (columnar unless testing against an oracle).
    pub eval_mode: EvalMode,
}

impl EngineConfig {
    /// The default configuration: optimizer on, columnar evaluation.
    pub fn new() -> Self {
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::Columnar,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new()
    }
}

/// Execution statistics for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Index entries scanned during evaluation.
    pub rows_scanned: u64,
}

/// A SPARQL engine over an in-memory dataset.
#[derive(Debug, Clone)]
pub struct Engine {
    dataset: Arc<Dataset>,
    config: EngineConfig,
}

impl Engine {
    /// Engine with the default configuration (optimizer on, columnar).
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Engine {
            dataset,
            config: EngineConfig::new(),
        }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(dataset: Arc<Dataset>, config: EngineConfig) -> Self {
        Engine { dataset, config }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Parse, plan, and evaluate a SELECT query.
    pub fn execute(&self, query: &str) -> Result<SolutionTable> {
        self.execute_with_stats(query).map(|(t, _)| t)
    }

    /// Like [`Engine::execute`], also returning work statistics.
    pub fn execute_with_stats(&self, query: &str) -> Result<(SolutionTable, ExecStats)> {
        self.run(query, None)
    }

    /// Execute and return only rows `[offset, offset+limit)` of the result.
    ///
    /// On the id-native path the slice happens *before* term
    /// materialization, so a paginating endpoint only pays for the rows it
    /// actually ships.
    pub fn execute_page(
        &self,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<(SolutionTable, ExecStats)> {
        self.run(query, Some((offset, limit)))
    }

    fn run(
        &self,
        query: &str,
        page: Option<(usize, usize)>,
    ) -> Result<(SolutionTable, ExecStats)> {
        let parsed = parse_query(query)?;
        let mut plan = translate_query(&parsed)?;
        if self.config.optimize {
            let mut optimizer = Optimizer::new(&self.dataset, &parsed.from);
            optimizer.optimize(&mut plan);
        }
        match self.config.eval_mode {
            EvalMode::Columnar => {
                let mut evaluator = Evaluator::new(&self.dataset, parsed.from.clone());
                let table = match page {
                    None => evaluator.eval(&plan)?,
                    Some((offset, limit)) => evaluator.eval_page(&plan, offset, limit)?,
                };
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                };
                Ok((table, stats))
            }
            EvalMode::IdNative => {
                let mut evaluator = RowEvaluator::new(&self.dataset, parsed.from.clone());
                let table = match page {
                    None => evaluator.eval(&plan)?,
                    Some((offset, limit)) => evaluator.eval_page(&plan, offset, limit)?,
                };
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                };
                Ok((table, stats))
            }
            EvalMode::TermReference => {
                let mut evaluator = ReferenceEvaluator::new(&self.dataset, parsed.from.clone());
                let mut table = evaluator.eval(&plan)?;
                if let Some((offset, limit)) = page {
                    crate::results::slice_rows(&mut table.rows, offset, Some(limit));
                }
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                };
                Ok((table, stats))
            }
        }
    }
}
