//! Public engine API.
//!
//! [`Engine`] holds a dataset and a configuration and turns SPARQL text into
//! a [`SolutionTable`]: parse → algebra → (optional) optimize → evaluate.
//!
//! Two execution surfaces exist on top of that pipeline:
//!
//! - **String queries**: [`Engine::execute`] / [`Engine::execute_page`]
//!   parse and plan per call — the HTTP-faithful contract the paper's
//!   endpoint simulation needs. [`Engine::prepare`] factors the parse +
//!   translate + optimize front half into a reusable [`PreparedQuery`] so a
//!   paginating endpoint stops re-planning the same text per chunk
//!   (re-*evaluation* per chunk remains, as a cursor-less HTTP server
//!   requires).
//! - **Embedded plans**: [`Engine::prepare_plan`] accepts an
//!   already-compiled [`Plan`] (no SPARQL text anywhere), and
//!   [`Engine::cursor`] evaluates a prepared query *once* and yields the
//!   result as columnar [`TermId`] batches ([`QueryCursor`] /
//!   [`ColumnBatch`]) instead of a fully `Term`-materialized table — the
//!   in-process fast path for clients that consume columns.
//!
//! Evaluation is columnar and id-native by default: the whole pipeline runs
//! on `u32` [`rdf_model::TermId`]s in struct-of-arrays batches and terms are
//! materialized once at the end (see [`crate::eval`]). Two earlier
//! evaluators are kept selectable for differential testing and baseline
//! benchmarking: the PR 1 row-at-a-time id-native pipeline
//! ([`EvalMode::IdNative`], [`crate::eval_rows`]) and the seed
//! term-materialized one ([`EvalMode::TermReference`],
//! [`crate::eval_reference`]). All three produce identical bags and
//! identical `rows_scanned` work counts.

use std::sync::Arc;

use rdf_model::{Dataset, Term, TermId};

use crate::algebra::{translate_query, Plan};
use crate::budget::{BudgetMeter, QueryBudget};
use crate::error::Result;
use crate::eval::pipeline::{self, BoxOp};
use crate::eval::Evaluator;
use crate::eval_reference::ReferenceEvaluator;
use crate::eval_rows::RowEvaluator;
use crate::optimizer::Optimizer;
use crate::parser::parse_query;
use crate::pool::TermPool;
use crate::results::{IdTable, SolutionTable};

/// Which evaluator executes plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Columnar id-native pipeline (struct-of-arrays [`crate::results::IdTable`],
    /// vectorized BGP extension and joins): the default.
    #[default]
    Columnar,
    /// The PR 1 row-at-a-time id-native pipeline (rows of `Option<TermId>`),
    /// kept as a correctness oracle and perf baseline.
    IdNative,
    /// The seed term-materialized evaluator, kept as a correctness oracle
    /// and perf baseline.
    TermReference,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Enable the optimizer (BGP reordering, TopK fusion, and — gated by
    /// the flags below — FILTER pushdown and merge joins). Disabling it
    /// models an engine that takes queries literally (useful for the
    /// ablation experiments).
    pub optimize: bool,
    /// Evaluator selection (columnar unless testing against an oracle).
    pub eval_mode: EvalMode,
    /// Sink single-variable FILTER conjuncts into the BGP extension loop
    /// (no effect with `optimize` off). Pure physical rewrite; results are
    /// identical either way.
    pub filter_pushdown: bool,
    /// Rewrite inner hash joins into merge joins when interesting-order
    /// tracking proves both inputs sorted on the join key (no effect with
    /// `optimize` off). Pure physical rewrite.
    pub merge_joins: bool,
    /// Rewrite left (OPTIONAL) hash joins into merge left joins under the
    /// same condition (no effect with `optimize` off). Pure physical
    /// rewrite: unmatched left rows are emitted in place either way.
    pub merge_left_joins: bool,
    /// Deduplicate DISTINCT by linear run detection when the input arrives
    /// sorted on a sequence covering every output column (no effect with
    /// `optimize` off; columnar evaluator only). Pure physical rewrite.
    pub sorted_distinct: bool,
    /// Group by linear run detection when the grouping keys are a prefix of
    /// the input's sort order (no effect with `optimize` off; columnar
    /// evaluator only). Pure physical rewrite.
    pub sorted_group_by: bool,
    /// Sort `ORDER BY ?var` by the dataset's cached term-rank permutation
    /// instead of materializing per-row key terms (columnar evaluator
    /// only). Pure physical rewrite.
    pub rank_order_by: bool,
    /// Resource limits enforced cooperatively during evaluation (all axes
    /// optional; the default is unlimited, which keeps the meter to a single
    /// branch per check). Violations surface as
    /// [`crate::error::EngineError::ResourceExhausted`] — never a panic.
    ///
    /// The deadline clock starts when an evaluator is created for a query,
    /// so each `execute_*`/`cursor` call gets the full allowance.
    pub budget: QueryBudget,
    /// Worker threads for the columnar evaluator's parallel operators (BGP
    /// extension, single-key hash join, mergeable GROUP BY). `1` (the
    /// default) runs fully sequential; `n > 1` fans large inputs out over a
    /// shared work-stealing pool. Results are byte-identical at any thread
    /// count, and `rows_scanned` parity is exact. The oracle evaluators
    /// ([`EvalMode::IdNative`], [`EvalMode::TermReference`]) always run
    /// sequentially.
    pub threads: usize,
    /// Run [`Engine::cursor`] queries through the pull-based streaming
    /// operator pipeline (bounded live state: each batch is produced on
    /// demand, operators hold only their own state) instead of eagerly
    /// materializing the whole result up front. Results, result order, and
    /// `rows_scanned` are identical either way (the LIMIT early-exit is the
    /// one documented scan-count exception); this flag only changes *when*
    /// work happens and how much memory is live. Affects only the cursor
    /// path — `execute*` always materializes, that is its contract.
    pub streaming: bool,
}

impl EngineConfig {
    /// The default configuration: optimizer on (all rewrites), columnar
    /// evaluation. Thread count comes from `RDFFRAMES_THREADS` when set
    /// (so whole test suites can re-run parallel without code changes),
    /// defaulting to 1.
    pub fn new() -> Self {
        let threads = std::env::var("RDFFRAMES_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        EngineConfig {
            optimize: true,
            eval_mode: EvalMode::Columnar,
            filter_pushdown: true,
            merge_joins: true,
            merge_left_joins: true,
            sorted_distinct: true,
            sorted_group_by: true,
            rank_order_by: true,
            budget: QueryBudget::unlimited(),
            threads,
            streaming: true,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new()
    }
}

/// Execution statistics for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Index entries scanned during evaluation.
    pub rows_scanned: u64,
    /// Inner joins that executed as order-preserving merge joins instead of
    /// hash joins (columnar evaluator only; the oracle evaluators always
    /// hash).
    pub merge_joins: u64,
    /// Left (OPTIONAL) joins that executed as order-preserving merge joins
    /// (columnar evaluator only).
    pub merge_left_joins: u64,
    /// DISTINCT operators that deduplicated by linear run detection over
    /// sorted input instead of hashing (columnar evaluator only).
    pub sorted_distincts: u64,
    /// GROUP BY operators that grouped by linear run detection over sorted
    /// input instead of hashing (columnar evaluator only).
    pub sorted_groups: u64,
    /// Configured worker count the query ran with (1 = sequential).
    pub par_workers: u64,
    /// Chunks processed by parallel operator runs (0 when sequential or
    /// every input stayed under the parallel threshold).
    pub par_chunks: u64,
    /// Chunk tasks executed by a worker other than the one they were queued
    /// on (work stealing actually rebalanced).
    pub par_steals: u64,
    /// Nanoseconds spent folding parallel chunk results back together in
    /// chunk order (the deterministic merge phases).
    pub par_merge_nanos: u64,
    /// Peak rows simultaneously live across the cursor's operator pipeline
    /// (operator state plus the batch being emitted), sampled after every
    /// batch. On the streaming path this is O(batch size + breaker state),
    /// not O(result); on the materializing path it is the full result size.
    /// Zero on the `execute*` paths, which don't track liveness.
    pub peak_live_rows: u64,
    /// Peak estimated heap bytes simultaneously live (same sampling as
    /// [`ExecStats::peak_live_rows`]).
    pub peak_live_bytes: u64,
    /// Batches the cursor handed to the consumer (zero on `execute*`).
    pub batches_emitted: u64,
}

/// A query that has been parsed, translated, and optimized once and can be
/// executed any number of times (the plan is immutable; evaluation state
/// lives in per-call evaluators).
///
/// Produced by [`Engine::prepare`] (from SPARQL text) or
/// [`Engine::prepare_plan`] (from a directly-compiled [`Plan`], bypassing
/// strings entirely).
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    plan: Plan,
    from: Vec<String>,
}

impl PreparedQuery {
    /// The (optimized) logical plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Graphs resolving [`crate::algebra::GraphRef::Default`] BGPs (the
    /// query's `FROM` list; empty = whole dataset).
    pub fn from_graphs(&self) -> &[String] {
        &self.from
    }
}

/// A SPARQL engine over an in-memory dataset.
#[derive(Debug, Clone)]
pub struct Engine {
    dataset: Arc<Dataset>,
    config: EngineConfig,
}

impl Engine {
    /// Engine with the default configuration (optimizer on, columnar).
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Engine {
            dataset,
            config: EngineConfig::new(),
        }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(dataset: Arc<Dataset>, config: EngineConfig) -> Self {
        Engine { dataset, config }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Mutable access to the dataset when this engine is its sole owner
    /// (`None` if the `Arc` is shared — clone-free ingestion only works on
    /// an exclusively-held engine). This is the supported way to
    /// [`Dataset::append_triples`] behind a live engine; plan caches detect
    /// the mutation through [`Dataset::stats_generation`].
    pub fn dataset_mut(&mut self) -> Option<&mut Dataset> {
        Arc::get_mut(&mut self.dataset)
    }

    /// The engine's configuration (read-only; construct a new engine to
    /// change it).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Parse, translate, and (per configuration) optimize a SELECT query
    /// into a reusable [`PreparedQuery`].
    pub fn prepare(&self, query: &str) -> Result<PreparedQuery> {
        let parsed = parse_query(query)?;
        let plan = translate_query(&parsed)?;
        Ok(self.prepare_plan(plan, parsed.from))
    }

    /// Prepare an already-translated plan (the embedded path: the plan was
    /// compiled straight from a client-side query model, no SPARQL text
    /// involved). Applies the same optimizer pass string queries get.
    pub fn prepare_plan(&self, mut plan: Plan, from: Vec<String>) -> PreparedQuery {
        if self.config.optimize {
            let mut optimizer = Optimizer::new(&self.dataset, &from)
                .with_filter_pushdown(self.config.filter_pushdown)
                .with_merge_joins(self.config.merge_joins)
                .with_merge_left_joins(self.config.merge_left_joins)
                .with_sorted_distinct(self.config.sorted_distinct)
                .with_sorted_group_by(self.config.sorted_group_by);
            optimizer.optimize(&mut plan);
        }
        PreparedQuery { plan, from }
    }

    /// Parse, plan, and evaluate a SELECT query.
    pub fn execute(&self, query: &str) -> Result<SolutionTable> {
        self.execute_with_stats(query).map(|(t, _)| t)
    }

    /// Like [`Engine::execute`], also returning work statistics.
    pub fn execute_with_stats(&self, query: &str) -> Result<(SolutionTable, ExecStats)> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared, None)
    }

    /// Execute and return only rows `[offset, offset+limit)` of the result.
    ///
    /// On the id-native path the slice happens *before* term
    /// materialization, so a paginating endpoint only pays for the rows it
    /// actually ships.
    pub fn execute_page(
        &self,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<(SolutionTable, ExecStats)> {
        let prepared = self.prepare(query)?;
        self.execute_prepared(&prepared, Some((offset, limit)))
    }

    /// Evaluate a prepared query, optionally materializing only the page
    /// `[offset, offset+limit)`. Each call re-evaluates from scratch (the
    /// HTTP pagination model); the saving over [`Engine::execute_page`] is
    /// the parse + translate + optimize front half.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        page: Option<(usize, usize)>,
    ) -> Result<(SolutionTable, ExecStats)> {
        let plan = &prepared.plan;
        match self.config.eval_mode {
            EvalMode::Columnar => {
                let mut evaluator = Evaluator::new(&self.dataset, prepared.from.clone());
                evaluator.set_rank_sort(self.config.rank_order_by);
                evaluator.set_budget(&self.config.budget);
                evaluator.set_threads(self.config.threads);
                let table = match page {
                    None => evaluator.eval(plan)?,
                    Some((offset, limit)) => evaluator.eval_page(plan, offset, limit)?,
                };
                let par = evaluator.par_stats();
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                    merge_joins: evaluator.merge_joins(),
                    merge_left_joins: evaluator.merge_left_joins(),
                    sorted_distincts: evaluator.sorted_distincts(),
                    sorted_groups: evaluator.sorted_groups(),
                    par_workers: evaluator.threads() as u64,
                    par_chunks: par.chunks,
                    par_steals: par.steals,
                    par_merge_nanos: par.merge_nanos,
                    ..ExecStats::default()
                };
                Ok((table, stats))
            }
            EvalMode::IdNative => {
                let mut evaluator = RowEvaluator::new(&self.dataset, prepared.from.clone());
                evaluator.set_budget(&self.config.budget);
                let table = match page {
                    None => evaluator.eval(plan)?,
                    Some((offset, limit)) => evaluator.eval_page(plan, offset, limit)?,
                };
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                    ..ExecStats::default()
                };
                Ok((table, stats))
            }
            EvalMode::TermReference => {
                let mut evaluator = ReferenceEvaluator::new(&self.dataset, prepared.from.clone());
                evaluator.set_budget(&self.config.budget);
                let mut table = evaluator.eval(plan)?;
                if let Some((offset, limit)) = page {
                    crate::results::slice_rows(&mut table.rows, offset, Some(limit));
                }
                let stats = ExecStats {
                    rows_scanned: evaluator.rows_scanned(),
                    ..ExecStats::default()
                };
                Ok((table, stats))
            }
        }
    }

    /// Open a [`QueryCursor`] over a prepared query, yielding the result as
    /// columnar id batches of at most `batch_rows` rows. No [`Term`] is
    /// materialized by the engine; the consumer decodes ids through the
    /// cursor's pool (typically once per *distinct* id).
    ///
    /// With [`EngineConfig::streaming`] on (the default) the plan compiles
    /// into a pull-based operator pipeline and each `next_batch` call does
    /// just enough work to produce one batch: live memory stays bounded by
    /// the batch size plus any pipeline breaker's own state, and a `LIMIT`
    /// stops pulling (and therefore scanning) as soon as it is satisfied.
    /// With it off, evaluation is eager — the whole result materializes
    /// here and batches are windows over it. Both modes produce
    /// byte-identical batches in the same order.
    ///
    /// The cursor always runs the columnar evaluator — the id-table layout
    /// *is* the interface — regardless of the configured [`EvalMode`] (the
    /// oracle modes exist for differential testing of the string path).
    pub fn cursor<'a>(
        &'a self,
        prepared: &'a PreparedQuery,
        batch_rows: usize,
    ) -> Result<QueryCursor<'a>> {
        // The cursor keeps its own meter (sharing the evaluation's deadline
        // clock, started here) so a consumer that drains batches slowly
        // still trips the deadline in `next_batch` even when the pipeline
        // itself has no work left to charge.
        let meter = BudgetMeter::new(&self.config.budget);
        let mut evaluator = Evaluator::new(&self.dataset, prepared.from.clone());
        evaluator.set_rank_sort(self.config.rank_order_by);
        evaluator.set_budget(&self.config.budget);
        evaluator.set_threads(self.config.threads);
        let (source, peak_rows, peak_bytes) = if self.config.streaming {
            let op = pipeline::build(&evaluator, &prepared.plan)?;
            (Source::Streamed(op), 0, 0)
        } else {
            let table = evaluator.eval_to_ids(&prepared.plan)?;
            // Eager evaluation held the full result live by construction.
            let (rows, bytes) = (table.len() as u64, table.estimated_bytes());
            (Source::Materialized { table, pos: 0 }, rows, bytes)
        };
        let vars = match &source {
            Source::Streamed(op) => op.vars().to_vec(),
            Source::Materialized { table, .. } => table.vars.clone(),
        };
        Ok(QueryCursor {
            evaluator,
            source,
            vars,
            batch_rows: batch_rows.max(1),
            meter,
            emitted: 0,
            batches_emitted: 0,
            peak_live_rows: peak_rows,
            peak_live_bytes: peak_bytes,
        })
    }
}

/// Where a cursor's batches come from.
enum Source<'a> {
    /// Pull-based operator pipeline: each batch is computed on demand.
    Streamed(BoxOp<'a>),
    /// Eagerly evaluated result; batches are copied windows over it.
    Materialized { table: IdTable, pos: usize },
}

/// Streaming columnar view over one query's result.
///
/// Owns the evaluator (and therefore the term pool that can resolve every
/// id the query produces — dataset-global ids and query-local overflow ids
/// from computed expressions alike) plus the batch source: the operator
/// pipeline when streaming, the materialized table otherwise.
/// [`QueryCursor::next_batch`] yields the result in `batch_rows`-bounded
/// [`ColumnBatch`]es; consumers build typed columns without ever seeing a
/// row-materialized [`Term`] table.
pub struct QueryCursor<'a> {
    evaluator: Evaluator<'a>,
    source: Source<'a>,
    vars: Vec<String>,
    batch_rows: usize,
    meter: BudgetMeter,
    emitted: usize,
    batches_emitted: u64,
    peak_live_rows: u64,
    peak_live_bytes: u64,
}

impl QueryCursor<'_> {
    /// Result column (variable) names.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Index entries scanned so far (same metric as
    /// [`ExecStats::rows_scanned`]). On the streaming path this grows as
    /// batches are pulled; read it after draining for the whole-query
    /// number the `execute*` paths report.
    pub fn rows_scanned(&self) -> u64 {
        self.evaluator.rows_scanned()
    }

    /// Execution statistics so far (work metric, rewrite counters, peak
    /// live-memory high-water marks). Streaming counters are final only
    /// once the cursor is drained.
    pub fn stats(&self) -> ExecStats {
        let par = self.evaluator.par_stats();
        ExecStats {
            rows_scanned: self.evaluator.rows_scanned(),
            merge_joins: self.evaluator.merge_joins(),
            merge_left_joins: self.evaluator.merge_left_joins(),
            sorted_distincts: self.evaluator.sorted_distincts(),
            sorted_groups: self.evaluator.sorted_groups(),
            par_workers: self.evaluator.threads() as u64,
            par_chunks: par.chunks,
            par_steals: par.steals,
            par_merge_nanos: par.merge_nanos,
            peak_live_rows: self.peak_live_rows,
            peak_live_bytes: self.peak_live_bytes,
            batches_emitted: self.batches_emitted,
        }
    }

    /// Resolve any id appearing in this cursor's columns.
    pub fn resolve(&self, id: TermId) -> &Term {
        self.evaluator.pool().resolve(id)
    }

    /// The next window of rows, or `Ok(None)` when the result is exhausted.
    ///
    /// On the streaming path this is where evaluation happens: the root
    /// operator is pulled for up to `batch_rows` rows and every budget axis
    /// (scan, memory, deadline) is enforced inside the pull. The deadline
    /// is additionally checked here even when no work remains, so a
    /// consumer that drains a large result slowly is still cancelled.
    pub fn next_batch(&mut self) -> Result<Option<ColumnBatch<'_>>> {
        self.meter.check_deadline()?;
        let window = match &mut self.source {
            Source::Streamed(op) => {
                let out = op.next_batch(&mut self.evaluator, self.batch_rows)?;
                let (live_rows, live_bytes) = op.live_size();
                let (out_rows, out_bytes) = match &out {
                    Some(t) => (t.len() as u64, t.estimated_bytes()),
                    None => (0, 0),
                };
                self.peak_live_rows = self.peak_live_rows.max(live_rows.saturating_add(out_rows));
                self.peak_live_bytes = self
                    .peak_live_bytes
                    .max(live_bytes.saturating_add(out_bytes));
                out
            }
            Source::Materialized { table, pos } => {
                if *pos >= table.len() {
                    None
                } else {
                    let len = self.batch_rows.min(table.len() - *pos);
                    let idx: Vec<u32> = (*pos as u32..(*pos + len) as u32).collect();
                    *pos += len;
                    Some(table.gather_rows(&idx))
                }
            }
        };
        match window {
            None => Ok(None),
            Some(t) => {
                let start = self.emitted;
                let len = t.len();
                self.emitted += len;
                self.batches_emitted += 1;
                Ok(Some(ColumnBatch {
                    table: t,
                    pool: self.evaluator.pool(),
                    start,
                    len,
                }))
            }
        }
    }
}

/// One batch of a [`QueryCursor`]: an owned columnar window over rows
/// `[start, start+len)` of the result, plus id resolution.
pub struct ColumnBatch<'c> {
    table: IdTable,
    pool: &'c TermPool<'c>,
    /// First row (in the whole result) this batch covers.
    pub start: usize,
    /// Rows in this batch.
    pub len: usize,
}

impl<'c> ColumnBatch<'c> {
    /// Column names (parallel to column indexes).
    pub fn vars(&self) -> &[String] {
        &self.table.vars
    }

    /// The raw id slice of column `col` for this batch's rows. Absent slots
    /// hold a zero filler — pair with [`ColumnBatch::is_present`], or use
    /// [`ColumnBatch::get`] for the checked view.
    pub fn column_ids(&self, col: usize) -> &[TermId] {
        self.table.col(col).ids()
    }

    /// Is `row` (batch-relative) bound in column `col`?
    pub fn is_present(&self, col: usize, row: usize) -> bool {
        debug_assert!(row < self.len);
        self.table.col(col).is_present(row)
    }

    /// Checked cell read (batch-relative row).
    pub fn get(&self, col: usize, row: usize) -> Option<TermId> {
        debug_assert!(row < self.len);
        self.table.get(row, col)
    }

    /// Resolve an id from any of this batch's columns.
    pub fn resolve(&self, id: TermId) -> &'c Term {
        self.pool.resolve(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Triple};

    fn dataset() -> Arc<Dataset> {
        let mut g = Graph::new();
        for i in 0..10 {
            g.insert(&Triple::new(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::integer(i),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        Arc::new(ds)
    }

    #[test]
    fn prepared_query_reuses_plan_across_pages() {
        let engine = Engine::new(dataset());
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        let prepared = engine.prepare(q).unwrap();
        let (all, _) = engine.execute_prepared(&prepared, None).unwrap();
        let (p1, _) = engine.execute_prepared(&prepared, Some((0, 4))).unwrap();
        let (p2, _) = engine.execute_prepared(&prepared, Some((4, 4))).unwrap();
        let (p3, _) = engine.execute_prepared(&prepared, Some((8, 4))).unwrap();
        assert_eq!(all.len(), 10);
        let mut stitched = p1.rows.clone();
        stitched.extend(p2.rows.clone());
        stitched.extend(p3.rows.clone());
        assert_eq!(stitched, all.rows);
        // Same rows as the one-shot string path.
        let direct = engine.execute(q).unwrap();
        assert_eq!(direct, all);
    }

    #[test]
    fn out_of_range_pages_come_back_empty_on_every_evaluator() {
        // `offset > len` (and saturating offset+limit arithmetic) must
        // yield an empty table — never a panic or a debug overflow — on all
        // three evaluators, through both the page API and query text.
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        for eval_mode in [
            EvalMode::Columnar,
            EvalMode::IdNative,
            EvalMode::TermReference,
        ] {
            let engine = Engine::with_config(
                dataset(),
                EngineConfig {
                    eval_mode,
                    ..EngineConfig::new()
                },
            );
            for (offset, limit) in [(10, 4), (11, 4), (usize::MAX, 4), (usize::MAX, usize::MAX)] {
                let (page, _) = engine.execute_page(q, offset, limit).unwrap();
                assert_eq!(page.vars, vec!["s", "o"], "{eval_mode:?}");
                assert!(page.rows.is_empty(), "{eval_mode:?} offset={offset}");
            }
            // Boundary page ending exactly at the result edge.
            let (page, _) = engine.execute_page(q, 8, usize::MAX).unwrap();
            assert_eq!(page.len(), 2, "{eval_mode:?}");
            // Adversarial Slice built programmatically (the embedded
            // compile path accepts arbitrary usize limits — query text
            // cannot express them, the parser caps literals at i64).
            // Regression: the reference evaluator used to compute
            // offset+limit unclamped, overflowing in debug builds.
            let prepared = engine.prepare(q).unwrap();
            let sliced = engine.prepare_plan(
                Plan::Slice {
                    limit: Some(usize::MAX),
                    offset: 1,
                    input: Box::new(prepared.plan().clone()),
                },
                prepared.from_graphs().to_vec(),
            );
            let (t, _) = engine.execute_prepared(&sliced, None).unwrap();
            assert_eq!(t.len(), 9, "{eval_mode:?}");
        }
    }

    #[test]
    fn cursor_batches_cover_result_in_order() {
        let engine = Engine::new(dataset());
        let q = "SELECT ?s ?o FROM <http://g> WHERE { ?s <http://x/p> ?o } ORDER BY ?o";
        let prepared = engine.prepare(q).unwrap();
        let expected = engine.execute(q).unwrap();

        for streaming in [true, false] {
            let engine = Engine::with_config(
                dataset(),
                EngineConfig {
                    streaming,
                    ..EngineConfig::new()
                },
            );
            let mut cursor = engine.cursor(&prepared, 4).unwrap();
            assert_eq!(cursor.vars(), expected.vars.as_slice());
            let mut rebuilt: Vec<Vec<Option<Term>>> = Vec::new();
            let mut batch_sizes = Vec::new();
            while let Some(batch) = cursor.next_batch().unwrap() {
                batch_sizes.push(batch.len);
                for row in 0..batch.len {
                    rebuilt.push(
                        (0..batch.vars().len())
                            .map(|c| batch.get(c, row).map(|id| batch.resolve(id).clone()))
                            .collect(),
                    );
                }
            }
            assert_eq!(batch_sizes, vec![4, 4, 2], "streaming={streaming}");
            assert_eq!(rebuilt, expected.rows, "streaming={streaming}");
            // Work metric matches the string path (read after draining:
            // the streaming cursor scans as batches are pulled).
            let (_, stats) = engine.execute_with_stats(q).unwrap();
            assert_eq!(cursor.rows_scanned(), stats.rows_scanned);
            assert_eq!(cursor.stats().batches_emitted, 3);
        }
    }

    #[test]
    fn cursor_resolves_computed_overflow_terms() {
        let engine = Engine::new(dataset());
        // AVG produces a computed double that lives only in the query pool.
        let q = "SELECT (AVG(?o) AS ?m) FROM <http://g> WHERE { ?s <http://x/p> ?o }";
        let prepared = engine.prepare(q).unwrap();
        let mut cursor = engine.cursor(&prepared, 16).unwrap();
        let batch = cursor.next_batch().unwrap().unwrap();
        let id = batch.get(0, 0).expect("aggregate value bound");
        let term = batch.resolve(id).clone();
        assert_eq!(term, engine.execute(q).unwrap().rows[0][0].clone().unwrap());
    }
}
