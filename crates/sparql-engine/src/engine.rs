//! Public engine API.
//!
//! [`Engine`] holds a dataset and a configuration and turns SPARQL text into
//! a [`SolutionTable`]: parse → algebra → (optional) optimize → evaluate.

use std::sync::Arc;

use rdf_model::Dataset;

use crate::algebra::translate_query;
use crate::error::Result;
use crate::eval::Evaluator;
use crate::optimizer::Optimizer;
use crate::parser::parse_query;
use crate::results::SolutionTable;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Enable statistics-driven BGP reordering. Disabling it models an
    /// engine whose optimizer takes queries literally (useful for the
    /// ablation experiments).
    pub optimize: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { optimize: true }
    }
}

/// Execution statistics for one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Index entries scanned during evaluation.
    pub rows_scanned: u64,
}

/// A SPARQL engine over an in-memory dataset.
#[derive(Debug, Clone)]
pub struct Engine {
    dataset: Arc<Dataset>,
    config: EngineConfig,
}

impl Engine {
    /// Engine with the default configuration (optimizer on).
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Engine {
            dataset,
            config: EngineConfig::default(),
        }
    }

    /// Engine with an explicit configuration.
    pub fn with_config(dataset: Arc<Dataset>, config: EngineConfig) -> Self {
        Engine { dataset, config }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// Parse, plan, and evaluate a SELECT query.
    pub fn execute(&self, query: &str) -> Result<SolutionTable> {
        self.execute_with_stats(query).map(|(t, _)| t)
    }

    /// Like [`Engine::execute`], also returning work statistics.
    pub fn execute_with_stats(&self, query: &str) -> Result<(SolutionTable, ExecStats)> {
        let parsed = parse_query(query)?;
        let mut plan = translate_query(&parsed)?;
        if self.config.optimize {
            let mut optimizer = Optimizer::new(&self.dataset, &parsed.from);
            optimizer.optimize(&mut plan);
        }
        let mut evaluator = Evaluator::new(&self.dataset, parsed.from.clone());
        let table = evaluator.eval(&plan)?;
        let stats = ExecStats {
            rows_scanned: evaluator.rows_scanned(),
        };
        Ok((table, stats))
    }
}
