//! SPARQL tokenizer.
//!
//! Produces a flat token stream for the recursive-descent [`crate::parser`].
//! Keywords are recognized case-insensitively as the grammar requires; the
//! `<` character is disambiguated between IRI references and the less-than
//! operator by attempting the IRIREF production first (an IRIREF cannot
//! contain whitespace or `<>`).

use crate::error::{EngineError, Result};

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the query string.
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<http://...>` IRI reference (payload excludes angle brackets).
    IriRef(String),
    /// Prefixed name `prefix:local` (payload is `(prefix, local)`), where
    /// either part may be empty.
    PName(String, String),
    /// Variable `?name` or `$name` (payload excludes the sigil).
    Var(String),
    /// Blank node label `_:name`.
    BlankLabel(String),
    /// String literal body (unescaped).
    String(String),
    /// Language tag following a string (`@en`).
    LangTag(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal / double literal.
    Decimal(f64),
    /// A bare word: keyword or function name (stored uppercased) — `SELECT`,
    /// `COUNT`, `REGEX`, ... The original spelling is kept for error messages.
    Word(String),
    /// `a` — shorthand for `rdf:type` (distinct from Word to keep case).
    A,
    /// Punctuation / operators.
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `^^` datatype marker.
    HatHat,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_word(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w == kw)
    }
}

fn is_pn_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

fn err(position: usize, message: impl Into<String>) -> EngineError {
    EngineError::Parse {
        position,
        message: message.into(),
    }
}

/// Tokenize a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    macro_rules! push {
        ($kind:expr, $pos:expr) => {
            tokens.push(Token {
                kind: $kind,
                position: $pos,
            })
        };
    }

    while i < n {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                push!(TokenKind::LBrace, i);
                i += 1;
            }
            '}' => {
                push!(TokenKind::RBrace, i);
                i += 1;
            }
            '(' => {
                push!(TokenKind::LParen, i);
                i += 1;
            }
            ')' => {
                push!(TokenKind::RParen, i);
                i += 1;
            }
            ';' => {
                push!(TokenKind::Semicolon, i);
                i += 1;
            }
            ',' => {
                push!(TokenKind::Comma, i);
                i += 1;
            }
            '*' => {
                push!(TokenKind::Star, i);
                i += 1;
            }
            '=' => {
                push!(TokenKind::Eq, i);
                i += 1;
            }
            '+' => {
                push!(TokenKind::Plus, i);
                i += 1;
            }
            '-' => {
                push!(TokenKind::Minus, i);
                i += 1;
            }
            '/' => {
                push!(TokenKind::Slash, i);
                i += 1;
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(TokenKind::Neq, i);
                    i += 2;
                } else {
                    push!(TokenKind::Bang, i);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && bytes[i + 1] == b'&' {
                    push!(TokenKind::AndAnd, i);
                    i += 2;
                } else {
                    return Err(err(i, "expected '&&'"));
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == b'|' {
                    push!(TokenKind::OrOr, i);
                    i += 2;
                } else {
                    return Err(err(i, "expected '||'"));
                }
            }
            '^' => {
                if i + 1 < n && bytes[i + 1] == b'^' {
                    push!(TokenKind::HatHat, i);
                    i += 2;
                } else {
                    return Err(err(i, "expected '^^'"));
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(TokenKind::Ge, i);
                    i += 2;
                } else {
                    push!(TokenKind::Gt, i);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push!(TokenKind::Le, i);
                    i += 2;
                } else {
                    // Try IRIREF: scan to '>' rejecting whitespace and nested
                    // angle brackets; fall back to Lt on failure.
                    let start = i + 1;
                    let mut j = start;
                    let mut ok = false;
                    while j < n {
                        match bytes[j] {
                            b'>' => {
                                ok = true;
                                break;
                            }
                            b' ' | b'\t' | b'\r' | b'\n' | b'<' | b'"' | b'{' | b'}' => break,
                            _ => j += 1,
                        }
                    }
                    if ok {
                        let iri = std::str::from_utf8(&bytes[start..j])
                            .map_err(|_| err(i, "invalid UTF-8 in IRI"))?;
                        push!(TokenKind::IriRef(iri.to_string()), i);
                        i = j + 1;
                    } else {
                        push!(TokenKind::Lt, i);
                        i += 1;
                    }
                }
            }
            '.' => {
                // Could begin a decimal like `.5`; SPARQL queries we generate
                // never do that, so '.' is always punctuation here.
                push!(TokenKind::Dot, i);
                i += 1;
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < n && is_pn_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(err(i, "empty variable name"));
                }
                let name = input[start..j].to_string();
                push!(TokenKind::Var(name), i);
                i = j;
            }
            '"' | '\'' => {
                let quote = bytes[i];
                let mut j = i + 1;
                let mut body = String::new();
                let mut closed = false;
                while j < n {
                    let b = bytes[j];
                    if b == quote {
                        closed = true;
                        j += 1;
                        break;
                    }
                    if b == b'\\' {
                        j += 1;
                        if j >= n {
                            break;
                        }
                        match bytes[j] {
                            b'"' => body.push('"'),
                            b'\'' => body.push('\''),
                            b'\\' => body.push('\\'),
                            b'n' => body.push('\n'),
                            b'r' => body.push('\r'),
                            b't' => body.push('\t'),
                            other => return Err(err(j, format!("bad escape \\{}", other as char))),
                        }
                        j += 1;
                    } else {
                        // Consume one UTF-8 scalar.
                        let ch_len = match b {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        body.push_str(
                            std::str::from_utf8(&bytes[j..j + ch_len])
                                .map_err(|_| err(j, "invalid UTF-8 in string"))?,
                        );
                        j += ch_len;
                    }
                }
                if !closed {
                    return Err(err(i, "unterminated string literal"));
                }
                push!(TokenKind::String(body), i);
                i = j;
                // Language tag directly attached?
                if i < n && bytes[i] == b'@' {
                    let start = i + 1;
                    let mut k = start;
                    while k < n && ((bytes[k] as char).is_ascii_alphanumeric() || bytes[k] == b'-')
                    {
                        k += 1;
                    }
                    if k == start {
                        return Err(err(i, "empty language tag"));
                    }
                    push!(TokenKind::LangTag(input[start..k].to_string()), i);
                    i = k;
                }
            }
            '_' if i + 1 < n && bytes[i + 1] == b':' => {
                let start = i + 2;
                let mut j = start;
                while j < n && is_pn_char(bytes[j] as char) {
                    j += 1;
                }
                push!(TokenKind::BlankLabel(input[start..j].to_string()), i);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_decimal = false;
                while j < n {
                    let b = bytes[j] as char;
                    if b.is_ascii_digit() {
                        j += 1;
                    } else if b == '.' && !is_decimal && j + 1 < n && bytes[j + 1].is_ascii_digit()
                    {
                        is_decimal = true;
                        j += 1;
                    } else if (b == 'e' || b == 'E')
                        && j + 1 < n
                        && (bytes[j + 1].is_ascii_digit()
                            || bytes[j + 1] == b'-'
                            || bytes[j + 1] == b'+')
                    {
                        is_decimal = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                if is_decimal {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(start, format!("bad number {text}")))?;
                    push!(TokenKind::Decimal(v), start);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(start, format!("bad number {text}")))?;
                    push!(TokenKind::Integer(v), start);
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && is_pn_char(bytes[j] as char) {
                    j += 1;
                }
                // Prefixed name?  word ':' local
                if j < n && bytes[j] == b':' {
                    let prefix = input[start..j].to_string();
                    let lstart = j + 1;
                    let mut k = lstart;
                    while k < n && (is_pn_char(bytes[k] as char) || bytes[k] == b'.') {
                        k += 1;
                    }
                    // A trailing '.' belongs to the sentence, not the name.
                    while k > lstart && bytes[k - 1] == b'.' {
                        k -= 1;
                    }
                    let local = input[lstart..k].to_string();
                    push!(TokenKind::PName(prefix, local), start);
                    i = k;
                } else {
                    let word = &input[start..j];
                    if word == "a" {
                        push!(TokenKind::A, start);
                    } else {
                        push!(TokenKind::Word(word.to_ascii_uppercase()), start);
                    }
                    i = j;
                }
            }
            ':' => {
                // Default-prefix name `:local`.
                let lstart = i + 1;
                let mut k = lstart;
                while k < n && is_pn_char(bytes[k] as char) {
                    k += 1;
                }
                push!(
                    TokenKind::PName(String::new(), input[lstart..k].to_string()),
                    i
                );
                i = k;
            }
            other => return Err(err(i, format!("unexpected character '{other}'"))),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: n,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        tokenize(q).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select() {
        let ks = kinds("SELECT ?x WHERE { ?x a <http://x/T> . }");
        assert_eq!(ks[0], TokenKind::Word("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Var("x".into()));
        assert_eq!(ks[2], TokenKind::Word("WHERE".into()));
        assert_eq!(ks[3], TokenKind::LBrace);
        assert_eq!(ks[5], TokenKind::A);
        assert_eq!(ks[6], TokenKind::IriRef("http://x/T".into()));
    }

    #[test]
    fn lt_vs_iri() {
        let ks = kinds("FILTER ( ?x < 5 )");
        assert!(ks.contains(&TokenKind::Lt));
        let ks = kinds("FILTER ( ?x <= 5 )");
        assert!(ks.contains(&TokenKind::Le));
    }

    #[test]
    fn pname_with_trailing_dot() {
        let ks = kinds("?s dbpp:starring ?o .");
        assert_eq!(ks[1], TokenKind::PName("dbpp".into(), "starring".into()));
        assert_eq!(ks[3], TokenKind::Dot);
    }

    #[test]
    fn string_with_lang_and_datatype() {
        let ks = kinds("\"hi\"@en \"5\"^^xsd:integer");
        assert_eq!(ks[0], TokenKind::String("hi".into()));
        assert_eq!(ks[1], TokenKind::LangTag("en".into()));
        assert_eq!(ks[2], TokenKind::String("5".into()));
        assert_eq!(ks[3], TokenKind::HatHat);
        assert_eq!(ks[4], TokenKind::PName("xsd".into(), "integer".into()));
    }

    #[test]
    fn numbers() {
        let ks = kinds("42 3.25 1e3");
        assert_eq!(ks[0], TokenKind::Integer(42));
        assert_eq!(ks[1], TokenKind::Decimal(3.25));
        assert_eq!(ks[2], TokenKind::Decimal(1000.0));
    }

    #[test]
    fn operators() {
        let ks = kinds("&& || ! != >= > = ^^");
        assert_eq!(
            ks[..8],
            [
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Bang,
                TokenKind::Neq,
                TokenKind::Ge,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::HatHat
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("SELECT # a comment\n ?x");
        assert_eq!(ks.len(), 3); // SELECT, ?x, EOF
    }

    #[test]
    fn escapes_in_strings() {
        let ks = kinds(r#""a\"b\nc""#);
        assert_eq!(ks[0], TokenKind::String("a\"b\nc".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn keywords_uppercased() {
        let ks = kinds("select Select SELECT");
        for k in &ks[..3] {
            assert_eq!(*k, TokenKind::Word("SELECT".into()));
        }
    }
}
