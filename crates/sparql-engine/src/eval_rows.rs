//! Row-at-a-time id-native plan evaluation (the PR 1 evaluator).
//!
//! Kept alongside the columnar evaluator in [`crate::eval`] as a
//! differential-testing oracle and benchmark baseline: all three evaluators
//! (this one, the columnar default, and the term-materialized
//! [`crate::eval_reference`]) must produce identical bags and identical
//! `rows_scanned` counts. Select it with
//! [`crate::engine::EvalMode::IdNative`].
//!
//! Implements the SPARQL multiset semantics of the paper's Section 5.2 with
//! every intermediate binding kept as a dataset-global `u32` [`TermId`]
//! (rows are `Vec<Option<TermId>>`, see [`RowTable`]): BGPs evaluate by
//! index-nested-loop over the store's access paths (in the order chosen by
//! the optimizer) pushing raw ids, joins are hash joins whose keys are
//! integers, `OPTIONAL` is a left outer join, `UNION` is bag union with
//! schema alignment, and `DISTINCT`/grouping hash id tuples.
//!
//! Because the dataset interner is shared across graphs
//! ([`rdf_model::Dataset`]), two ids are equal iff their terms are equal
//! even in cross-graph joins — no string ever needs rehydrating in the join
//! core. [`Term`] values are materialized only at the boundaries that
//! genuinely need them:
//!
//! - `FILTER` / `BIND` (`Extend`) expression evaluation resolves ids
//!   *by reference* through the [`TermPool`] and interns computed results
//!   back into the pool's query-local overflow;
//! - `ORDER BY` / top-k key computation;
//! - the final materialization of the public [`SolutionTable`], performed
//!   once per query (or per shipped page, see [`RowEvaluator::eval_page`]).
//!
//! The pre-refactor evaluator is preserved in [`crate::eval_reference`] as a
//! differential-testing oracle; both produce identical bags and identical
//! `rows_scanned` counts.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rdf_model::{Dataset, Graph, GraphIdMap, Term, TermId};

use crate::algebra::{AggSpec, GraphRef, Plan, PushedFilter};
use crate::ast::{OrderKey, PatternTerm, TriplePattern};
use crate::budget::{BudgetMeter, QueryBudget};
use crate::error::{EngineError, Result};
use crate::expr::{ebv, eval_expr, AggState, EvalCaches, IdRowCtx, PushedEval};
use crate::pool::TermPool;
use crate::results::{RowTable, SolutionTable};

/// One row of global term ids.
type IdRow = Vec<Option<TermId>>;

/// Id-native plan evaluator bound to a dataset.
pub struct RowEvaluator<'a> {
    dataset: &'a Dataset,
    default_graphs: Vec<String>,
    caches: EvalCaches,
    pool: TermPool<'a>,
    rows_scanned: u64,
    /// Budget enforcement state ([`crate::budget`]); inactive by default.
    meter: BudgetMeter,
}

/// Estimated heap bytes of `rows` row-major id rows of `width` columns
/// (cells plus per-row `Vec` header) — the budget's memory-axis input.
#[inline]
fn row_table_bytes(rows: usize, width: usize) -> u64 {
    (rows as u64).saturating_mul((width as u64).saturating_mul(8).saturating_add(24))
}

impl<'a> RowEvaluator<'a> {
    /// Create an evaluator. `default_graphs` resolves [`GraphRef::Default`].
    pub fn new(dataset: &'a Dataset, default_graphs: Vec<String>) -> Self {
        RowEvaluator {
            dataset,
            default_graphs,
            caches: EvalCaches::new(),
            pool: TermPool::new(dataset.interner()),
            rows_scanned: 0,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Install a resource budget. The meter (and its deadline clock) is
    /// created here, so call this right before evaluation starts.
    pub fn set_budget(&mut self, budget: &QueryBudget) {
        self.meter = BudgetMeter::new(budget);
    }

    /// Total index entries scanned so far (a deterministic work metric used
    /// by benchmarks alongside wall-clock time).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Evaluate a plan to a materialized solution table.
    pub fn eval(&mut self, plan: &Plan) -> Result<SolutionTable> {
        let table = self.eval_ids(plan)?;
        Ok(self.materialize(table))
    }

    /// Evaluate a plan and materialize only rows `[offset, offset+limit)`.
    ///
    /// Pagination endpoints re-execute per chunk; slicing *before* term
    /// materialization means only the shipped page allocates terms.
    pub fn eval_page(&mut self, plan: &Plan, offset: usize, limit: usize) -> Result<SolutionTable> {
        let mut table = self.eval_ids(plan)?;
        crate::results::slice_rows(&mut table.rows, offset, Some(limit));
        Ok(self.materialize(table))
    }

    /// Resolve ids to owned terms (the single materialization point).
    fn materialize(&self, table: RowTable) -> SolutionTable {
        let rows = table
            .rows
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|cell| cell.map(|id| self.pool.resolve(id).clone()))
                    .collect()
            })
            .collect();
        SolutionTable {
            vars: table.vars,
            rows,
        }
    }

    /// Evaluate a plan to an id table (the internal hot path).
    ///
    /// Every operator's output passes through this chokepoint, where its
    /// row count and estimated footprint are checked against the budget;
    /// BGP extension, joins, and grouping carry in-loop checks of their
    /// own (their state balloons before any output exists).
    fn eval_ids(&mut self, plan: &Plan) -> Result<RowTable> {
        let t = self.eval_ids_node(plan)?;
        self.meter.charge_intermediate(
            t.rows.len() as u64,
            row_table_bytes(t.rows.len(), t.vars.len()),
        )?;
        Ok(t)
    }

    fn eval_ids_node(&mut self, plan: &Plan) -> Result<RowTable> {
        match plan {
            Plan::Unit => Ok(RowTable::unit()),
            Plan::Bgp {
                patterns,
                graph,
                filters,
            } => self.eval_bgp(patterns, graph, filters),
            // The merge-join rewrites are columnar-evaluator
            // specializations; this oracle hash-joins them, which emits the
            // identical row order (left-major, right candidates ascending,
            // unmatched left rows in place).
            Plan::Join(a, b)
            | Plan::MergeJoin {
                left: a, right: b, ..
            } => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                join(left, right, JoinKind::Inner, &mut self.meter)
            }
            Plan::LeftJoin(a, b)
            | Plan::MergeLeftJoin {
                left: a, right: b, ..
            } => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                join(left, right, JoinKind::Left, &mut self.meter)
            }
            Plan::Union(a, b) => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                Ok(union(left, right))
            }
            Plan::Filter(expr, p) => {
                let mut t = self.eval_ids(p)?;
                let vars = t.vars.clone();
                let caches = &mut self.caches;
                let pool = &self.pool;
                t.rows.retain(|row| {
                    let ctx = IdRowCtx {
                        vars: &vars,
                        row,
                        pool,
                    };
                    eval_expr(expr, ctx, caches)
                        .as_ref()
                        .and_then(ebv)
                        .unwrap_or(false)
                });
                Ok(t)
            }
            Plan::Extend(var, expr, p) => {
                let mut t = self.eval_ids(p)?;
                let existing = t.column_index(var);
                // `BIND(?x AS ?y)` is an id copy — no resolve/intern cycle.
                let new_column: Vec<Option<TermId>> = if let crate::ast::Expr::Var(src) = expr {
                    match t.column_index(src) {
                        Some(idx) => t.rows.iter().map(|row| row[idx]).collect(),
                        None => vec![None; t.rows.len()],
                    }
                } else {
                    let vars_snapshot = t.vars.clone();
                    let mut column = Vec::with_capacity(t.rows.len());
                    for row in &t.rows {
                        let value = {
                            let ctx = IdRowCtx {
                                vars: &vars_snapshot,
                                row,
                                pool: &self.pool,
                            };
                            eval_expr(expr, ctx, &mut self.caches)
                        };
                        column.push(value.map(|term| self.pool.intern(term)));
                    }
                    column
                };
                match existing {
                    Some(idx) => {
                        for (row, v) in t.rows.iter_mut().zip(new_column) {
                            row[idx] = v;
                        }
                    }
                    None => {
                        t.vars.push(var.clone());
                        for (row, v) in t.rows.iter_mut().zip(new_column) {
                            row.push(v);
                        }
                    }
                }
                Ok(t)
            }
            // `sorted_on` is a columnar-evaluator hint; grouping hashes
            // here either way (identical first-occurrence group order).
            Plan::Group {
                keys, aggs, input, ..
            } => {
                let t = self.eval_ids(input)?;
                self.eval_group(keys, aggs, t)
            }
            Plan::Project(vars, p) => {
                let t = self.eval_ids(p)?;
                let indices: Vec<Option<usize>> = vars.iter().map(|v| t.column_index(v)).collect();
                let mut out = RowTable::with_vars(vars.clone());
                out.rows = t
                    .rows
                    .into_iter()
                    .map(|row| indices.iter().map(|i| i.and_then(|i| row[i])).collect())
                    .collect();
                Ok(out)
            }
            // Sorted DISTINCT is the same keep-first bag; hash it here.
            Plan::Distinct(p) | Plan::SortedDistinct { input: p, .. } => {
                let mut t = self.eval_ids(p)?;
                let mut seen: HashSet<IdRow> = HashSet::with_capacity(t.rows.len());
                t.rows.retain(|row| seen.insert(row.clone()));
                Ok(t)
            }
            Plan::OrderBy(keys, p) => {
                let mut t = self.eval_ids(p)?;
                self.sort_rows(&mut t, keys);
                Ok(t)
            }
            Plan::TopK { keys, k, input } => {
                let mut t = self.eval_ids(input)?;
                self.top_k(&mut t, keys, *k);
                Ok(t)
            }
            Plan::Slice {
                limit,
                offset,
                input,
            } => {
                let mut t = self.eval_ids(input)?;
                crate::results::slice_rows(&mut t.rows, *offset, *limit);
                Ok(t)
            }
        }
    }

    fn resolve_graphs(&self, graph: &GraphRef) -> Result<Vec<(Arc<Graph>, Arc<GraphIdMap>)>> {
        let uris: Vec<&str> = match graph {
            GraphRef::Default => {
                if self.default_graphs.is_empty() {
                    // No FROM clause: the default graph is the union of all
                    // graphs in the dataset.
                    self.dataset.graph_uris().collect()
                } else {
                    self.default_graphs.iter().map(String::as_str).collect()
                }
            }
            GraphRef::Named(uri) => vec![uri.as_str()],
        };
        let mut graphs = Vec::with_capacity(uris.len());
        for uri in uris {
            let g = self
                .dataset
                .graph(uri)
                .ok_or_else(|| EngineError::UnknownGraph(uri.to_string()))?;
            let map = self
                .dataset
                .id_map(uri)
                .ok_or_else(|| EngineError::UnknownGraph(uri.to_string()))?;
            graphs.push((Arc::clone(g), Arc::clone(map)));
        }
        Ok(graphs)
    }

    /// Index-nested-loop evaluation of a BGP in pattern order. Pushed
    /// filters cull the row set right after the pattern that binds their
    /// variable, before the next pattern's scans — the same attachment rule
    /// (and therefore the same `rows_scanned`) as the columnar evaluator.
    fn eval_bgp(
        &mut self,
        patterns: &[TriplePattern],
        graph: &GraphRef,
        filters: &[PushedFilter],
    ) -> Result<RowTable> {
        let graphs = self.resolve_graphs(graph)?;

        // Variable schema in first-mention order.
        let mut vars: Vec<String> = Vec::new();
        for p in patterns {
            for v in p.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let var_idx: HashMap<&str, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        // Compile each pushed filter at its shared attachment pattern
        // ([`crate::algebra::attach_filters`]).
        let mut pattern_filters: Vec<Vec<(usize, PushedEval)>> =
            crate::algebra::attach_filters(patterns, filters, |v| var_idx[v])
                .into_iter()
                .map(|routed| {
                    routed
                        .into_iter()
                        .map(|(col, f)| (col, PushedEval::compile(&f.var, &f.expr, &self.pool)))
                        .collect()
                })
                .collect();

        let mut rows: Vec<IdRow> = vec![vec![None; vars.len()]];
        for (pi, pattern) in patterns.iter().enumerate() {
            if rows.is_empty() {
                break;
            }
            // Resolve constants once per (pattern, graph) — local ids via the
            // dataset-wide interner, no per-row string hashing. A graph where
            // some constant does not occur contributes no matches at all.
            let pats: Vec<(&Graph, &GraphIdMap, [Slot; 3])> = graphs
                .iter()
                .filter_map(|(g, map)| {
                    let s = self.pattern_slot(&pattern.subject, map, &var_idx)?;
                    let p = self.pattern_slot(&pattern.predicate, map, &var_idx)?;
                    let o = self.pattern_slot(&pattern.object, map, &var_idx)?;
                    Some((g.as_ref(), map.as_ref(), [s, p, o]))
                })
                .collect();
            let mut next: Vec<IdRow> = Vec::new();
            for row in &rows {
                let mut scanned = 0u64;
                for (g, map, slots) in &pats {
                    scanned += extend_row_with_pattern(g, map, slots, row, &mut next);
                }
                self.rows_scanned += scanned;
                // Budget checkpoint between rows: the scan work this row
                // added, plus (when the periodic poll fires) the output
                // buffer's current size. `for_each_match` has no early
                // exit, so overshoot is bounded by one row's matches.
                if self.meter.charge_scan(scanned)? {
                    self.meter.charge_intermediate(
                        next.len() as u64,
                        row_table_bytes(next.len(), vars.len()),
                    )?;
                }
            }
            rows = next;
            // Per-pattern intermediates never reach the operator-output
            // chokepoint, so check each one here.
            self.meter
                .charge_intermediate(rows.len() as u64, row_table_bytes(rows.len(), vars.len()))?;
            let checks = &mut pattern_filters[pi];
            if !checks.is_empty() {
                let pool = &self.pool;
                let caches = &mut self.caches;
                rows.retain(|row| {
                    checks.iter_mut().all(|(col, pe)| match row[*col] {
                        Some(id) => pe.test(id, pool, caches),
                        None => false,
                    })
                });
            }
        }
        Ok(RowTable { vars, rows })
    }

    /// Pattern-level slot for one position: a constant bound to its local id
    /// (`None` when the constant is absent from the graph) or a variable's
    /// column index.
    fn pattern_slot(
        &self,
        term: &PatternTerm,
        map: &GraphIdMap,
        var_idx: &HashMap<&str, usize>,
    ) -> Option<Slot> {
        match term {
            PatternTerm::Var(v) => Some(Slot::Var(var_idx[v.as_str()])),
            PatternTerm::Const(term) => {
                let global = self.dataset.lookup(term)?;
                let local = map.to_local(global)?;
                Some(Slot::Bound(local))
            }
        }
    }

    fn eval_group(
        &mut self,
        keys: &[String],
        aggs: &[AggSpec],
        input: RowTable,
    ) -> Result<RowTable> {
        let key_indices: Vec<Option<usize>> = keys.iter().map(|k| input.column_index(k)).collect();
        let vars_snapshot = input.vars.clone();

        // Per-aggregate execution plan: `COUNT[ DISTINCT](?v)` over a plain
        // column counts ids directly — boundness and id-distinctness suffice,
        // no term is ever resolved or hashed. Everything else evaluates the
        // expression per row (the materialization boundary for aggregates).
        enum AggPlan<'e> {
            Star,
            CountCol { idx: usize, distinct: bool },
            General(&'e crate::ast::Expr),
        }
        let plans: Vec<AggPlan> = aggs
            .iter()
            .map(|spec| match &spec.expr {
                None => AggPlan::Star,
                Some(crate::ast::Expr::Var(v)) if spec.op == crate::ast::AggOp::Count => {
                    match input.column_index(v) {
                        Some(idx) => AggPlan::CountCol {
                            idx,
                            distinct: spec.distinct,
                        },
                        // Variable absent from the input: COUNT of an
                        // always-unbound expression is 0 either way; let the
                        // general path produce it.
                        None => AggPlan::General(spec.expr.as_ref().unwrap()),
                    }
                }
                Some(e) => AggPlan::General(e),
            })
            .collect();

        // Per-aggregate running state, id-native where the plan allows.
        // (One accumulator per aggregate per group; the size skew between
        // the term-based and count-only variants is irrelevant there.)
        #[allow(clippy::large_enum_variant)]
        enum AggAccum {
            Terms(AggState),
            CountIds {
                seen: Option<HashSet<TermId>>,
                count: usize,
            },
        }
        let fresh_accums = |aggs: &[AggSpec], plans: &[AggPlan]| -> Vec<AggAccum> {
            aggs.iter()
                .zip(plans)
                .map(|(a, plan)| match plan {
                    AggPlan::CountCol { distinct, .. } => AggAccum::CountIds {
                        seen: distinct.then(HashSet::new),
                        count: 0,
                    },
                    // Id-native dedup: DISTINCT inputs intern through the
                    // pool and hash `u32` ids, not whole terms.
                    _ => AggAccum::Terms(AggState::new_id_distinct(a.op, a.distinct)),
                })
                .collect()
        };

        // Group index: id-tuple key → position in `groups`. Hashing u32
        // tuples, never terms.
        let mut index: HashMap<IdRow, usize> = HashMap::new();
        let mut groups: Vec<(IdRow, Vec<AggAccum>)> = Vec::new();

        let implicit_single_group = keys.is_empty();
        if implicit_single_group {
            index.insert(Vec::new(), 0);
            groups.push((Vec::new(), fresh_accums(aggs, &plans)));
        }

        // Rough per-group footprint (key ids + accumulator state) for the
        // memory axis: grouping state is the one allocation that grows
        // without a corresponding operator output until the loop ends.
        let group_bytes =
            (keys.len() as u64).saturating_mul(16) + (aggs.len() as u64).saturating_mul(64);
        for row in &input.rows {
            self.meter.charge_intermediate(
                groups.len() as u64,
                (groups.len() as u64).saturating_mul(group_bytes),
            )?;
            let key: IdRow = key_indices.iter().map(|i| i.and_then(|i| row[i])).collect();
            let gi = match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = groups.len();
                    index.insert(key.clone(), gi);
                    groups.push((key, fresh_accums(aggs, &plans)));
                    gi
                }
            };
            for (accum, plan) in groups[gi].1.iter_mut().zip(&plans) {
                match (accum, plan) {
                    (AggAccum::Terms(state), AggPlan::Star) => state.push_star(),
                    (AggAccum::Terms(state), AggPlan::General(e)) => {
                        let value = {
                            let ctx = IdRowCtx {
                                vars: &vars_snapshot,
                                row,
                                pool: &self.pool,
                            };
                            eval_expr(e, ctx, &mut self.caches)
                        };
                        state.push_pooled(value, &mut self.pool);
                    }
                    (AggAccum::CountIds { seen, count }, AggPlan::CountCol { idx, .. }) => {
                        if let Some(id) = row[*idx] {
                            match seen {
                                Some(set) => {
                                    if set.insert(id) {
                                        *count += 1;
                                    }
                                }
                                None => *count += 1,
                            }
                        }
                    }
                    _ => unreachable!("accumulator/plan shape mismatch"),
                }
            }
        }

        let mut out_vars: Vec<String> = keys.to_vec();
        out_vars.extend(aggs.iter().map(|a| a.output.clone()));
        let mut out = RowTable::with_vars(out_vars);
        for (key, accums) in groups {
            let mut row = key;
            for accum in accums {
                // Aggregate results are computed terms; intern them so the
                // row stays id-native for downstream operators.
                let value = match accum {
                    AggAccum::Terms(state) => state.finish(),
                    AggAccum::CountIds { count, .. } => Some(Term::integer(count as i64)),
                };
                row.push(value.map(|t| self.pool.intern(t)));
            }
            out.rows.push(row);
        }
        Ok(out)
    }

    /// Compute the ORDER BY key terms for every row (the materialization
    /// boundary for sorting).
    fn keyed_rows(&mut self, table: &mut RowTable, keys: &[OrderKey]) -> Vec<KeyedRow> {
        let vars = table.vars.clone();
        table
            .rows
            .drain(..)
            .enumerate()
            .map(|(seq, row)| {
                let computed: Vec<Option<Term>> = keys
                    .iter()
                    .map(|k| {
                        let ctx = IdRowCtx {
                            vars: &vars,
                            row: &row,
                            pool: &self.pool,
                        };
                        eval_expr(&k.expr, ctx, &mut self.caches)
                    })
                    .collect();
                (computed, seq, row)
            })
            .collect()
    }

    fn sort_rows(&mut self, table: &mut RowTable, keys: &[OrderKey]) {
        let mut keyed = self.keyed_rows(table, keys);
        // (key, seq) is a total order equal to a stable sort on key alone.
        keyed.sort_unstable_by(|a, b| compare_keyed(keys, a, b));
        table.rows = keyed.into_iter().map(|(_, _, row)| row).collect();
    }

    /// Bounded ORDER BY: select the first `k` rows of the sorted order
    /// without fully sorting the input (`Slice ∘ OrderBy` fusion). Produces
    /// exactly the rows a stable full sort followed by `truncate(k)` would.
    fn top_k(&mut self, table: &mut RowTable, keys: &[OrderKey], k: usize) {
        if k == 0 {
            table.rows.clear();
            return;
        }
        let mut keyed = self.keyed_rows(table, keys);
        if keyed.len() > k {
            // O(n) partition around the k-th row, then sort only the prefix.
            keyed.select_nth_unstable_by(k - 1, |a, b| compare_keyed(keys, a, b));
            keyed.truncate(k);
        }
        keyed.sort_unstable_by(|a, b| compare_keyed(keys, a, b));
        table.rows = keyed.into_iter().map(|(_, _, row)| row).collect();
    }
}

/// A sort candidate: computed key terms, original position (stability
/// tie-break), and the id row itself.
type KeyedRow = (Vec<Option<Term>>, usize, IdRow);

fn compare_keyed(keys: &[OrderKey], a: &KeyedRow, b: &KeyedRow) -> std::cmp::Ordering {
    for (key_spec, (x, y)) in keys.iter().zip(a.0.iter().zip(b.0.iter())) {
        let ord = match (x, y) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x.order_cmp(y),
        };
        let ord = if key_spec.ascending {
            ord
        } else {
            ord.reverse()
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// Pattern-level binding of one triple position.
enum Slot {
    /// Constant, resolved to the graph's local id.
    Bound(TermId),
    /// Variable at this column index (bound-ness checked per row).
    Var(usize),
}

/// Row-level binding after consulting the current row.
enum RowSlot {
    Bound(TermId),
    Free(usize),
}

/// Extend one row with every match of `pattern` in `graph`, pushing id rows.
/// Returns the number of index entries scanned. No `Term` is touched.
fn extend_row_with_pattern(
    graph: &Graph,
    map: &GraphIdMap,
    slots: &[Slot; 3],
    row: &[Option<TermId>],
    out: &mut Vec<IdRow>,
) -> u64 {
    // Refine pattern slots against the row: an already-bound variable whose
    // global id has no local id in this graph can match nothing.
    let refine = |slot: &Slot| -> Option<RowSlot> {
        match slot {
            Slot::Bound(local) => Some(RowSlot::Bound(*local)),
            Slot::Var(idx) => match row[*idx] {
                Some(global) => map.to_local(global).map(RowSlot::Bound),
                None => Some(RowSlot::Free(*idx)),
            },
        }
    };
    let (Some(s), Some(p), Some(o)) = (refine(&slots[0]), refine(&slots[1]), refine(&slots[2]))
    else {
        return 0;
    };
    let pick = |slot: &RowSlot| match slot {
        RowSlot::Bound(id) => Some(*id),
        RowSlot::Free(_) => None,
    };
    let (sb, pb, ob) = (pick(&s), pick(&p), pick(&o));
    let assign = |slot: &RowSlot, local: TermId, new_row: &mut IdRow| {
        if let RowSlot::Free(idx) = slot {
            let global = map.to_global(local);
            match new_row[*idx] {
                // Same variable twice in one pattern (?x ?p ?x):
                // later occurrences must agree.
                Some(existing) => {
                    if existing != global {
                        return false;
                    }
                }
                None => new_row[*idx] = Some(global),
            }
        }
        true
    };
    graph.for_each_match(sb, pb, ob, |ms, mp, mo| {
        let mut new_row = row.to_vec();
        let mut ok = true;
        ok &= assign(&s, ms, &mut new_row);
        ok &= assign(&p, mp, &mut new_row);
        ok &= assign(&o, mo, &mut new_row);
        if ok {
            out.push(new_row);
        }
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Left,
}

/// Hash join with SPARQL compatibility semantics, hashing `u32` id tuples.
///
/// Key selection: the shared variables bound in *every* row of both inputs
/// form the hash key; remaining shared variables are checked per candidate
/// pair with unbound-is-compatible semantics (ids compare directly — the
/// shared interner makes id equality coincide with term equality). Falls
/// back to nested loop when no always-bound shared variable exists.
///
/// The output rows are the allocation a cross-product-shaped join balloons
/// through, so both probe strategies check them against the budget between
/// left rows (overshoot bounded by one left row's candidates).
fn join(
    left: RowTable,
    right: RowTable,
    kind: JoinKind,
    meter: &mut BudgetMeter,
) -> Result<RowTable> {
    let shared: Vec<String> = left
        .vars
        .iter()
        .filter(|v| right.vars.contains(v))
        .cloned()
        .collect();

    let mut out_vars = left.vars.clone();
    for v in &right.vars {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
        }
    }
    let width = out_vars.len();

    let l_idx: Vec<usize> = shared
        .iter()
        .map(|v| left.column_index(v).expect("shared var in left"))
        .collect();
    let r_idx: Vec<usize> = shared
        .iter()
        .map(|v| right.column_index(v).expect("shared var in right"))
        .collect();

    let always_bound =
        |table: &RowTable, idx: usize| -> bool { table.rows.iter().all(|r| r[idx].is_some()) };
    // Positions (within `shared`) usable as hash key.
    let key_positions: Vec<usize> = (0..shared.len())
        .filter(|&k| always_bound(&left, l_idx[k]) && always_bound(&right, r_idx[k]))
        .collect();

    // Precompute merge schema: for each right column, its target index in out.
    let right_targets: Vec<usize> = right
        .vars
        .iter()
        .map(|v| {
            out_vars
                .iter()
                .position(|x| x == v)
                .expect("right var in out")
        })
        .collect();
    let mut out = RowTable::with_vars(out_vars);

    let merge = |l_row: &[Option<TermId>], r_row: &[Option<TermId>]| -> IdRow {
        let mut row = l_row.to_vec();
        row.resize(width, None);
        for (ri, &target) in right_targets.iter().enumerate() {
            if row[target].is_none() {
                row[target] = r_row[ri];
            }
        }
        row
    };
    let compatible = |l_row: &[Option<TermId>], r_row: &[Option<TermId>]| -> bool {
        for k in 0..shared.len() {
            if let (Some(a), Some(b)) = (l_row[l_idx[k]], r_row[r_idx[k]]) {
                if a != b {
                    return false;
                }
            }
        }
        true
    };

    if !key_positions.is_empty() || shared.is_empty() {
        // Build hash index on the right side, keyed by id tuples.
        let mut table: HashMap<Vec<TermId>, Vec<usize>> = HashMap::new();
        for (ri, r_row) in right.rows.iter().enumerate() {
            let key: Vec<TermId> = key_positions
                .iter()
                .map(|&k| r_row[r_idx[k]].expect("always bound"))
                .collect();
            table.entry(key).or_default().push(ri);
        }
        for l_row in &left.rows {
            let key: Vec<TermId> = key_positions
                .iter()
                .map(|&k| l_row[l_idx[k]].expect("always bound"))
                .collect();
            let mut matched = false;
            if let Some(candidates) = table.get(&key) {
                for &ri in candidates {
                    let r_row = &right.rows[ri];
                    if compatible(l_row, r_row) {
                        out.rows.push(merge(l_row, r_row));
                        matched = true;
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = l_row.clone();
                row.resize(width, None);
                out.rows.push(row);
            }
            meter.charge_intermediate(
                out.rows.len() as u64,
                row_table_bytes(out.rows.len(), width),
            )?;
        }
    } else {
        // Nested loop with compatibility semantics.
        for l_row in &left.rows {
            let mut matched = false;
            for r_row in &right.rows {
                if compatible(l_row, r_row) {
                    out.rows.push(merge(l_row, r_row));
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut row = l_row.clone();
                row.resize(width, None);
                out.rows.push(row);
            }
            meter.charge_intermediate(
                out.rows.len() as u64,
                row_table_bytes(out.rows.len(), width),
            )?;
        }
    }
    Ok(out)
}

/// Bag union with schema alignment.
fn union(left: RowTable, right: RowTable) -> RowTable {
    let mut vars = left.vars.clone();
    for v in &right.vars {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let map_right: Vec<usize> = right
        .vars
        .iter()
        .map(|v| vars.iter().position(|x| x == v).expect("var present"))
        .collect();
    let width = vars.len();
    let mut out = RowTable::with_vars(vars);
    for mut row in left.rows {
        row.resize(width, None);
        out.rows.push(row);
    }
    for row in right.rows {
        let mut new_row = vec![None; out.vars.len()];
        for (ri, v) in row.into_iter().enumerate() {
            new_row[map_right[ri]] = v;
        }
        out.rows.push(new_row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tbl(vars: &[&str], rows: Vec<Vec<Option<TermId>>>) -> RowTable {
        RowTable {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    fn i(v: u32) -> Option<TermId> {
        Some(TermId(v))
    }

    #[test]
    fn inner_join_on_shared() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(10)], vec![i(2), i(20)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)], vec![i(3), i(300)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.vars, vec!["x", "y", "z"]);
        assert_eq!(j.rows, vec![vec![i(1), i(10), i(100)]]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)]]);
        let j = join(a, b, JoinKind::Left, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.rows.len(), 2);
        assert_eq!(j.rows[1], vec![i(2), None]);
    }

    #[test]
    fn join_with_partially_unbound_shared_var() {
        // 'g' is shared but sometimes unbound on the left (e.g. OPTIONAL
        // output): unbound is compatible with anything.
        let a = tbl(&["x", "g"], vec![vec![i(1), None], vec![i(2), i(9)]]);
        let b = tbl(&["x", "g"], vec![vec![i(1), i(7)], vec![i(2), i(8)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        // Row (1, None) joins (1, 7) → (1, 7); row (2, 9) vs (2, 8) clash.
        assert_eq!(j.rows, vec![vec![i(1), i(7)]]);
    }

    #[test]
    fn cross_product_when_no_shared() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["y"], vec![vec![i(3)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        assert_eq!(j.rows.len(), 2);
    }

    #[test]
    fn union_aligns_schemas() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(2)]]);
        let b = tbl(&["y", "z"], vec![vec![i(5), i(6)]]);
        let u = union(a, b);
        assert_eq!(u.vars, vec!["x", "y", "z"]);
        assert_eq!(u.rows[0], vec![i(1), i(2), None]);
        assert_eq!(u.rows[1], vec![None, i(5), i(6)]);
    }

    #[test]
    fn bag_semantics_preserved() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let b = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let j = join(a, b, JoinKind::Inner, &mut BudgetMeter::unlimited()).unwrap();
        // 2 × 2 duplicates → 4 rows.
        assert_eq!(j.rows.len(), 4);
    }
}
