//! An in-memory SPARQL 1.1 SELECT engine.
//!
//! This crate is the RDF-engine substrate for the RDFFrames reproduction: it
//! plays the role Virtuoso plays in the paper. It implements the subset of
//! SPARQL 1.1 that RDFFrames-generated queries (and the expert-written
//! baselines) use:
//!
//! - Basic graph patterns, `OPTIONAL`, `UNION`, `FILTER`, `GRAPH`, nested
//!   `SELECT` subqueries, `BIND`/expression projection.
//! - `GROUP BY` / aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`/`SAMPLE`, with
//!   `DISTINCT`) and `HAVING`.
//! - Solution modifiers: `DISTINCT`, `ORDER BY`, `LIMIT`, `OFFSET`.
//! - Expressions: comparisons with SPARQL value semantics, boolean algebra,
//!   arithmetic, `REGEX`, `STR`, `LANG`, `DATATYPE`, `BOUND`, `isIRI`,
//!   `isLiteral`, `isBlank`, `YEAR`, `IN`/`NOT IN`, and `xsd:dateTime` casts.
//!
//! Pipeline: [`parser`] produces an AST, [`algebra`] translates it to the
//! SPARQL algebra, [`optimizer`] reorders basic graph patterns using graph
//! statistics (this is what a "powerful-enough" engine optimizer does and is
//! the mechanism behind the paper's naive-vs-optimized experiments) and
//! fuses `LIMIT` over `ORDER BY` into bounded top-k selection, and [`eval`]
//! evaluates with bag semantics.
//!
//! Evaluation is **columnar and id-native**: intermediate results are
//! struct-of-arrays tables of dataset-global `u32` term ids (one dense
//! column per variable plus a presence bitmap), scans append into reused
//! column buffers, and joins, `DISTINCT`, and grouping hash integers off
//! column slices. Terms are materialized only at expression/sort boundaries
//! and the final projection — see [`eval`] and [`pool`]. Two earlier
//! evaluators survive as differential-testing oracles and benchmarking
//! baselines, selected via [`engine::EvalMode`]: the PR 1 row-at-a-time
//! id-native pipeline ([`eval_rows`]) and the seed term-materialized one
//! ([`eval_reference`]). All three agree on results *and* on the
//! `rows_scanned` work metric.

pub mod algebra;
pub mod ast;
pub mod budget;
pub mod engine;
pub mod error;
pub mod eval;
pub mod eval_reference;
pub mod eval_rows;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod pool;
pub mod regex_lite;
pub mod results;

pub use budget::{BudgetMeter, QueryBudget, ResourceKind};
pub use engine::{
    ColumnBatch, Engine, EngineConfig, EvalMode, ExecStats, PreparedQuery, QueryCursor,
};
pub use error::{EngineError, Result};
pub use results::SolutionTable;
