//! A small backtracking regular-expression matcher for SPARQL `REGEX`.
//!
//! Supports the constructs the paper's queries (and reasonable user filters)
//! need: literal characters, `.`, the quantifiers `*` `+` `?`, anchors `^`
//! and `$`, character classes `[abc]`, ranges `[a-z]`, negation `[^...]`,
//! groups `(...)`, alternation `|`, and the `i` (case-insensitive) flag.
//! Matching is *search* semantics (unanchored) like SPARQL's `REGEX`.
//!
//! This is deliberately a simple backtracking engine — patterns in knowledge
//! graph filters are short, and building it ourselves keeps the engine free
//! of external dependencies.

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    alternatives: Vec<Vec<Node>>,
    case_insensitive: bool,
    anchored_start: bool,
    anchored_end: bool,
}

#[derive(Debug, Clone)]
enum Node {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Group(Vec<Vec<Node>>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: Option<u32>,
    },
}

#[derive(Debug, Clone)]
enum ClassItem {
    Single(char),
    Range(char, char),
}

/// Pattern compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

struct PatternParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> PatternParser<'a> {
    fn new(pattern: &'a str) -> Self {
        PatternParser {
            chars: pattern.chars().peekable(),
        }
    }

    /// alternation := sequence ('|' sequence)*
    fn parse_alternation(&mut self, depth: usize) -> Result<Vec<Vec<Node>>, RegexError> {
        if depth > 32 {
            return Err(RegexError("nesting too deep".into()));
        }
        let mut alts = vec![self.parse_sequence(depth)?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            alts.push(self.parse_sequence(depth)?);
        }
        Ok(alts)
    }

    fn parse_sequence(&mut self, depth: usize) -> Result<Vec<Node>, RegexError> {
        let mut seq = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom(depth)?;
            let node = self.maybe_quantify(atom)?;
            seq.push(node);
        }
        Ok(seq)
    }

    fn parse_atom(&mut self, depth: usize) -> Result<Node, RegexError> {
        let c = self
            .chars
            .next()
            .ok_or_else(|| RegexError("truncated".into()))?;
        match c {
            '.' => Ok(Node::Any),
            '(' => {
                let alts = self.parse_alternation(depth + 1)?;
                match self.chars.next() {
                    Some(')') => Ok(Node::Group(alts)),
                    _ => Err(RegexError("missing ')'".into())),
                }
            }
            '[' => self.parse_class(),
            '\\' => {
                let esc = self
                    .chars
                    .next()
                    .ok_or_else(|| RegexError("trailing backslash".into()))?;
                match esc {
                    'd' => Ok(Node::Class {
                        negated: false,
                        items: vec![ClassItem::Range('0', '9')],
                    }),
                    'w' => Ok(Node::Class {
                        negated: false,
                        items: vec![
                            ClassItem::Range('a', 'z'),
                            ClassItem::Range('A', 'Z'),
                            ClassItem::Range('0', '9'),
                            ClassItem::Single('_'),
                        ],
                    }),
                    's' => Ok(Node::Class {
                        negated: false,
                        items: vec![
                            ClassItem::Single(' '),
                            ClassItem::Single('\t'),
                            ClassItem::Single('\n'),
                            ClassItem::Single('\r'),
                        ],
                    }),
                    other => Ok(Node::Char(other)),
                }
            }
            '*' | '+' | '?' => Err(RegexError(format!("dangling quantifier '{c}'"))),
            other => Ok(Node::Char(other)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, RegexError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            negated = true;
            self.chars.next();
        }
        let mut items = Vec::new();
        loop {
            let c = self
                .chars
                .next()
                .ok_or_else(|| RegexError("unterminated class".into()))?;
            if c == ']' {
                if items.is_empty() {
                    return Err(RegexError("empty class".into()));
                }
                return Ok(Node::Class { negated, items });
            }
            let c = if c == '\\' {
                self.chars
                    .next()
                    .ok_or_else(|| RegexError("trailing backslash".into()))?
            } else {
                c
            };
            if self.chars.peek() == Some(&'-') {
                // Peek past '-' to see if it's a range or literal '-]'.
                let mut clone = self.chars.clone();
                clone.next();
                match clone.peek() {
                    Some(&']') | None => {
                        items.push(ClassItem::Single(c));
                    }
                    Some(&hi) => {
                        self.chars.next();
                        self.chars.next();
                        items.push(ClassItem::Range(c, hi));
                    }
                }
            } else {
                items.push(ClassItem::Single(c));
            }
        }
    }

    fn maybe_quantify(&mut self, node: Node) -> Result<Node, RegexError> {
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Ok(Node::Repeat {
                    node: Box::new(node),
                    min: 0,
                    max: None,
                })
            }
            Some('+') => {
                self.chars.next();
                Ok(Node::Repeat {
                    node: Box::new(node),
                    min: 1,
                    max: None,
                })
            }
            Some('?') => {
                self.chars.next();
                Ok(Node::Repeat {
                    node: Box::new(node),
                    min: 0,
                    max: Some(1),
                })
            }
            _ => Ok(node),
        }
    }
}

impl Regex {
    /// Compile a pattern. `flags` supports `i` (case-insensitive).
    pub fn new(pattern: &str, flags: &str) -> Result<Self, RegexError> {
        let case_insensitive = flags.contains('i');
        let (pattern, anchored_start) = match pattern.strip_prefix('^') {
            Some(rest) => (rest, true),
            None => (pattern, false),
        };
        let (pattern, anchored_end) = match pattern.strip_suffix('$') {
            // Don't treat an escaped `\$` as an anchor.
            Some(rest) if !rest.ends_with('\\') => (rest, true),
            _ => (pattern, false),
        };
        let mut parser = PatternParser::new(pattern);
        let alternatives = parser.parse_alternation(0)?;
        if parser.chars.next().is_some() {
            return Err(RegexError("unbalanced ')'".into()));
        }
        Ok(Regex {
            alternatives,
            case_insensitive,
            anchored_start,
            anchored_end,
        })
    }

    /// Search semantics: does the pattern match anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            for alt in &self.alternatives {
                if let Some(ends) = self.match_seq(alt, &chars, start) {
                    if !self.anchored_end {
                        if !ends.is_empty() {
                            return true;
                        }
                    } else if ends.contains(&chars.len()) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Match a sequence of nodes starting at `pos`; returns all possible end
    /// positions (None if none).
    fn match_seq(&self, seq: &[Node], text: &[char], pos: usize) -> Option<Vec<usize>> {
        let mut positions = vec![pos];
        for node in seq {
            let mut next = Vec::new();
            for &p in &positions {
                self.match_node(node, text, p, &mut next);
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                return None;
            }
            positions = next;
        }
        Some(positions)
    }

    fn match_node(&self, node: &Node, text: &[char], pos: usize, out: &mut Vec<usize>) {
        match node {
            Node::Char(c) => {
                let c = if self.case_insensitive {
                    c.to_lowercase().next().unwrap_or(*c)
                } else {
                    *c
                };
                if text.get(pos) == Some(&c) {
                    out.push(pos + 1);
                }
            }
            Node::Any => {
                if pos < text.len() {
                    out.push(pos + 1);
                }
            }
            Node::Class { negated, items } => {
                if let Some(&c) = text.get(pos) {
                    let mut hit = items.iter().any(|item| match item {
                        ClassItem::Single(s) => c == *s,
                        ClassItem::Range(lo, hi) => c >= *lo && c <= *hi,
                    });
                    if self.case_insensitive && !hit {
                        // Retry against the uppercase form of class items.
                        hit = items.iter().any(|item| match item {
                            ClassItem::Single(s) => s.to_lowercase().next() == Some(c),
                            ClassItem::Range(lo, hi) => {
                                let lo = lo.to_ascii_lowercase();
                                let hi = hi.to_ascii_lowercase();
                                c >= lo && c <= hi
                            }
                        });
                    }
                    if hit != *negated {
                        out.push(pos + 1);
                    }
                }
            }
            Node::Group(alts) => {
                for alt in alts {
                    if let Some(ends) = self.match_seq(alt, text, pos) {
                        out.extend(ends);
                    }
                }
            }
            Node::Repeat { node, min, max } => {
                // Breadth-first expansion of repetition counts.
                let mut frontier = vec![pos];
                let mut count = 0u32;
                if *min == 0 {
                    out.push(pos);
                }
                loop {
                    if let Some(m) = max {
                        if count >= *m {
                            break;
                        }
                    }
                    let mut next = Vec::new();
                    for &p in &frontier {
                        self.match_node(node, text, p, &mut next);
                    }
                    next.sort_unstable();
                    next.dedup();
                    // Guard against zero-width loops.
                    next.retain(|&p| !frontier.contains(&p) || p > pos);
                    if next.is_empty() {
                        break;
                    }
                    count += 1;
                    if count >= *min {
                        out.extend(next.iter().copied());
                    }
                    if next == frontier {
                        break;
                    }
                    frontier = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::new(pat, "").unwrap().is_match(text)
    }

    #[test]
    fn substring_search() {
        assert!(m("USA", "Dallas, USA"));
        assert!(!m("USA", "Canada"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^bcd", "abcdef"));
        assert!(m("def$", "abcdef"));
        assert!(!m("abc$", "abcdef"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("a.c", "abc"));
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(m("a.*z", "a---z"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]+", "cab"));
        assert!(m("[a-z]+[0-9]", "hello5"));
        assert!(m("[^0-9]", "x"));
        assert!(!m("^[^0-9]+$", "a1b"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
    }

    #[test]
    fn case_insensitive_flag() {
        let r = Regex::new("usa", "i").unwrap();
        assert!(r.is_match("United States (USA)"));
        let r2 = Regex::new("USA", "i").unwrap();
        assert!(r2.is_match("usa today"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\d+", "version 42"));
        assert!(m(r"\w+", "word"));
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("*a", "").is_err());
        assert!(Regex::new("(a", "").is_err());
        assert!(Regex::new("[a", "").is_err());
        assert!(Regex::new("a)", "").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "anything"));
        assert!(m("", ""));
    }
}
