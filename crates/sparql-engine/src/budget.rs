//! Per-query resource budgets and the meter that enforces them.
//!
//! A server that cannot kill a bad query cannot serve good ones: an
//! unconstrained cross join will happily scan, allocate, and burn wall
//! clock until the machine falls over. [`QueryBudget`] caps the four
//! resources a runaway query consumes — index entries scanned,
//! intermediate result rows, estimated intermediate memory, and elapsed
//! time — and [`BudgetMeter`] is the cheap per-evaluation counter all
//! three evaluators poll from their hot loops (BGP extension, join pair
//! emission, group accumulation) and the embedded cursor polls per batch.
//!
//! Violations surface as the typed
//! [`EngineError::ResourceExhausted`] — never a panic, never an OOM. The
//! enforcement contract is *bounded overshoot*, not exactness: checks sit
//! between rows of the hot loops, so allocation past the limit is bounded
//! by one row's matches (BGP) or one probe row's candidates (joins), and
//! the deadline is polled every [`POLL_INTERVAL`] work units so
//! `Instant::now()` stays off the per-row path.
//!
//! All meter arithmetic saturates: an adversarial `usize::MAX`-scale
//! charge must trip the limit, not wrap in a debug build.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::{EngineError, Result};

/// Per-query resource limits. All axes optional; `None` = unlimited (the
/// default, so existing configurations are unaffected).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Cap on index entries scanned (the engine's deterministic work
    /// metric, [`crate::engine::ExecStats::rows_scanned`]).
    pub max_rows_scanned: Option<u64>,
    /// Cap on the row count of any single intermediate result (operator
    /// output, join pair list, or group count).
    pub max_intermediate_rows: Option<u64>,
    /// Cap on the *estimated* bytes of any single intermediate result.
    /// Estimates track the dominant allocations (id vectors, presence
    /// bitmaps, row vectors), not the allocator's exact footprint.
    pub max_memory_bytes: Option<u64>,
    /// Wall-clock evaluation deadline, measured from evaluator creation.
    pub deadline: Option<Duration>,
}

impl QueryBudget {
    /// No limits on any axis.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// True when no axis is limited (the meter then compiles to a single
    /// predictable branch per check).
    pub fn is_unlimited(&self) -> bool {
        self.max_rows_scanned.is_none()
            && self.max_intermediate_rows.is_none()
            && self.max_memory_bytes.is_none()
            && self.deadline.is_none()
    }

    /// Cap scanned index entries.
    pub fn with_max_rows_scanned(mut self, limit: u64) -> Self {
        self.max_rows_scanned = Some(limit);
        self
    }

    /// Cap intermediate result rows.
    pub fn with_max_intermediate_rows(mut self, limit: u64) -> Self {
        self.max_intermediate_rows = Some(limit);
        self
    }

    /// Cap estimated intermediate memory.
    pub fn with_max_memory_bytes(mut self, limit: u64) -> Self {
        self.max_memory_bytes = Some(limit);
        self
    }

    /// Set a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Which budget axis a query exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// [`QueryBudget::max_rows_scanned`].
    RowsScanned,
    /// [`QueryBudget::max_intermediate_rows`].
    IntermediateRows,
    /// [`QueryBudget::max_memory_bytes`].
    MemoryBytes,
    /// [`QueryBudget::deadline`] (limit/observed reported in milliseconds).
    Deadline,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::RowsScanned => "rows scanned",
            ResourceKind::IntermediateRows => "intermediate rows",
            ResourceKind::MemoryBytes => "memory bytes",
            ResourceKind::Deadline => "deadline (ms)",
        };
        f.write_str(s)
    }
}

/// Hot-loop checks run their expensive part (deadline poll, buffer size
/// estimation) once per this many charged work units.
pub const POLL_INTERVAL: u64 = 4096;

/// The per-evaluation enforcement state for one [`QueryBudget`].
///
/// Cheap by construction: an inactive meter (unlimited budget) is one
/// branch per check; an active one is a saturating add and two compares,
/// with `Instant::now()` only every [`POLL_INTERVAL`] units of work.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    active: bool,
    max_rows_scanned: u64,
    max_intermediate_rows: u64,
    max_memory_bytes: u64,
    /// `(deadline instant, configured limit in ms)`; the instant is fixed
    /// at meter creation, so the budget covers the whole evaluation.
    deadline: Option<(Instant, u64)>,
    started: Option<Instant>,
    rows_scanned: u64,
    /// Work units until the next deadline poll.
    until_poll: u64,
}

impl BudgetMeter {
    /// A meter that never trips (every check is one branch).
    pub fn unlimited() -> Self {
        BudgetMeter {
            active: false,
            max_rows_scanned: u64::MAX,
            max_intermediate_rows: u64::MAX,
            max_memory_bytes: u64::MAX,
            deadline: None,
            started: None,
            rows_scanned: 0,
            until_poll: POLL_INTERVAL,
        }
    }

    /// Meter for a budget; the deadline clock starts now.
    pub fn new(budget: &QueryBudget) -> Self {
        if budget.is_unlimited() {
            return BudgetMeter::unlimited();
        }
        let started = Instant::now();
        BudgetMeter {
            active: true,
            max_rows_scanned: budget.max_rows_scanned.unwrap_or(u64::MAX),
            max_intermediate_rows: budget.max_intermediate_rows.unwrap_or(u64::MAX),
            max_memory_bytes: budget.max_memory_bytes.unwrap_or(u64::MAX),
            deadline: budget.deadline.map(|d| {
                let limit_ms = d.as_millis().min(u64::MAX as u128) as u64;
                (started.checked_add(d).unwrap_or(started), limit_ms)
            }),
            started: Some(started),
            rows_scanned: 0,
            until_poll: POLL_INTERVAL,
        }
    }

    /// True when some axis is limited (hot loops may skip estimating
    /// buffer sizes entirely for an inactive meter).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Charge `n` scanned index entries. The scan cap is checked
    /// immediately; every [`POLL_INTERVAL`] entries the deadline is
    /// checked too. Returns `true` when that periodic checkpoint fired —
    /// the caller's cue to run its own expensive checks (current buffer
    /// sizes against the memory/rows caps).
    #[inline]
    pub fn charge_scan(&mut self, n: u64) -> Result<bool> {
        if !self.active {
            return Ok(false);
        }
        self.rows_scanned = self.rows_scanned.saturating_add(n);
        if self.rows_scanned > self.max_rows_scanned {
            return Err(self.exhausted(
                ResourceKind::RowsScanned,
                self.max_rows_scanned,
                self.rows_scanned,
            ));
        }
        if let Some(rest) = self.until_poll.checked_sub(n) {
            if rest > 0 {
                self.until_poll = rest;
                return Ok(false);
            }
        }
        self.until_poll = POLL_INTERVAL;
        self.check_deadline()?;
        Ok(true)
    }

    /// Check one intermediate result's size (rows and estimated bytes)
    /// against the caps, and tick the deadline poll counter by one work
    /// unit. Checks current size, not a running total: operators hand
    /// back their memory when they finish, so the budget bounds *peak*
    /// use.
    #[inline]
    pub fn charge_intermediate(&mut self, rows: u64, bytes: u64) -> Result<()> {
        if !self.active {
            return Ok(());
        }
        if rows > self.max_intermediate_rows {
            return Err(self.exhausted(
                ResourceKind::IntermediateRows,
                self.max_intermediate_rows,
                rows,
            ));
        }
        if bytes > self.max_memory_bytes {
            return Err(self.exhausted(ResourceKind::MemoryBytes, self.max_memory_bytes, bytes));
        }
        self.until_poll = self.until_poll.saturating_sub(1);
        if self.until_poll == 0 {
            self.until_poll = POLL_INTERVAL;
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Forced deadline check (batch boundaries, operator entry points).
    #[inline]
    pub fn check_deadline(&mut self) -> Result<()> {
        let Some((deadline, limit_ms)) = self.deadline else {
            return Ok(());
        };
        let now = Instant::now();
        if now >= deadline {
            let observed = self
                .started
                .map(|s| now.duration_since(s).as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(limit_ms);
            return Err(self.exhausted(ResourceKind::Deadline, limit_ms, observed));
        }
        Ok(())
    }

    fn exhausted(&self, resource: ResourceKind, limit: u64, observed: u64) -> EngineError {
        EngineError::ResourceExhausted {
            resource,
            limit,
            observed,
        }
    }
}

/// The meter surface the hot loops charge against, so one loop body serves
/// both the sequential path (a `&mut BudgetMeter`) and a parallel worker
/// (a [`WorkerMeter`] charging shared atomics).
pub trait OpMeter {
    /// See [`BudgetMeter::charge_scan`].
    fn charge_scan(&mut self, n: u64) -> Result<bool>;
    /// See [`BudgetMeter::charge_intermediate`].
    fn charge_intermediate(&mut self, rows: u64, bytes: u64) -> Result<()>;
}

impl OpMeter for BudgetMeter {
    #[inline]
    fn charge_scan(&mut self, n: u64) -> Result<bool> {
        BudgetMeter::charge_scan(self, n)
    }

    #[inline]
    fn charge_intermediate(&mut self, rows: u64, bytes: u64) -> Result<()> {
        BudgetMeter::charge_intermediate(self, rows, bytes)
    }
}

/// Shared budget accounting for one parallel operator.
///
/// Forked from the evaluation's [`BudgetMeter`] before a fan-out and folded
/// back afterwards ([`SharedMeter::finish`]): workers charge scans into one
/// shared atomic total (seeded with the parent's count, so the cap covers
/// the whole evaluation, not each operator separately) and publish their
/// live buffer sizes into per-chunk slots whose *sum* is checked against
/// the intermediate-rows/memory caps — the parallel buffers are exactly the
/// allocation the sequential loop accumulated in one place.
///
/// The first limit violation is recorded once ([`SharedMeter::trip`]);
/// every other worker observes the flag at its next checkpoint and bails
/// with the same typed error, so overshoot stays bounded by the in-flight
/// work between checkpoints — one hot-loop iteration per worker instead of
/// one per evaluation.
#[derive(Debug)]
pub struct SharedMeter {
    active: bool,
    max_rows_scanned: u64,
    max_intermediate_rows: u64,
    max_memory_bytes: u64,
    deadline: Option<(Instant, u64)>,
    started: Option<Instant>,
    /// Parent meter's scan count when this operator forked.
    base_scanned: u64,
    /// Scans charged by this operator's workers.
    scanned: AtomicU64,
    /// Per-chunk live buffer sizes (rows, bytes), summed at checkpoints.
    buf_rows: Vec<AtomicU64>,
    buf_bytes: Vec<AtomicU64>,
    tripped: AtomicBool,
    trip_error: Mutex<Option<EngineError>>,
}

impl SharedMeter {
    /// Fork shared accounting for an operator fanning out over `slots`
    /// chunks.
    pub fn new(parent: &BudgetMeter, slots: usize) -> Self {
        SharedMeter {
            active: parent.active,
            max_rows_scanned: parent.max_rows_scanned,
            max_intermediate_rows: parent.max_intermediate_rows,
            max_memory_bytes: parent.max_memory_bytes,
            deadline: parent.deadline,
            started: parent.started,
            base_scanned: parent.rows_scanned,
            scanned: AtomicU64::new(0),
            buf_rows: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            buf_bytes: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            tripped: AtomicBool::new(false),
            trip_error: Mutex::new(None),
        }
    }

    /// Meter handle for the worker processing chunk `slot`.
    pub fn worker(&self, slot: usize) -> WorkerMeter<'_> {
        WorkerMeter {
            shared: self,
            slot,
            until_poll: POLL_INTERVAL,
        }
    }

    /// Fold the shared scan total back into the parent meter and surface
    /// the first trip, if any.
    pub fn finish(&self, parent: &mut BudgetMeter) -> Result<()> {
        parent.rows_scanned = self
            .base_scanned
            .saturating_add(self.scanned.load(Ordering::Relaxed));
        if self.tripped.load(Ordering::Acquire) {
            if let Some(err) = self.trip_error.lock().expect("trip slot").clone() {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Record the first violation; later trips keep the original error.
    fn trip(&self, err: EngineError) -> EngineError {
        let mut slot = self.trip_error.lock().expect("trip slot");
        let first = slot.get_or_insert_with(|| err.clone()).clone();
        self.tripped.store(true, Ordering::Release);
        first
    }

    /// The recorded error if some worker already tripped.
    fn already_tripped(&self) -> Option<EngineError> {
        if !self.tripped.load(Ordering::Acquire) {
            return None;
        }
        self.trip_error.lock().expect("trip slot").clone()
    }

    fn deadline_exceeded(&self) -> Option<EngineError> {
        let (deadline, limit_ms) = self.deadline?;
        let now = Instant::now();
        if now < deadline {
            return None;
        }
        let observed = self
            .started
            .map(|s| now.duration_since(s).as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(limit_ms);
        Some(EngineError::ResourceExhausted {
            resource: ResourceKind::Deadline,
            limit: limit_ms,
            observed,
        })
    }
}

/// One worker's charging handle over a [`SharedMeter`]. Scan charges go to
/// the shared total immediately (exact accounting); the poll counter and
/// buffer publication are worker-local, so checkpoint cost matches the
/// sequential meter's.
#[derive(Debug)]
pub struct WorkerMeter<'s> {
    shared: &'s SharedMeter,
    slot: usize,
    until_poll: u64,
}

impl OpMeter for WorkerMeter<'_> {
    #[inline]
    fn charge_scan(&mut self, n: u64) -> Result<bool> {
        let shared = self.shared;
        if !shared.active {
            return Ok(false);
        }
        let total = shared
            .base_scanned
            .saturating_add(shared.scanned.fetch_add(n, Ordering::Relaxed))
            .saturating_add(n);
        if total > shared.max_rows_scanned {
            return Err(shared.trip(EngineError::ResourceExhausted {
                resource: ResourceKind::RowsScanned,
                limit: shared.max_rows_scanned,
                observed: total,
            }));
        }
        if let Some(rest) = self.until_poll.checked_sub(n) {
            if rest > 0 {
                self.until_poll = rest;
                return Ok(false);
            }
        }
        self.until_poll = POLL_INTERVAL;
        if let Some(err) = shared.already_tripped() {
            return Err(err);
        }
        if let Some(err) = shared.deadline_exceeded() {
            return Err(shared.trip(err));
        }
        Ok(true)
    }

    #[inline]
    fn charge_intermediate(&mut self, rows: u64, bytes: u64) -> Result<()> {
        let shared = self.shared;
        if !shared.active {
            return Ok(());
        }
        // Publish this chunk's live buffer size and check the cross-chunk
        // sum — chunk outputs all stay allocated until the merge, so the
        // sum is the operator's actual footprint, same as the sequential
        // loop's single growing buffer.
        shared.buf_rows[self.slot].store(rows, Ordering::Relaxed);
        shared.buf_bytes[self.slot].store(bytes, Ordering::Relaxed);
        let total_rows = shared
            .buf_rows
            .iter()
            .fold(0u64, |a, v| a.saturating_add(v.load(Ordering::Relaxed)));
        if total_rows > shared.max_intermediate_rows {
            return Err(shared.trip(EngineError::ResourceExhausted {
                resource: ResourceKind::IntermediateRows,
                limit: shared.max_intermediate_rows,
                observed: total_rows,
            }));
        }
        let total_bytes = shared
            .buf_bytes
            .iter()
            .fold(0u64, |a, v| a.saturating_add(v.load(Ordering::Relaxed)));
        if total_bytes > shared.max_memory_bytes {
            return Err(shared.trip(EngineError::ResourceExhausted {
                resource: ResourceKind::MemoryBytes,
                limit: shared.max_memory_bytes,
                observed: total_bytes,
            }));
        }
        self.until_poll = self.until_poll.saturating_sub(1);
        if self.until_poll == 0 {
            self.until_poll = POLL_INTERVAL;
            if let Some(err) = shared.already_tripped() {
                return Err(err);
            }
            if let Some(err) = shared.deadline_exceeded() {
                return Err(shared.trip(err));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = BudgetMeter::unlimited();
        assert!(!m.is_active());
        assert!(!m.charge_scan(u64::MAX).unwrap());
        m.charge_intermediate(u64::MAX, u64::MAX).unwrap();
        m.check_deadline().unwrap();
    }

    #[test]
    fn scan_cap_trips_with_exact_counts() {
        let budget = QueryBudget::unlimited().with_max_rows_scanned(10);
        let mut m = BudgetMeter::new(&budget);
        m.charge_scan(10).unwrap();
        let err = m.charge_scan(1).unwrap_err();
        assert_eq!(
            err,
            EngineError::ResourceExhausted {
                resource: ResourceKind::RowsScanned,
                limit: 10,
                observed: 11,
            }
        );
    }

    #[test]
    fn meter_arithmetic_saturates_instead_of_overflowing() {
        // Debug builds panic on wrapping arithmetic; adversarial charges
        // must saturate and trip the limit instead.
        let budget = QueryBudget::unlimited().with_max_rows_scanned(u64::MAX - 1);
        let mut m = BudgetMeter::new(&budget);
        m.charge_scan(u64::MAX - 1).unwrap();
        assert!(m.charge_scan(u64::MAX).is_err());

        let budget = QueryBudget::unlimited().with_max_memory_bytes(1);
        let mut m = BudgetMeter::new(&budget);
        assert!(m.charge_intermediate(0, u64::MAX).is_err());
    }

    #[test]
    fn intermediate_checks_current_size_not_total() {
        let budget = QueryBudget::unlimited().with_max_intermediate_rows(100);
        let mut m = BudgetMeter::new(&budget);
        // Many small tables are fine; one big one trips.
        for _ in 0..1000 {
            m.charge_intermediate(100, 0).unwrap();
        }
        assert!(matches!(
            m.charge_intermediate(101, 0),
            Err(EngineError::ResourceExhausted {
                resource: ResourceKind::IntermediateRows,
                limit: 100,
                observed: 101,
            })
        ));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let budget = QueryBudget::unlimited().with_deadline(Duration::ZERO);
        let mut m = BudgetMeter::new(&budget);
        assert!(matches!(
            m.check_deadline(),
            Err(EngineError::ResourceExhausted {
                resource: ResourceKind::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn poll_interval_drives_deadline_checks_from_charges() {
        let budget = QueryBudget::unlimited().with_deadline(Duration::ZERO);
        let mut m = BudgetMeter::new(&budget);
        // Under one poll interval: no deadline check yet.
        assert!(!m.charge_scan(POLL_INTERVAL - 1).unwrap());
        // Crossing the interval runs the check and trips.
        assert!(m.charge_scan(1).is_err());
    }
}
