//! Expression evaluation with SPARQL semantics.
//!
//! Evaluation returns `Option<Term>`: `None` models both *unbound* and
//! *error*, which coincide for our purposes (a `FILTER` treats an error as
//! false; `BIND`/projection of an error leaves the variable unbound —
//! exactly the `Extend` semantics in the paper's Section 5.2).

use std::collections::HashMap;

use rdf_model::term::{year_of_epoch, Literal, TypedValue};
use rdf_model::vocab::xsd;
use rdf_model::{Term, TermId};

use crate::ast::{AggOp, ArithOp, CmpOp, Expr, Func};
use crate::pool::TermPool;
use crate::regex_lite::Regex;

/// A view of one solution row that can resolve variable names to terms.
///
/// Expression evaluation is generic over this so the same [`eval_expr`]
/// serves the id-native evaluator (rows of `TermId`, resolved through a
/// [`TermPool`] without cloning) and the term-materialized reference
/// evaluator (rows of owned `Term`s).
pub trait Bindings: Copy {
    /// Look up a variable's binding.
    fn get(&self, name: &str) -> Option<&Term>;
}

/// A term-materialized row seen through its variable schema (reference
/// evaluator and unit tests).
#[derive(Debug, Clone, Copy)]
pub struct RowCtx<'a> {
    /// Column names of the table.
    pub vars: &'a [String],
    /// The row values (parallel to `vars`).
    pub row: &'a [Option<Term>],
}

impl<'a> Bindings for RowCtx<'a> {
    fn get(&self, name: &str) -> Option<&Term> {
        let idx = self.vars.iter().position(|v| v == name)?;
        self.row[idx].as_ref()
    }
}

/// An id-native row: bindings are global [`TermId`]s resolved through the
/// evaluator's [`TermPool`] only when an expression actually needs the value.
#[derive(Debug, Clone, Copy)]
pub struct IdRowCtx<'a> {
    /// Column names of the table.
    pub vars: &'a [String],
    /// The row ids (parallel to `vars`).
    pub row: &'a [Option<TermId>],
    /// Resolves ids (dataset terms and query-computed overflow terms).
    pub pool: &'a TermPool<'a>,
}

impl<'a> Bindings for IdRowCtx<'a> {
    fn get(&self, name: &str) -> Option<&Term> {
        let idx = self.vars.iter().position(|v| v == name)?;
        self.row[idx].map(|id| self.pool.resolve(id))
    }
}

/// Caches shared across the evaluation of one query (compiled regexes).
#[derive(Debug, Default)]
pub struct EvalCaches {
    regexes: HashMap<(String, String), Option<Regex>>,
}

impl EvalCaches {
    /// Fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn regex(&mut self, pattern: &str, flags: &str) -> Option<&Regex> {
        self.regexes
            .entry((pattern.to_string(), flags.to_string()))
            .or_insert_with(|| Regex::new(pattern, flags).ok())
            .as_ref()
    }
}

/// Effective boolean value per SPARQL 17.2.2. `None` on type error.
pub fn ebv(term: &Term) -> Option<bool> {
    match term {
        Term::Literal(l) => match l.parsed {
            TypedValue::Boolean(b) => Some(b),
            TypedValue::Integer(i) => Some(i != 0),
            TypedValue::Double(d) => Some(d != 0.0 && !d.is_nan()),
            TypedValue::String => {
                if l.datatype.is_none() || l.datatype.as_deref() == Some(xsd::STRING) {
                    Some(!l.lexical.is_empty())
                } else {
                    // Ill-typed numeric/boolean literal: EBV is false per spec.
                    Some(false)
                }
            }
            TypedValue::DateTime(_) => None,
        },
        _ => None,
    }
}

/// Evaluate an expression to a term. `None` = unbound/error.
pub fn eval_expr<B: Bindings>(expr: &Expr, ctx: B, caches: &mut EvalCaches) -> Option<Term> {
    match expr {
        Expr::Var(v) => ctx.get(v).cloned(),
        Expr::Const(t) => Some(t.clone()),
        Expr::And(a, b) => {
            // SPARQL three-valued AND: false dominates error.
            let ea = eval_expr(a, ctx, caches).as_ref().and_then(ebv);
            let eb = eval_expr(b, ctx, caches).as_ref().and_then(ebv);
            match (ea, eb) {
                (Some(false), _) | (_, Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                (Some(true), Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                _ => None,
            }
        }
        Expr::Or(a, b) => {
            let ea = eval_expr(a, ctx, caches).as_ref().and_then(ebv);
            let eb = eval_expr(b, ctx, caches).as_ref().and_then(ebv);
            match (ea, eb) {
                (Some(true), _) | (_, Some(true)) => Some(Term::Literal(Literal::boolean(true))),
                (Some(false), Some(false)) => Some(Term::Literal(Literal::boolean(false))),
                _ => None,
            }
        }
        Expr::Not(a) => {
            let v = eval_expr(a, ctx, caches)?;
            Some(Term::Literal(Literal::boolean(!ebv(&v)?)))
        }
        Expr::Cmp(op, a, b) => {
            let va = eval_expr(a, ctx, caches)?;
            let vb = eval_expr(b, ctx, caches)?;
            let result = match op {
                CmpOp::Eq => va.value_eq(&vb)?,
                CmpOp::Neq => !va.value_eq(&vb)?,
                CmpOp::Lt => va.value_cmp(&vb)? == std::cmp::Ordering::Less,
                CmpOp::Le => va.value_cmp(&vb)? != std::cmp::Ordering::Greater,
                CmpOp::Gt => va.value_cmp(&vb)? == std::cmp::Ordering::Greater,
                CmpOp::Ge => va.value_cmp(&vb)? != std::cmp::Ordering::Less,
            };
            Some(Term::Literal(Literal::boolean(result)))
        }
        Expr::Arith(op, a, b) => {
            let va = eval_expr(a, ctx, caches)?;
            let vb = eval_expr(b, ctx, caches)?;
            arith(*op, &va, &vb)
        }
        Expr::Neg(a) => {
            let v = eval_expr(a, ctx, caches)?;
            match v.as_literal()?.parsed {
                TypedValue::Integer(i) => Some(Term::Literal(Literal::integer(-i))),
                TypedValue::Double(d) => Some(Term::Literal(Literal::double(-d))),
                _ => None,
            }
        }
        Expr::In {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, ctx, caches)?;
            let mut found = false;
            for item in list {
                if let Some(candidate) = eval_expr(item, ctx, caches) {
                    if v.value_eq(&candidate) == Some(true) {
                        found = true;
                        break;
                    }
                }
            }
            Some(Term::Literal(Literal::boolean(found != *negated)))
        }
        Expr::Call(func, args) => eval_call(func, args, ctx, caches),
        // Aggregates are rewritten to column references by the algebra
        // translation before evaluation; hitting one here is an error.
        Expr::Aggregate { .. } => None,
    }
}

fn both_integers(a: &Term, b: &Term) -> Option<(i64, i64)> {
    match (a.as_literal()?.parsed, b.as_literal()?.parsed) {
        (TypedValue::Integer(x), TypedValue::Integer(y)) => Some((x, y)),
        _ => None,
    }
}

fn arith(op: ArithOp, a: &Term, b: &Term) -> Option<Term> {
    if let Some((x, y)) = both_integers(a, b) {
        let r = match op {
            ArithOp::Add => x.checked_add(y),
            ArithOp::Sub => x.checked_sub(y),
            ArithOp::Mul => x.checked_mul(y),
            ArithOp::Div => {
                // SPARQL integer division produces a decimal.
                let xf = x as f64;
                let yf = y as f64;
                if y == 0 {
                    return None;
                }
                return Some(Term::Literal(Literal::double(xf / yf)));
            }
        };
        return r.map(|v| Term::Literal(Literal::integer(v)));
    }
    let x = a.as_literal()?.as_f64()?;
    let y = b.as_literal()?.as_f64()?;
    let r = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return None;
            }
            x / y
        }
    };
    Some(Term::Literal(Literal::double(r)))
}

fn eval_call<B: Bindings>(
    func: &Func,
    args: &[Expr],
    ctx: B,
    caches: &mut EvalCaches,
) -> Option<Term> {
    match func {
        Func::Bound => {
            // BOUND takes a variable; unbound is a *value* here, not error.
            match args.first()? {
                Expr::Var(v) => Some(Term::Literal(Literal::boolean(ctx.get(v).is_some()))),
                _ => None,
            }
        }
        Func::Str => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            Some(Term::string(v.str_value().to_string()))
        }
        Func::Lang => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            let lang = v.as_literal()?.language.as_deref().unwrap_or("");
            Some(Term::string(lang.to_string()))
        }
        Func::Datatype => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            Some(Term::iri(v.as_literal()?.datatype_iri().to_string()))
        }
        Func::IsIri => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            Some(Term::Literal(Literal::boolean(v.is_iri())))
        }
        Func::IsLiteral => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            Some(Term::Literal(Literal::boolean(v.is_literal())))
        }
        Func::IsBlank => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            Some(Term::Literal(Literal::boolean(v.is_blank())))
        }
        Func::Regex => {
            let text = eval_expr(args.first()?, ctx, caches)?;
            let text = match &text {
                Term::Literal(l) => l.lexical.to_string(),
                other => other.str_value().to_string(),
            };
            let pattern = eval_expr(args.get(1)?, ctx, caches)?;
            let pattern = pattern.as_literal()?.lexical.to_string();
            let flags = match args.get(2) {
                Some(f) => eval_expr(f, ctx, caches)?.as_literal()?.lexical.to_string(),
                None => String::new(),
            };
            let re = caches.regex(&pattern, &flags)?;
            Some(Term::Literal(Literal::boolean(re.is_match(&text))))
        }
        Func::Year | Func::Month | Func::Day => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            let secs = date_seconds(&v)?;
            let value = match func {
                Func::Year => year_of_epoch(secs),
                Func::Month => civil_of_epoch(secs).1,
                Func::Day => civil_of_epoch(secs).2,
                _ => unreachable!(),
            };
            Some(Term::integer(value))
        }
        Func::Cast(datatype) => {
            let v = eval_expr(args.first()?, ctx, caches)?;
            cast(&v, datatype)
        }
    }
}

/// Interpret a term as a point in time (accepts `xsd:dateTime`, `xsd:date`,
/// `xsd:gYear`, and — pragmatically — strings/integers that parse as one).
fn date_seconds(term: &Term) -> Option<i64> {
    let lit = term.as_literal()?;
    match lit.parsed {
        TypedValue::DateTime(secs) => Some(secs),
        TypedValue::Integer(y) => {
            // A bare year, as DBLP uses.
            let as_date = Literal::typed(y.to_string(), xsd::G_YEAR);
            match as_date.parsed {
                TypedValue::DateTime(secs) => Some(secs),
                _ => None,
            }
        }
        TypedValue::String => {
            let probe = Literal::typed(lit.lexical.to_string(), xsd::DATE_TIME);
            match probe.parsed {
                TypedValue::DateTime(secs) => Some(secs),
                _ => {
                    let probe = Literal::typed(lit.lexical.to_string(), xsd::G_YEAR);
                    match probe.parsed {
                        TypedValue::DateTime(secs) => Some(secs),
                        _ => None,
                    }
                }
            }
        }
        _ => None,
    }
}

/// (year, month, day) from epoch seconds.
fn civil_of_epoch(secs: i64) -> (i64, i64, i64) {
    let days = secs.div_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    (if month <= 2 { y + 1 } else { y }, month, day)
}

fn cast(term: &Term, datatype: &str) -> Option<Term> {
    let source = match term {
        Term::Literal(l) => l.lexical.to_string(),
        Term::Iri(i) => i.to_string(),
        Term::Blank(_) => return None,
    };
    let lit = Literal::typed(source, datatype.to_string());
    // A failed cast (lexical form doesn't parse under the target type)
    // is an error unless the target is a string type.
    let target_is_stringy = datatype == xsd::STRING;
    match lit.parsed {
        TypedValue::String if !target_is_stringy => None,
        _ => Some(Term::Literal(lit)),
    }
}

/// DISTINCT dedup strategy for [`AggState`].
///
/// The term-materialized reference evaluator hashes whole [`Term`]s; the
/// id-native evaluators intern each computed aggregate input through their
/// [`TermPool`] and dedup on `u32` [`TermId`]s instead (the pool guarantees
/// two ids are equal iff the terms are equal, so the bags are identical —
/// only the hashing cost changes).
#[derive(Debug)]
enum Dedup {
    Terms(std::collections::HashSet<Term>),
    Ids(std::collections::HashSet<TermId>),
}

/// Running state for one aggregate over one group.
#[derive(Debug)]
pub struct AggState {
    op: AggOp,
    /// `Some` when DISTINCT: the set of values already counted.
    seen: Option<Dedup>,
    count: usize,
    sum: f64,
    sum_is_integral: bool,
    int_sum: i64,
    min: Option<Term>,
    max: Option<Term>,
    sample: Option<Term>,
}

impl AggState {
    /// Initialize for an aggregate op (term-hashing DISTINCT).
    pub fn new(op: AggOp, distinct: bool) -> Self {
        AggState {
            op,
            seen: distinct.then(|| Dedup::Terms(std::collections::HashSet::new())),
            count: 0,
            sum: 0.0,
            sum_is_integral: true,
            int_sum: 0,
            min: None,
            max: None,
            sample: None,
        }
    }

    /// Initialize with id-based DISTINCT: inputs are interned through the
    /// evaluator's [`TermPool`] (via [`AggState::push_pooled`]) and dedup
    /// hashes `u32` ids instead of whole terms.
    pub fn new_id_distinct(op: AggOp, distinct: bool) -> Self {
        AggState {
            seen: distinct.then(|| Dedup::Ids(std::collections::HashSet::new())),
            ..Self::new(op, false)
        }
    }

    /// Feed one value. `None` (unbound/error) contributes nothing, matching
    /// SPARQL aggregate semantics.
    pub fn push(&mut self, value: Option<Term>) {
        let Some(v) = value else { return };
        // (Not a match guard: dedup insertion needs the mutable binding.)
        #[allow(clippy::collapsible_match)]
        match &mut self.seen {
            Some(Dedup::Terms(seen)) => {
                if !seen.insert(v.clone()) {
                    return;
                }
            }
            // An id-distinct state cannot dedup without the pool; silently
            // over-counting would be a correctness bug, so fail loudly.
            Some(Dedup::Ids(_)) => {
                panic!("id-distinct AggState must be fed through push_pooled")
            }
            None => {}
        }
        self.accumulate(v);
    }

    /// Feed one value, deduplicating through `pool` when this state was
    /// built with [`AggState::new_id_distinct`] (falls back to term hashing
    /// for the [`AggState::new`] flavor, so callers need not branch).
    pub fn push_pooled(&mut self, value: Option<Term>, pool: &mut TermPool) {
        let Some(v) = value else { return };
        // (Not a match guard: dedup insertion needs the mutable binding.)
        #[allow(clippy::collapsible_match)]
        match &mut self.seen {
            Some(Dedup::Ids(seen)) => {
                let id = pool.intern(v.clone());
                if !seen.insert(id) {
                    return;
                }
            }
            Some(Dedup::Terms(seen)) => {
                if !seen.insert(v.clone()) {
                    return;
                }
            }
            None => {}
        }
        self.accumulate(v);
    }

    fn accumulate(&mut self, v: Term) {
        self.count += 1;
        if let Some(l) = v.as_literal() {
            match l.parsed {
                TypedValue::Integer(i) => {
                    self.int_sum = self.int_sum.wrapping_add(i);
                    self.sum += i as f64;
                }
                TypedValue::Double(d) => {
                    self.sum_is_integral = false;
                    self.sum += d;
                }
                _ => self.sum_is_integral = false,
            }
        } else {
            self.sum_is_integral = false;
        }
        if self
            .min
            .as_ref()
            .is_none_or(|m| v.order_cmp(m) == std::cmp::Ordering::Less)
        {
            self.min = Some(v.clone());
        }
        if self
            .max
            .as_ref()
            .is_none_or(|m| v.order_cmp(m) == std::cmp::Ordering::Greater)
        {
            self.max = Some(v.clone());
        }
        if self.sample.is_none() {
            self.sample = Some(v);
        }
    }

    /// Count a row for `COUNT(*)` (no expression).
    pub fn push_star(&mut self) {
        self.count += 1;
    }

    /// Produce the aggregate result.
    pub fn finish(self) -> Option<Term> {
        match self.op {
            AggOp::Count => Some(Term::integer(self.count as i64)),
            AggOp::Sum => {
                if self.sum_is_integral {
                    Some(Term::integer(self.int_sum))
                } else {
                    Some(Term::Literal(Literal::double(self.sum)))
                }
            }
            AggOp::Avg => {
                if self.count == 0 {
                    Some(Term::integer(0))
                } else {
                    Some(Term::Literal(Literal::double(self.sum / self.count as f64)))
                }
            }
            AggOp::Min => self.min,
            AggOp::Max => self.max,
            AggOp::Sample => self.sample,
        }
    }
}

// ---- pushed-filter support ------------------------------------------------

/// Recognize the `?v = <const>` / `?v != <const>` shape (either operand
/// order) whose constant is *not* a literal, so SPARQL `=` degenerates to
/// term identity and the comparison can run on raw interned ids. Returns
/// `(variable, constant, negated?)`. Literal constants are rejected because
/// literal equality is *value* equality (`"1"^^int = "01"^^int`), which ids
/// are too strict for.
pub fn id_equality_shape(expr: &Expr) -> Option<(&str, &Term, bool)> {
    let Expr::Cmp(op, a, b) = expr else {
        return None;
    };
    let negate = match op {
        CmpOp::Eq => false,
        CmpOp::Neq => true,
        _ => return None,
    };
    let (var, konst) = match (a.as_ref(), b.as_ref()) {
        (Expr::Var(v), Expr::Const(c)) | (Expr::Const(c), Expr::Var(v)) => (v, c),
        _ => return None,
    };
    if konst.is_literal() {
        return None;
    }
    Some((var.as_str(), konst, negate))
}

/// The single variable a filter expression references, if it references
/// exactly one (and no aggregate) — the shape eligible for pushdown into a
/// BGP. Built on the AST's own walkers ([`Expr::collect_vars`],
/// [`Expr::has_aggregate`]) so there is one traversal to maintain.
pub fn single_filter_var(expr: &Expr) -> Option<String> {
    if expr.has_aggregate() {
        return None;
    }
    let mut vars = Vec::new();
    expr.collect_vars(&mut vars);
    if vars.len() == 1 {
        vars.pop()
    } else {
        None
    }
}

/// Bindings view exposing a single variable (pushed-filter evaluation: the
/// expression references exactly one variable, so one slot suffices and no
/// row buffer is built).
#[derive(Clone, Copy)]
struct SingleVar<'a> {
    name: &'a str,
    term: &'a Term,
}

impl Bindings for SingleVar<'_> {
    fn get(&self, name: &str) -> Option<&Term> {
        (name == self.name).then_some(self.term)
    }
}

/// Evaluate a pushed single-variable filter against one candidate term.
/// Error and non-boolean results reject the candidate, exactly as a
/// `FILTER` above the BGP would drop the row.
pub fn eval_single_var_filter(
    expr: &Expr,
    var: &str,
    term: &Term,
    caches: &mut EvalCaches,
) -> bool {
    eval_expr(expr, SingleVar { name: var, term }, caches)
        .as_ref()
        .and_then(ebv)
        .unwrap_or(false)
}

/// A pushed filter precompiled for candidate testing during id-native BGP
/// extension.
///
/// The `?v = <iri>` shape compares raw global ids — no term is resolved per
/// candidate. General expressions memoize their verdict per candidate id
/// (sound: the expression is deterministic in its one variable), so a value
/// appearing in thousands of scan matches is evaluated once.
///
/// `Clone` resets nothing except sharing the memo snapshot: parallel BGP
/// extension clones the compiled filters into each row chunk, so each worker
/// memoizes independently (the memo is a cache, not state — verdicts are
/// deterministic in the candidate id).
#[derive(Clone)]
pub enum PushedEval<'e> {
    /// `?v =/!= <non-literal constant>`: raw id comparison. `id` is `None`
    /// when the constant is interned nowhere (it can equal nothing).
    IdCmp {
        /// Global id of the constant, if interned anywhere.
        id: Option<TermId>,
        /// `!=` instead of `=`.
        negate: bool,
    },
    /// General single-variable expression, memoized per candidate id.
    General {
        /// The predicate expression.
        expr: &'e Expr,
        /// The one variable it references.
        var: &'e str,
        /// Candidate id → verdict memo.
        memo: HashMap<TermId, bool>,
    },
}

impl<'e> PushedEval<'e> {
    /// Compile a pushed filter for id-native testing.
    pub fn compile(var: &'e str, expr: &'e Expr, pool: &TermPool) -> Self {
        if let Some((v, konst, negate)) = id_equality_shape(expr) {
            debug_assert_eq!(v, var, "pushed filter var mismatch");
            return PushedEval::IdCmp {
                id: pool.lookup(konst),
                negate,
            };
        }
        PushedEval::General {
            expr,
            var,
            memo: HashMap::new(),
        }
    }

    /// Does the candidate with this (always bound) id survive the filter?
    #[inline]
    pub fn test(&mut self, id: TermId, pool: &TermPool, caches: &mut EvalCaches) -> bool {
        match self {
            PushedEval::IdCmp {
                id: Some(c),
                negate,
            } => (id == *c) != *negate,
            PushedEval::IdCmp { id: None, negate } => *negate,
            PushedEval::General { expr, var, memo } => *memo
                .entry(id)
                .or_insert_with(|| eval_single_var_filter(expr, var, pool.resolve(id), caches)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of<'a>(vars: &'a [String], row: &'a [Option<Term>]) -> RowCtx<'a> {
        RowCtx { vars, row }
    }

    fn vars(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn var_lookup_and_bound() {
        let vs = vars(&["x", "y"]);
        let row = vec![Some(Term::integer(5)), None];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        assert_eq!(
            eval_expr(&Expr::Var("x".into()), ctx, &mut caches),
            Some(Term::integer(5))
        );
        assert_eq!(eval_expr(&Expr::Var("y".into()), ctx, &mut caches), None);
        let bound_y = Expr::Call(Func::Bound, vec![Expr::Var("y".into())]);
        assert_eq!(
            eval_expr(&bound_y, ctx, &mut caches),
            Some(Term::Literal(Literal::boolean(false)))
        );
    }

    #[test]
    fn comparison_and_arith() {
        let vs = vars(&["n"]);
        let row = vec![Some(Term::integer(10))];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        let ge = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Var("n".into())),
            Box::new(Expr::Const(Term::integer(10))),
        );
        assert_eq!(
            eval_expr(&ge, ctx, &mut caches).as_ref().and_then(ebv),
            Some(true)
        );
        let plus = Expr::Arith(
            ArithOp::Add,
            Box::new(Expr::Var("n".into())),
            Box::new(Expr::Const(Term::integer(5))),
        );
        assert_eq!(eval_expr(&plus, ctx, &mut caches), Some(Term::integer(15)));
        let div = Expr::Arith(
            ArithOp::Div,
            Box::new(Expr::Var("n".into())),
            Box::new(Expr::Const(Term::integer(0))),
        );
        assert_eq!(eval_expr(&div, ctx, &mut caches), None);
    }

    #[test]
    fn and_or_three_valued() {
        let vs = vars(&["u"]);
        let row = vec![None];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        let err = Expr::Var("u".into()); // unbound → error
        let f = Expr::Const(Term::Literal(Literal::boolean(false)));
        let t = Expr::Const(Term::Literal(Literal::boolean(true)));
        // false && error = false
        let e = Expr::And(Box::new(f.clone()), Box::new(err.clone()));
        assert_eq!(
            eval_expr(&e, ctx, &mut caches).as_ref().and_then(ebv),
            Some(false)
        );
        // true || error = true
        let e = Expr::Or(Box::new(t.clone()), Box::new(err.clone()));
        assert_eq!(
            eval_expr(&e, ctx, &mut caches).as_ref().and_then(ebv),
            Some(true)
        );
        // true && error = error
        let e = Expr::And(Box::new(t), Box::new(err));
        assert_eq!(eval_expr(&e, ctx, &mut caches), None);
    }

    #[test]
    fn regex_call() {
        let vs = vars(&["c"]);
        let row = vec![Some(Term::iri("http://dbpedia.org/resource/USA"))];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        let e = Expr::Call(
            Func::Regex,
            vec![
                Expr::Call(Func::Str, vec![Expr::Var("c".into())]),
                Expr::Const(Term::string("USA")),
            ],
        );
        assert_eq!(
            eval_expr(&e, ctx, &mut caches).as_ref().and_then(ebv),
            Some(true)
        );
    }

    #[test]
    fn year_of_datetime_cast() {
        let vs = vars(&["d"]);
        let row = vec![Some(Term::string("2012-07-01"))];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        // year(xsd:dateTime(?d))
        let e = Expr::Call(
            Func::Year,
            vec![Expr::Call(
                Func::Cast(xsd::DATE_TIME.to_string()),
                vec![Expr::Var("d".into())],
            )],
        );
        assert_eq!(eval_expr(&e, ctx, &mut caches), Some(Term::integer(2012)));
    }

    #[test]
    fn in_list() {
        let vs = vars(&["c"]);
        let row = vec![Some(Term::iri("http://conf/vldb"))];
        let ctx = ctx_of(&vs, &row);
        let mut caches = EvalCaches::new();
        let e = Expr::In {
            expr: Box::new(Expr::Var("c".into())),
            list: vec![
                Expr::Const(Term::iri("http://conf/vldb")),
                Expr::Const(Term::iri("http://conf/sigmod")),
            ],
            negated: false,
        };
        assert_eq!(
            eval_expr(&e, ctx, &mut caches).as_ref().and_then(ebv),
            Some(true)
        );
        let e = Expr::In {
            expr: Box::new(Expr::Var("c".into())),
            list: vec![Expr::Const(Term::iri("http://conf/icde"))],
            negated: true,
        };
        assert_eq!(
            eval_expr(&e, ctx, &mut caches).as_ref().and_then(ebv),
            Some(true)
        );
    }

    #[test]
    fn aggregates() {
        let mut c = AggState::new(AggOp::Count, true);
        c.push(Some(Term::integer(1)));
        c.push(Some(Term::integer(1)));
        c.push(Some(Term::integer(2)));
        c.push(None);
        assert_eq!(c.finish(), Some(Term::integer(2)));

        let mut s = AggState::new(AggOp::Sum, false);
        s.push(Some(Term::integer(3)));
        s.push(Some(Term::integer(4)));
        assert_eq!(s.finish(), Some(Term::integer(7)));

        let mut a = AggState::new(AggOp::Avg, false);
        a.push(Some(Term::integer(3)));
        a.push(Some(Term::integer(5)));
        assert_eq!(a.finish(), Some(Term::Literal(Literal::double(4.0))));

        let mut m = AggState::new(AggOp::Min, false);
        m.push(Some(Term::integer(5)));
        m.push(Some(Term::integer(2)));
        assert_eq!(m.finish(), Some(Term::integer(2)));

        let mut mx = AggState::new(AggOp::Max, false);
        mx.push(Some(Term::string("a")));
        mx.push(Some(Term::string("z")));
        assert_eq!(mx.finish(), Some(Term::string("z")));
    }

    #[test]
    fn ebv_rules() {
        assert_eq!(ebv(&Term::integer(0)), Some(false));
        assert_eq!(ebv(&Term::integer(3)), Some(true));
        assert_eq!(ebv(&Term::string("")), Some(false));
        assert_eq!(ebv(&Term::string("x")), Some(true));
        assert_eq!(ebv(&Term::iri("http://x")), None);
    }
}
