//! Columnar (vectorized) id-native plan evaluation — the default engine.
//!
//! Implements the SPARQL multiset semantics of the paper's Section 5.2 over
//! the struct-of-arrays [`IdTable`]: one dense `Vec<TermId>` per variable
//! column plus a presence bitmap, instead of a `Vec<Option<TermId>>` per
//! row. The operators are batch-oriented:
//!
//! - **BGP extension** walks the store's sorted-slab access paths
//!   ([`rdf_model::Graph`]) and appends match results into *column buffers*
//!   (a gather-index vector plus one value vector per newly-bound
//!   variable). No per-row `Vec` is ever allocated; previously-bound
//!   columns are carried forward with a single contiguous gather.
//! - **Hash joins** pick their key columns with a bitmap popcount
//!   ([`Column::all_present`]), build on raw `&[TermId]` column slices,
//!   and emit output columns by gathering over the matched pair list.
//! - **DISTINCT** and **GROUP BY** key directly off column slices,
//!   hashing `u64`-encoded cells (id + presence), never terms.
//! - **Aggregates** run id-native where the shape allows: `COUNT[DISTINCT]`
//!   over a column counts ids; `MIN`/`MAX`/`SUM`/`AVG` over a
//!   numeric-literal column accumulate parsed `i64`/`f64` values without
//!   materializing a single [`Term`] per row (mixed-type columns fall back
//!   to term-based [`AggState`]); DISTINCT inputs of general expressions
//!   intern through the [`TermPool`] and dedup on ids.
//!
//! Terms are materialized only at expression/sort boundaries (through a
//! reused scratch row) and at the final projection. The two earlier
//! evaluators — PR 1's row-at-a-time id-native pipeline
//! ([`crate::eval_rows`]) and the seed term-materialized one
//! ([`crate::eval_reference`]) — are kept as differential-testing oracles:
//! all three produce identical bags and identical `rows_scanned` counts.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use rdf_model::term::{Literal, TypedValue};
use rdf_model::{Dataset, Graph, GraphIdMap, Term, TermId};

use crate::algebra::{AggSpec, GraphRef, Plan, PushedFilter};
use crate::ast::{AggOp, Expr, OrderKey, PatternTerm, TriplePattern};
use crate::budget::{BudgetMeter, OpMeter, QueryBudget, SharedMeter};
use crate::error::{EngineError, Result};
use crate::expr::{ebv, eval_expr, id_equality_shape, AggState, EvalCaches, IdRowCtx, PushedEval};
use crate::pool::TermPool;
use crate::results::{Column, IdTable, SolutionTable};

pub(crate) mod pipeline;

/// Inputs below this row count run sequentially even with parallelism on:
/// the fan-out overhead (task queueing, per-chunk state) dwarfs the work.
const PAR_MIN_ROWS: usize = 256;

/// Chunk size for a parallel operator: aim for ~4 chunks per worker (so
/// work stealing can rebalance skew) but never chunks so small the
/// per-chunk setup dominates.
fn par_chunk_size(len: usize, threads: usize) -> usize {
    len.div_ceil(threads.max(1) * 4).max(128)
}

/// Parallel execution context: a shared work-stealing pool plus the
/// configured degree. Cloning shares the pool.
#[derive(Clone)]
struct ParCtx {
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
}

/// Observability counters for parallel operator runs (exposed through
/// [`crate::engine::ExecStats`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct ParStats {
    /// Chunks executed across all parallel operator runs.
    pub chunks: u64,
    /// Chunk tasks a worker stole from another worker's queue.
    pub steals: u64,
    /// Nanoseconds spent in the single-threaded merge phases that fold
    /// chunk results back together in chunk order.
    pub merge_nanos: u64,
}

/// Columnar id-native plan evaluator bound to a dataset.
pub struct Evaluator<'a> {
    dataset: &'a Dataset,
    default_graphs: Vec<String>,
    caches: EvalCaches,
    pool: TermPool<'a>,
    rows_scanned: u64,
    /// Budget enforcement state ([`crate::budget`]); inactive by default.
    meter: BudgetMeter,
    merge_joins: u64,
    merge_left_joins: u64,
    sorted_distincts: u64,
    sorted_groups: u64,
    /// `ORDER BY ?var` via the dataset's cached term-rank permutation
    /// (disable to measure the term-materializing sort it replaces).
    rank_sort: bool,
    /// Reused row buffer for expression contexts (the only place the
    /// columnar layout is transposed back to a row).
    scratch: Vec<Option<TermId>>,
    /// Parallel execution context (`None` = sequential, the default).
    par: Option<ParCtx>,
    /// Counters from parallel operator runs.
    par_stats: ParStats,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator. `default_graphs` resolves [`GraphRef::Default`].
    pub fn new(dataset: &'a Dataset, default_graphs: Vec<String>) -> Self {
        Evaluator {
            dataset,
            default_graphs,
            caches: EvalCaches::new(),
            pool: TermPool::new(dataset.interner()),
            rows_scanned: 0,
            meter: BudgetMeter::unlimited(),
            merge_joins: 0,
            merge_left_joins: 0,
            sorted_distincts: 0,
            sorted_groups: 0,
            rank_sort: true,
            scratch: Vec::new(),
            par: None,
            par_stats: ParStats::default(),
        }
    }

    /// Enable `n`-way parallel execution of the hot operators (BGP
    /// extension, single-key hash join, mergeable GROUP BY). `n <= 1`
    /// disables it. Output is byte-identical to sequential execution —
    /// chunk results are folded back in chunk order, which reproduces row
    /// order exactly — and `rows_scanned` parity is exact.
    pub fn set_threads(&mut self, n: usize) {
        self.par = (n > 1).then(|| ParCtx {
            pool: rayon::ThreadPool::global(n),
            threads: n,
        });
    }

    /// Configured parallelism degree (1 = sequential).
    pub fn threads(&self) -> usize {
        self.par.as_ref().map_or(1, |p| p.threads)
    }

    /// Counters from parallel operator runs so far.
    pub fn par_stats(&self) -> ParStats {
        self.par_stats
    }

    /// Total index entries scanned so far (a deterministic work metric used
    /// by benchmarks alongside wall-clock time).
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Number of [`Plan::MergeJoin`] nodes that actually ran as merge joins
    /// (the run-time sortedness check passed; 0 means every join hashed).
    pub fn merge_joins(&self) -> u64 {
        self.merge_joins
    }

    /// Number of [`Plan::MergeLeftJoin`] nodes that actually ran as merge
    /// left joins (run-time sortedness check passed).
    pub fn merge_left_joins(&self) -> u64 {
        self.merge_left_joins
    }

    /// Number of [`Plan::SortedDistinct`] nodes that deduplicated by run
    /// detection instead of hashing.
    pub fn sorted_distincts(&self) -> u64 {
        self.sorted_distincts
    }

    /// Number of [`Plan::Group`] nodes that grouped by run detection
    /// instead of hashing.
    pub fn sorted_groups(&self) -> u64 {
        self.sorted_groups
    }

    /// Toggle the term-rank `ORDER BY` fast path (on by default; the bench
    /// turns it off to measure the PR 4 baseline behavior).
    pub fn set_rank_sort(&mut self, on: bool) {
        self.rank_sort = on;
    }

    /// Install a resource budget. The meter (and its deadline clock) is
    /// created here, so call this right before evaluation starts.
    pub fn set_budget(&mut self, budget: &QueryBudget) {
        self.meter = BudgetMeter::new(budget);
    }

    /// Evaluate a plan to a materialized solution table.
    pub fn eval(&mut self, plan: &Plan) -> Result<SolutionTable> {
        let table = self.eval_ids(plan)?;
        Ok(self.materialize(table))
    }

    /// Evaluate a plan and materialize only rows `[offset, offset+limit)`.
    ///
    /// Pagination endpoints re-execute per chunk; slicing *before* term
    /// materialization means only the shipped page allocates terms.
    pub fn eval_page(&mut self, plan: &Plan, offset: usize, limit: usize) -> Result<SolutionTable> {
        let mut table = self.eval_ids(plan)?;
        table.slice(offset, Some(limit));
        Ok(self.materialize(table))
    }

    /// Evaluate a plan to the raw columnar id table *without* materializing
    /// terms — the embedded execution path ([`crate::engine::QueryCursor`])
    /// hands these columns straight to the client together with the pool.
    pub fn eval_to_ids(&mut self, plan: &Plan) -> Result<IdTable> {
        self.eval_ids(plan)
    }

    /// Consume the evaluator, keeping its term pool alive so ids from an
    /// [`Evaluator::eval_to_ids`] table (including computed overflow terms)
    /// stay resolvable after evaluation ends.
    pub fn into_pool(self) -> TermPool<'a> {
        self.pool
    }

    /// Resolve ids to owned terms (the single materialization point).
    fn materialize(&self, table: IdTable) -> SolutionTable {
        let width = table.vars.len();
        let mut rows = Vec::with_capacity(table.len());
        for i in 0..table.len() {
            rows.push(
                (0..width)
                    .map(|c| table.get(i, c).map(|id| self.pool.resolve(id).clone()))
                    .collect(),
            );
        }
        SolutionTable {
            vars: table.vars,
            rows,
        }
    }

    /// Evaluate a plan to a columnar id table (the internal hot path).
    ///
    /// Every operator's output passes through this chokepoint, where its
    /// row count and estimated footprint are checked against the budget —
    /// operators whose hot loops can balloon *before* producing output
    /// (BGP extension, join pair emission, group accumulation) carry
    /// additional in-loop checks of their own.
    fn eval_ids(&mut self, plan: &Plan) -> Result<IdTable> {
        let t = self.eval_ids_node(plan)?;
        self.meter
            .charge_intermediate(t.len() as u64, t.estimated_bytes())?;
        Ok(t)
    }

    fn eval_ids_node(&mut self, plan: &Plan) -> Result<IdTable> {
        match plan {
            Plan::Unit => Ok(IdTable::unit()),
            Plan::Bgp {
                patterns,
                graph,
                filters,
            } => self.eval_bgp(patterns, graph, filters),
            Plan::Join(a, b) => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                join(
                    left,
                    right,
                    JoinKind::Inner,
                    &mut self.meter,
                    self.par.as_ref(),
                    &mut self.par_stats,
                )
            }
            Plan::MergeJoin { left, right, key } => {
                let left = self.eval_ids(left)?;
                let right = self.eval_ids(right)?;
                self.join_sorted(left, right, key, JoinKind::Inner)
            }
            Plan::MergeLeftJoin { left, right, key } => {
                let left = self.eval_ids(left)?;
                let right = self.eval_ids(right)?;
                self.join_sorted(left, right, key, JoinKind::Left)
            }
            Plan::LeftJoin(a, b) => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                join(
                    left,
                    right,
                    JoinKind::Left,
                    &mut self.meter,
                    self.par.as_ref(),
                    &mut self.par_stats,
                )
            }
            Plan::Union(a, b) => {
                let left = self.eval_ids(a)?;
                let right = self.eval_ids(b)?;
                Ok(union(left, right))
            }
            Plan::Filter(expr, p) => {
                let t = self.eval_ids(p)?;
                Ok(self.filter_table(expr, t))
            }
            Plan::Extend(var, expr, p) => {
                let t = self.eval_ids(p)?;
                Ok(self.extend_table(var, expr, t))
            }
            Plan::Group {
                keys,
                aggs,
                input,
                sorted_on,
            } => {
                let t = self.eval_ids(input)?;
                self.eval_group(keys, aggs, sorted_on, t)
            }
            Plan::Project(vars, p) => {
                let t = self.eval_ids(p)?;
                Ok(project_table(vars, t))
            }
            Plan::Distinct(p) => {
                let t = self.eval_ids(p)?;
                Ok(hash_distinct(t))
            }
            Plan::SortedDistinct { order, input } => {
                let mut t = self.eval_ids(input)?;
                match sorted_distinct_mask(&t, order) {
                    Some(keep) => {
                        self.sorted_distincts += 1;
                        t.filter_mask(&keep);
                        Ok(t)
                    }
                    // Coverage or sortedness claim failed at run time: the
                    // hash path produces the identical keep-first bag.
                    None => Ok(hash_distinct(t)),
                }
            }
            Plan::OrderBy(keys, p) => {
                let mut t = self.eval_ids(p)?;
                self.sort_rows(&mut t, keys);
                Ok(t)
            }
            Plan::TopK { keys, k, input } => {
                let mut t = self.eval_ids(input)?;
                self.top_k(&mut t, keys, *k);
                Ok(t)
            }
            Plan::Slice {
                limit,
                offset,
                input,
            } => {
                let mut t = self.eval_ids(input)?;
                t.slice(*offset, *limit);
                Ok(t)
            }
        }
    }

    fn resolve_graphs(&self, graph: &GraphRef) -> Result<Vec<(Arc<Graph>, Arc<GraphIdMap>)>> {
        let uris: Vec<&str> = match graph {
            GraphRef::Default => {
                if self.default_graphs.is_empty() {
                    // No FROM clause: the default graph is the union of all
                    // graphs in the dataset.
                    self.dataset.graph_uris().collect()
                } else {
                    self.default_graphs.iter().map(String::as_str).collect()
                }
            }
            GraphRef::Named(uri) => vec![uri.as_str()],
        };
        let mut graphs = Vec::with_capacity(uris.len());
        for uri in uris {
            let g = self
                .dataset
                .graph(uri)
                .ok_or_else(|| EngineError::UnknownGraph(uri.to_string()))?;
            let map = self
                .dataset
                .id_map(uri)
                .ok_or_else(|| EngineError::UnknownGraph(uri.to_string()))?;
            graphs.push((Arc::clone(g), Arc::clone(map)));
        }
        Ok(graphs)
    }

    /// Vectorized index-nested-loop evaluation of a BGP in pattern order.
    ///
    /// Per pattern, matches are recorded as a gather-index vector (`src`,
    /// which input row produced the match) plus one dense value vector per
    /// variable the pattern newly binds. The next table is then assembled
    /// column-at-a-time: carried columns gather contiguously, new columns
    /// take the value vectors verbatim. Scan results stream straight into
    /// these buffers — no row objects exist at any point.
    ///
    /// Pushed filters ([`PushedFilter`]) are tested inside the match
    /// callback of the pattern that binds their variable: a failing
    /// candidate returns before anything is appended, so it neither
    /// occupies the gather/value buffers nor feeds later patterns' scans.
    fn eval_bgp(
        &mut self,
        patterns: &[TriplePattern],
        graph: &GraphRef,
        filters: &[PushedFilter],
    ) -> Result<IdTable> {
        let graphs = self.resolve_graphs(graph)?;

        // Variable schema in first-mention order.
        let mut vars: Vec<String> = Vec::new();
        for p in patterns {
            for v in p.variables() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        }
        let width = vars.len();
        let var_idx: HashMap<&str, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i))
            .collect();

        // Borrow the fields the scan callback needs up front so it never
        // re-borrows `self` (the work counter accumulates locally).
        let dataset = self.dataset;
        let pool = &self.pool;
        let mut scanned = 0u64;

        // Compile each pushed filter at its shared attachment pattern
        // ([`crate::algebra::attach_filters`]).
        let mut pattern_filters: Vec<Vec<(usize, PushedEval)>> =
            crate::algebra::attach_filters(patterns, filters, |v| var_idx[v])
                .into_iter()
                .map(|routed| {
                    routed
                        .into_iter()
                        .map(|(col, f)| (col, PushedEval::compile(&f.var, &f.expr, pool)))
                        .collect()
                })
                .collect();

        // One all-absent row: the BGP extension identity.
        let mut cur: Vec<Column> = (0..width).map(|_| Column::absent(1)).collect();
        let mut cur_len = 1usize;
        // A variable is bound in *all* rows once any earlier pattern
        // mentioned it (every surviving row passed through that pattern).
        let mut bound = vec![false; width];

        for (pi, pattern) in patterns.iter().enumerate() {
            if cur_len == 0 {
                break;
            }
            // Resolve constants once per (pattern, graph) — local ids via
            // the dataset-wide interner, no per-row string hashing. A graph
            // where some constant does not occur contributes no matches.
            let pats: Vec<(&Graph, &GraphIdMap, [Slot; 3])> = graphs
                .iter()
                .filter_map(|(g, map)| {
                    let s = Self::pattern_slot(dataset, &pattern.subject, map, &var_idx)?;
                    let p = Self::pattern_slot(dataset, &pattern.predicate, map, &var_idx)?;
                    let o = Self::pattern_slot(dataset, &pattern.object, map, &var_idx)?;
                    Some((g.as_ref(), map.as_ref(), [s, p, o]))
                })
                .collect();

            // Classify the pattern's positions (graph-independent): which
            // columns the pattern newly binds (one value vector each), and
            // which positions repeat a newly-bound variable (`?x ?p ?x`)
            // and therefore need an equality check per match.
            let terms = [&pattern.subject, &pattern.predicate, &pattern.object];
            let mut free_cols: Vec<usize> = Vec::new(); // col per value slot
            let mut primaries: Vec<(usize, usize)> = Vec::new(); // (slot, position)
            let mut dup_checks: Vec<(usize, usize)> = Vec::new(); // (position, position)
            for (pos, term) in terms.iter().enumerate() {
                if let PatternTerm::Var(v) = term {
                    let col = var_idx[v.as_str()];
                    if bound[col] {
                        continue;
                    }
                    match free_cols.iter().position(|&c| c == col) {
                        Some(slot) => dup_checks.push((primaries[slot].1, pos)),
                        None => {
                            let slot = free_cols.len();
                            free_cols.push(col);
                            primaries.push((slot, pos));
                        }
                    }
                }
            }

            // Filters firing at this pattern, routed to the value slot
            // their variable binds into. Owned (not borrowed from
            // `pattern_filters`): the parallel path clones them per chunk,
            // and each compiled filter serves exactly this one pattern, so
            // its memo's lifetime is unchanged.
            let mut checks: Vec<(usize, PushedEval)> = std::mem::take(&mut pattern_filters[pi])
                .into_iter()
                .map(|(col, pe)| {
                    let slot = free_cols
                        .iter()
                        .position(|c| *c == col)
                        .expect("filter var is newly bound at its attachment pattern");
                    (slot, pe)
                })
                .collect();

            let n_slots = free_cols.len();
            let (pat_src, mut pat_vals, pat_scanned) = self.extend_rows(
                0..cur_len,
                &pats,
                &cur,
                &bound,
                &primaries,
                &dup_checks,
                &mut checks,
                n_slots,
            )?;
            scanned += pat_scanned;

            // Assemble the next table column-at-a-time.
            let total = pat_src.len();
            let mut next: Vec<Column> = Vec::with_capacity(width);
            for (col, cur_col) in cur.iter().enumerate() {
                if bound[col] {
                    let mut out = Column::with_capacity(total);
                    out.gather_from(cur_col, &pat_src);
                    next.push(out);
                } else if let Some(slot) = free_cols.iter().position(|&c| c == col) {
                    next.push(Column::from_ids(std::mem::take(&mut pat_vals[slot])));
                } else {
                    next.push(Column::absent(total));
                }
            }
            cur = next;
            cur_len = total;
            // Per-pattern intermediates never reach the operator-output
            // chokepoint, so check each assembled table here.
            if self.meter.is_active() {
                let bytes = cur
                    .iter()
                    .fold(0u64, |a, c| a.saturating_add(c.estimated_bytes()));
                self.meter.charge_intermediate(cur_len as u64, bytes)?;
            }
            for &col in &free_cols {
                bound[col] = true;
            }
        }
        self.rows_scanned += scanned;
        drop(var_idx);
        Ok(IdTable::from_columns(vars, cur, cur_len))
    }

    /// Extend the input rows `rows` (drawn from `cur`/`bound`) through one
    /// pattern's resolved graph scans, choosing between the sequential loop
    /// and the chunked parallel fan-out. Factored out of [`Self::eval_bgp`]
    /// so the streaming pipeline's BGP operator reuses the identical
    /// decision and loop bodies — result, `rows_scanned`, and parallel
    /// chunk-accounting parity is inherited rather than re-implemented.
    ///
    /// Parallel path: the rows fan out over chunks; each chunk runs the
    /// identical loop body with its own buffers, filter clones, caches, and
    /// a worker handle on the shared budget. Concatenating results in chunk
    /// order reproduces the sequential output byte for byte.
    #[allow(clippy::too_many_arguments)]
    fn extend_rows(
        &mut self,
        rows: Range<usize>,
        pats: &[(&Graph, &GraphIdMap, [Slot; 3])],
        cur: &[Column],
        bound: &[bool],
        primaries: &[(usize, usize)],
        dup_checks: &[(usize, usize)],
        checks: &mut Vec<(usize, PushedEval)>,
        n_slots: usize,
    ) -> Result<(Vec<u32>, Vec<Vec<TermId>>, u64)> {
        let len = rows.len();
        let pool = &self.pool;
        match &self.par {
            Some(p) if len >= PAR_MIN_ROWS => {
                let chunk = par_chunk_size(len, p.threads);
                let n_chunks = len.div_ceil(chunk);
                let shared = SharedMeter::new(&self.meter, n_chunks);
                let start = rows.start;
                let checks_ref = &*checks;
                let run = p.pool.run_chunks(len, chunk, |ci, range| {
                    let range = range.start + start..range.end + start;
                    let mut chunk_checks = checks_ref.clone();
                    let mut chunk_caches = EvalCaches::new();
                    let mut wm = shared.worker(ci);
                    bgp_scan_rows(
                        range,
                        pats,
                        cur,
                        bound,
                        primaries,
                        dup_checks,
                        &mut chunk_checks,
                        n_slots,
                        pool,
                        &mut chunk_caches,
                        &mut wm,
                    )
                });
                self.par_stats.chunks += run.chunks;
                self.par_stats.steals += run.steals;
                let merge_start = Instant::now();
                let mut src: Vec<u32> = Vec::new();
                let mut vals: Vec<Vec<TermId>> = (0..n_slots).map(|_| Vec::new()).collect();
                let mut pat_scanned = 0u64;
                let mut chunk_err: Option<EngineError> = None;
                for r in run.results {
                    match r {
                        Ok((s, v, n)) => {
                            pat_scanned += n;
                            src.extend_from_slice(&s);
                            for (dst, sv) in vals.iter_mut().zip(v) {
                                dst.extend(sv);
                            }
                        }
                        Err(e) => {
                            chunk_err.get_or_insert(e);
                        }
                    }
                }
                self.par_stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
                // Fold worker scan charges back and surface the first
                // recorded trip (sequential behavior: a tripped pattern
                // does not update `rows_scanned`).
                shared.finish(&mut self.meter)?;
                if let Some(e) = chunk_err {
                    return Err(e);
                }
                Ok((src, vals, pat_scanned))
            }
            _ => bgp_scan_rows(
                rows,
                pats,
                cur,
                bound,
                primaries,
                dup_checks,
                checks,
                n_slots,
                pool,
                &mut self.caches,
                &mut self.meter,
            ),
        }
    }

    /// Borrow the evaluator's term pool (the embedded cursor resolves
    /// result ids through it while streaming batches out).
    pub(crate) fn pool(&self) -> &TermPool<'a> {
        &self.pool
    }

    /// Body of [`Plan::Filter`] over an owned table. Row-independent, so
    /// the streaming pipeline applies it batch-at-a-time with identical
    /// results.
    fn filter_table(&mut self, expr: &Expr, mut t: IdTable) -> IdTable {
        let mut keep = Vec::with_capacity(t.len());
        if let Some((col, const_id, negate)) = self.id_equality_filter(expr, &t) {
            // Vectorized id comparison: `?v = <iri>` over a column
            // is a single scan of raw ids — no term is resolved,
            // cloned, or compared per row. (Sound only for
            // non-literal constants, where SPARQL `=` is identity;
            // the shared interner makes id equality coincide with
            // term equality.)
            let column = t.col(col);
            for i in 0..t.len() {
                keep.push(match (column.get(i), const_id) {
                    (Some(id), Some(c)) => (id == c) != negate,
                    // Constant interned nowhere: can equal nothing.
                    (Some(_), None) => negate,
                    // Unbound input: error → filtered out.
                    (None, _) => false,
                });
            }
        } else {
            let pool = &self.pool;
            let caches = &mut self.caches;
            let buf = &mut self.scratch;
            for i in 0..t.len() {
                t.read_row(i, buf);
                let ctx = IdRowCtx {
                    vars: &t.vars,
                    row: buf,
                    pool,
                };
                keep.push(
                    eval_expr(expr, ctx, caches)
                        .as_ref()
                        .and_then(ebv)
                        .unwrap_or(false),
                );
            }
        }
        t.filter_mask(&keep);
        t
    }

    /// Body of [`Plan::Extend`] over an owned table. Rows are evaluated in
    /// input order (intern order is row order), so batch-at-a-time
    /// application produces the identical column.
    fn extend_table(&mut self, var: &str, expr: &Expr, mut t: IdTable) -> IdTable {
        let existing = t.column_index(var);
        // `BIND(?x AS ?y)` is a column copy — no resolve/intern
        // cycle, no per-row work at all.
        let new_col: Column = if let Expr::Var(src) = expr {
            match t.column_index(src) {
                Some(idx) => t.col(idx).clone(),
                None => Column::absent(t.len()),
            }
        } else {
            let mut col = Column::with_capacity(t.len());
            for i in 0..t.len() {
                let value = {
                    let buf = &mut self.scratch;
                    t.read_row(i, buf);
                    let ctx = IdRowCtx {
                        vars: &t.vars,
                        row: buf,
                        pool: &self.pool,
                    };
                    eval_expr(expr, ctx, &mut self.caches)
                };
                col.push(value.map(|term| self.pool.intern(term)));
            }
            col
        };
        match existing {
            Some(idx) => t.replace_column(idx, new_col),
            None => t.add_column(var.to_string(), new_col),
        }
        t
    }

    /// Recognize `FILTER ( ?v = <iri> )` / `FILTER ( ?v != <iri> )` shapes
    /// ([`id_equality_shape`]) over a column of the table, so the filter
    /// can compare raw ids. Returns `(column, constant id if interned
    /// anywhere, negated?)`.
    fn id_equality_filter(
        &self,
        expr: &Expr,
        t: &IdTable,
    ) -> Option<(usize, Option<TermId>, bool)> {
        let (var, konst, negate) = id_equality_shape(expr)?;
        let col = t.column_index(var)?;
        Some((col, self.pool.lookup(konst), negate))
    }

    /// Join (inner or left) of two inputs the optimizer proved sorted on
    /// `key`. Verifies the claim at run time (both key columns fully bound
    /// and non-decreasing — one linear pass, far cheaper than a hash build)
    /// and falls back to the hash join if storage reality disagrees with
    /// the static analysis.
    fn join_sorted(
        &mut self,
        left: IdTable,
        right: IdTable,
        key: &str,
        kind: JoinKind,
    ) -> Result<IdTable> {
        if let (Some(lc), Some(rc)) = (left.column_index(key), right.column_index(key)) {
            let sorted = |t: &IdTable, c: usize| {
                t.col(c).all_present() && t.col(c).ids().windows(2).all(|w| w[0] <= w[1])
            };
            if sorted(&left, lc) && sorted(&right, rc) {
                match kind {
                    JoinKind::Inner => self.merge_joins += 1,
                    JoinKind::Left => self.merge_left_joins += 1,
                }
                return merge_join(left, right, lc, rc, kind, &mut self.meter);
            }
        }
        join(
            left,
            right,
            kind,
            &mut self.meter,
            self.par.as_ref(),
            &mut self.par_stats,
        )
    }

    /// Pattern-level slot for one position: a constant bound to its local id
    /// (`None` when the constant is absent from the graph) or a variable's
    /// column index.
    fn pattern_slot(
        dataset: &Dataset,
        term: &PatternTerm,
        map: &GraphIdMap,
        var_idx: &HashMap<&str, usize>,
    ) -> Option<Slot> {
        match term {
            PatternTerm::Var(v) => Some(Slot::Var(var_idx[v.as_str()])),
            PatternTerm::Const(term) => {
                let global = dataset.lookup(term)?;
                let local = map.to_local(global)?;
                Some(Slot::Bound(local))
            }
        }
    }

    fn eval_group(
        &mut self,
        keys: &[String],
        aggs: &[AggSpec],
        sorted_on: &[String],
        input: IdTable,
    ) -> Result<IdTable> {
        let key_indices: Vec<Option<usize>> = keys.iter().map(|k| input.column_index(k)).collect();

        // Per-aggregate execution plan, id-native where the shape allows:
        //
        // - `COUNT[ DISTINCT](?v)` counts ids straight off the column.
        // - `SUM/AVG/MIN/MAX(?v)` over a column whose bound values are all
        //   numeric literals (no NaN) accumulates parsed `i64`/`f64`
        //   without materializing a term per row; mixed-type columns fall
        //   back to the general term path.
        // - `SAMPLE(?v)` takes the first bound id.
        // - Everything else evaluates the expression per row (the
        //   materialization boundary for aggregates).
        enum AggPlan<'e> {
            Star,
            CountCol { idx: usize, distinct: bool },
            NumericCol { idx: usize, distinct: bool },
            SampleCol { idx: usize },
            General(&'e Expr),
        }
        // The numeric precheck is O(rows); memoize per column so repeated
        // aggregates over one column (MIN+MAX+SUM+AVG of ?v) scan it once.
        let mut numeric_memo: HashMap<usize, bool> = HashMap::new();
        let plans: Vec<AggPlan> = aggs
            .iter()
            .map(|spec| match &spec.expr {
                None => AggPlan::Star,
                Some(Expr::Var(v)) => match input.column_index(v) {
                    Some(idx) => match spec.op {
                        AggOp::Count => AggPlan::CountCol {
                            idx,
                            distinct: spec.distinct,
                        },
                        AggOp::Sample => AggPlan::SampleCol { idx },
                        AggOp::Sum | AggOp::Avg | AggOp::Min | AggOp::Max => {
                            let numeric = *numeric_memo
                                .entry(idx)
                                .or_insert_with(|| self.numeric_column(input.col(idx)));
                            if numeric {
                                AggPlan::NumericCol {
                                    idx,
                                    distinct: spec.distinct,
                                }
                            } else {
                                AggPlan::General(spec.expr.as_ref().unwrap())
                            }
                        }
                    },
                    // Variable absent from the input: the general path
                    // produces the op's empty/unbound result.
                    None => AggPlan::General(spec.expr.as_ref().unwrap()),
                },
                Some(e) => AggPlan::General(e),
            })
            .collect();

        enum AggAccum {
            Terms(AggState),
            CountIds {
                seen: Option<HashSet<TermId>>,
                count: usize,
            },
            Numeric(NumericAccum),
            First(Option<TermId>),
        }
        let fresh_accums = |aggs: &[AggSpec], plans: &[AggPlan]| -> Vec<AggAccum> {
            aggs.iter()
                .zip(plans)
                .map(|(a, plan)| match plan {
                    AggPlan::CountCol { distinct, .. } => AggAccum::CountIds {
                        seen: distinct.then(HashSet::new),
                        count: 0,
                    },
                    AggPlan::NumericCol { distinct, .. } => {
                        AggAccum::Numeric(NumericAccum::new(*distinct))
                    }
                    AggPlan::SampleCol { .. } => AggAccum::First(None),
                    // General exprs: DISTINCT dedups on pool ids.
                    _ => AggAccum::Terms(AggState::new_id_distinct(a.op, a.distinct)),
                })
                .collect()
        };

        // Group index: encoded id-tuple key → position in `groups`. Hashing
        // u64-encoded cells (bijective), never terms. The common single-key
        // case hashes one u64 with no per-row allocation. Over an input the
        // optimizer proved sorted with the keys as an order prefix, hashing
        // disappears entirely: equal keys are adjacent, so a strict
        // increase on the prefix columns *is* a group boundary
        // (`GroupIndex::Sorted`). Both strategies emit groups in
        // first-occurrence order, so they are interchangeable row for row.
        enum GroupIndex {
            One(HashMap<u64, usize>),
            Many(HashMap<Vec<u64>, usize>),
            /// Run detection over these (fully bound, presorted — verified
            /// below) key-prefix columns.
            Sorted(Vec<usize>),
        }
        let sorted_cols = self.sorted_group_columns(sorted_on, keys, &input);

        // Rough per-group footprint (key ids + accumulator state) for the
        // memory axis: grouping state is the one allocation that grows
        // without a corresponding operator output until the loop ends.
        let group_bytes =
            (keys.len() as u64).saturating_mul(16) + (aggs.len() as u64).saturating_mul(64);

        // Parallel grouping: eligible when the input is large, grouping is
        // by hash (run detection is already one cheap sequential pass), and
        // every aggregate merges across chunks without order sensitivity —
        // COUNT/COUNT(*) (count sums / seen-set unions), SAMPLE (first
        // non-empty in chunk order), and id-native MIN/MAX (strict-
        // improvement merge in chunk order preserves first-wins ties).
        // `f64` SUM/AVG stay sequential: float addition is non-associative
        // and byte-identical output is the contract.
        let par_eligible = sorted_cols.is_none()
            && input.len() >= PAR_MIN_ROWS
            && plans.iter().zip(aggs).all(|(plan, spec)| match plan {
                AggPlan::Star | AggPlan::CountCol { .. } | AggPlan::SampleCol { .. } => true,
                AggPlan::NumericCol { .. } => matches!(spec.op, AggOp::Min | AggOp::Max),
                AggPlan::General(_) => false,
            });
        if par_eligible {
            if let Some(p) = self.par.clone() {
                // Chunk-local accumulator restricted to the mergeable
                // shapes (mirrors the sequential accumulators exactly).
                enum ParAccum {
                    Count {
                        seen: Option<HashSet<TermId>>,
                        count: usize,
                    },
                    MinMax(Option<(TermId, NumVal)>),
                    First(Option<TermId>),
                }
                // Encoded group key: bijective cell codes, so code equality
                // is cell equality (same contract as the sequential index).
                #[derive(Clone, PartialEq, Eq, Hash)]
                enum KeyEnc {
                    One(u64),
                    Many(Vec<u64>),
                }
                let fresh_par = |plans: &[AggPlan]| -> Vec<ParAccum> {
                    plans
                        .iter()
                        .map(|plan| match plan {
                            AggPlan::Star => ParAccum::Count {
                                seen: None,
                                count: 0,
                            },
                            AggPlan::CountCol { distinct, .. } => ParAccum::Count {
                                seen: distinct.then(HashSet::new),
                                count: 0,
                            },
                            AggPlan::NumericCol { .. } => ParAccum::MinMax(None),
                            AggPlan::SampleCol { .. } => ParAccum::First(None),
                            AggPlan::General(_) => unreachable!("gated out of the parallel path"),
                        })
                        .collect()
                };

                let chunk = par_chunk_size(input.len(), p.threads);
                let n_chunks = input.len().div_ceil(chunk);
                let shared = SharedMeter::new(&self.meter, n_chunks);
                let pool = &self.pool;
                let input_ref = &input;
                let plans_ref = &plans;
                let key_idx_ref = &key_indices;
                let single_key = key_indices.len() == 1;
                let run = p.pool.run_chunks(input.len(), chunk, |ci, range| {
                    let mut wm = shared.worker(ci);
                    let mut map: HashMap<KeyEnc, usize> = HashMap::new();
                    let mut groups: Vec<(KeyEnc, Vec<Option<TermId>>, Vec<ParAccum>)> = Vec::new();
                    for i in range {
                        // Same per-row budget shape as the sequential loop;
                        // the shared meter sums live group state across
                        // chunks (that memory really is held concurrently).
                        wm.charge_intermediate(
                            groups.len() as u64,
                            (groups.len() as u64).saturating_mul(group_bytes),
                        )?;
                        let enc = if single_key {
                            KeyEnc::One(match key_idx_ref[0] {
                                Some(c) => input_ref.col(c).hash_code(i),
                                None => 0,
                            })
                        } else {
                            KeyEnc::Many(
                                key_idx_ref
                                    .iter()
                                    .map(|ki| match ki {
                                        Some(c) => input_ref.col(*c).hash_code(i),
                                        None => 0,
                                    })
                                    .collect(),
                            )
                        };
                        let slot = map.entry(enc.clone()).or_insert(usize::MAX);
                        let gi = if *slot == usize::MAX {
                            *slot = groups.len();
                            let key: Vec<Option<TermId>> = key_idx_ref
                                .iter()
                                .map(|ki| ki.and_then(|c| input_ref.get(i, c)))
                                .collect();
                            groups.push((enc, key, fresh_par(plans_ref)));
                            groups.len() - 1
                        } else {
                            *slot
                        };
                        for ((accum, plan), spec) in
                            groups[gi].2.iter_mut().zip(plans_ref.iter()).zip(aggs)
                        {
                            match (accum, plan) {
                                (ParAccum::Count { count, .. }, AggPlan::Star) => *count += 1,
                                (
                                    ParAccum::Count { seen, count },
                                    AggPlan::CountCol { idx, .. },
                                ) => {
                                    if let Some(id) = input_ref.get(i, *idx) {
                                        match seen {
                                            Some(set) => {
                                                if set.insert(id) {
                                                    *count += 1;
                                                }
                                            }
                                            None => *count += 1,
                                        }
                                    }
                                }
                                (ParAccum::MinMax(best), AggPlan::NumericCol { idx, .. }) => {
                                    if let Some(id) = input_ref.get(i, *idx) {
                                        let v = match pool.resolve(id) {
                                            Term::Literal(l) => match l.parsed {
                                                TypedValue::Integer(x) => NumVal::I(x),
                                                TypedValue::Double(d) => NumVal::D(d),
                                                _ => unreachable!("numeric_column checked"),
                                            },
                                            _ => unreachable!("numeric_column checked"),
                                        };
                                        let better = match spec.op {
                                            AggOp::Min => Ordering::Less,
                                            _ => Ordering::Greater,
                                        };
                                        if best.is_none_or(|(_, m)| v.cmp_sparql(m) == better) {
                                            *best = Some((id, v));
                                        }
                                    }
                                }
                                (ParAccum::First(first), AggPlan::SampleCol { idx }) => {
                                    if first.is_none() {
                                        *first = input_ref.get(i, *idx);
                                    }
                                }
                                _ => unreachable!("accumulator/plan shape mismatch"),
                            }
                        }
                    }
                    Ok::<_, EngineError>(groups)
                });
                self.par_stats.chunks += run.chunks;
                self.par_stats.steals += run.steals;

                // Merge chunk groups in chunk order: chunk concatenation
                // order is row order, so the first chunk (and within it the
                // first row) to produce a key is the global first
                // occurrence — the sequential group order exactly.
                let merge_start = Instant::now();
                let mut global: HashMap<KeyEnc, usize> = HashMap::new();
                let mut merged: Vec<(Vec<Option<TermId>>, Vec<ParAccum>)> = Vec::new();
                let mut chunk_err: Option<EngineError> = None;
                for r in run.results {
                    let chunk_groups = match r {
                        Ok(g) => g,
                        Err(e) => {
                            chunk_err.get_or_insert(e);
                            continue;
                        }
                    };
                    for (enc, key, accums) in chunk_groups {
                        let slot = global.entry(enc).or_insert(usize::MAX);
                        if *slot == usize::MAX {
                            *slot = merged.len();
                            merged.push((key, accums));
                            continue;
                        }
                        let dst = &mut merged[*slot].1;
                        for ((d, s), spec) in dst.iter_mut().zip(accums).zip(aggs) {
                            match (d, s) {
                                (
                                    ParAccum::Count { seen: None, count },
                                    ParAccum::Count {
                                        seen: None,
                                        count: c2,
                                    },
                                ) => *count += c2,
                                (
                                    ParAccum::Count {
                                        seen: Some(set),
                                        count,
                                    },
                                    ParAccum::Count {
                                        seen: Some(other), ..
                                    },
                                ) => {
                                    // Distinct count = size of the union.
                                    for id in other {
                                        if set.insert(id) {
                                            *count += 1;
                                        }
                                    }
                                }
                                (ParAccum::MinMax(best), ParAccum::MinMax(theirs)) => {
                                    if let Some((id, v)) = theirs {
                                        let better = match spec.op {
                                            AggOp::Min => Ordering::Less,
                                            _ => Ordering::Greater,
                                        };
                                        // Strict improvement only: a tie
                                        // keeps the earlier chunk's id
                                        // (first-wins, like row order).
                                        if best.is_none_or(|(_, m)| v.cmp_sparql(m) == better) {
                                            *best = Some((id, v));
                                        }
                                    }
                                }
                                (ParAccum::First(first), ParAccum::First(theirs)) => {
                                    if first.is_none() {
                                        *first = theirs;
                                    }
                                }
                                _ => unreachable!("accumulator shape mismatch across chunks"),
                            }
                        }
                    }
                }
                self.par_stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
                shared.finish(&mut self.meter)?;
                if let Some(e) = chunk_err {
                    return Err(e);
                }
                self.meter.charge_intermediate(
                    merged.len() as u64,
                    (merged.len() as u64).saturating_mul(group_bytes),
                )?;

                // Finish on the main thread in merged (= sequential) order:
                // every interned term and its order match the sequential
                // path, keeping the pool state identical too.
                let mut out_vars: Vec<String> = keys.to_vec();
                out_vars.extend(aggs.iter().map(|a| a.output.clone()));
                let mut key_cols: Vec<Column> = (0..keys.len())
                    .map(|_| Column::with_capacity(merged.len()))
                    .collect();
                let mut agg_cols: Vec<Column> = (0..aggs.len())
                    .map(|_| Column::with_capacity(merged.len()))
                    .collect();
                let n_groups = merged.len();
                for (key, accums) in merged {
                    for (col, v) in key_cols.iter_mut().zip(key) {
                        col.push(v);
                    }
                    for (col, accum) in agg_cols.iter_mut().zip(accums) {
                        let value: Option<TermId> = match accum {
                            ParAccum::Count { count, .. } => {
                                Some(self.pool.intern(Term::integer(count as i64)))
                            }
                            ParAccum::MinMax(best) => best.map(|(id, _)| id),
                            ParAccum::First(id) => id,
                        };
                        col.push(value);
                    }
                }
                key_cols.extend(agg_cols);
                return Ok(IdTable::from_columns(out_vars, key_cols, n_groups));
            }
        }

        let mut index = match sorted_cols {
            Some(cols) => {
                self.sorted_groups += 1;
                GroupIndex::Sorted(cols)
            }
            None if key_indices.len() == 1 => GroupIndex::One(HashMap::new()),
            None => GroupIndex::Many(HashMap::new()),
        };
        let mut groups: Vec<(Vec<Option<TermId>>, Vec<AggAccum>)> = Vec::new();

        let implicit_single_group = keys.is_empty();
        if implicit_single_group {
            if let GroupIndex::Many(m) = &mut index {
                m.insert(Vec::new(), 0);
            }
            groups.push((Vec::new(), fresh_accums(aggs, &plans)));
        }

        for i in 0..input.len() {
            self.meter.charge_intermediate(
                groups.len() as u64,
                (groups.len() as u64).saturating_mul(group_bytes),
            )?;
            // `None` = this row starts a new group; `Some(gi)` = it joins
            // group `gi` (any earlier one for the hash strategies, always
            // the most recent for run detection).
            let existing: Option<usize> = match &mut index {
                GroupIndex::One(m) => {
                    let enc = match key_indices[0] {
                        Some(c) => input.col(c).hash_code(i),
                        None => 0,
                    };
                    let slot = m.entry(enc).or_insert(usize::MAX);
                    if *slot == usize::MAX {
                        *slot = groups.len();
                        None
                    } else {
                        Some(*slot)
                    }
                }
                GroupIndex::Many(m) => {
                    let key_enc: Vec<u64> = key_indices
                        .iter()
                        .map(|ki| match ki {
                            Some(c) => input.col(*c).hash_code(i),
                            None => 0,
                        })
                        .collect();
                    let slot = m.entry(key_enc).or_insert(usize::MAX);
                    if *slot == usize::MAX {
                        *slot = groups.len();
                        None
                    } else {
                        Some(*slot)
                    }
                }
                GroupIndex::Sorted(cols) => {
                    // Presorted input: a neighbor differing on any prefix
                    // column starts a new group; equal neighbors extend the
                    // last one. (Non-adjacency of equal keys is impossible
                    // — sortedness was verified.)
                    if i == 0 || lex_cmp_prev(&input, cols, i) != Ordering::Equal {
                        None
                    } else {
                        Some(groups.len() - 1)
                    }
                }
            };
            let gi = match existing {
                Some(gi) => gi,
                None => {
                    let gi = groups.len();
                    let key: Vec<Option<TermId>> = key_indices
                        .iter()
                        .map(|ki| ki.and_then(|c| input.get(i, c)))
                        .collect();
                    groups.push((key, fresh_accums(aggs, &plans)));
                    gi
                }
            };
            for (accum, plan) in groups[gi].1.iter_mut().zip(&plans) {
                match (accum, plan) {
                    (AggAccum::Terms(state), AggPlan::Star) => state.push_star(),
                    (AggAccum::Terms(state), AggPlan::General(e)) => {
                        let value = {
                            let buf = &mut self.scratch;
                            input.read_row(i, buf);
                            let ctx = IdRowCtx {
                                vars: &input.vars,
                                row: buf,
                                pool: &self.pool,
                            };
                            eval_expr(e, ctx, &mut self.caches)
                        };
                        state.push_pooled(value, &mut self.pool);
                    }
                    (AggAccum::CountIds { seen, count }, AggPlan::CountCol { idx, .. }) => {
                        if let Some(id) = input.get(i, *idx) {
                            match seen {
                                Some(set) => {
                                    if set.insert(id) {
                                        *count += 1;
                                    }
                                }
                                None => *count += 1,
                            }
                        }
                    }
                    (AggAccum::Numeric(acc), AggPlan::NumericCol { idx, .. }) => {
                        if let Some(id) = input.get(i, *idx) {
                            let v = match self.pool.resolve(id) {
                                Term::Literal(l) => match l.parsed {
                                    TypedValue::Integer(x) => NumVal::I(x),
                                    TypedValue::Double(d) => NumVal::D(d),
                                    _ => unreachable!("numeric_column checked"),
                                },
                                _ => unreachable!("numeric_column checked"),
                            };
                            acc.push(id, v);
                        }
                    }
                    (AggAccum::First(first), AggPlan::SampleCol { idx }) => {
                        if first.is_none() {
                            *first = input.get(i, *idx);
                        }
                    }
                    _ => unreachable!("accumulator/plan shape mismatch"),
                }
            }
        }

        let mut out_vars: Vec<String> = keys.to_vec();
        out_vars.extend(aggs.iter().map(|a| a.output.clone()));
        let mut key_cols: Vec<Column> = (0..keys.len())
            .map(|_| Column::with_capacity(groups.len()))
            .collect();
        let mut agg_cols: Vec<Column> = (0..aggs.len())
            .map(|_| Column::with_capacity(groups.len()))
            .collect();
        let n_groups = groups.len();
        for (key, accums) in groups {
            for (col, v) in key_cols.iter_mut().zip(key) {
                col.push(v);
            }
            for ((col, accum), spec) in agg_cols.iter_mut().zip(accums).zip(aggs) {
                // Aggregate results are computed terms; intern them so the
                // column stays id-native for downstream operators.
                let value: Option<TermId> = match accum {
                    AggAccum::Terms(state) => state.finish().map(|t| self.pool.intern(t)),
                    AggAccum::CountIds { count, .. } => {
                        Some(self.pool.intern(Term::integer(count as i64)))
                    }
                    AggAccum::Numeric(acc) => acc.finish(spec.op, &mut self.pool),
                    AggAccum::First(id) => id,
                };
                col.push(value);
            }
        }
        key_cols.extend(agg_cols);
        Ok(IdTable::from_columns(out_vars, key_cols, n_groups))
    }

    /// Validate a [`Plan::Group`]'s `sorted_on` claim against the actual
    /// input, returning the prefix column indexes to run-detect on, or
    /// `None` for the hash fallback. Checks (all linear or cheaper): the
    /// annotation is present, its variables and the grouping keys name the
    /// same column set, every prefix column exists and is fully bound, and
    /// the rows really are lexicographically non-decreasing on the prefix
    /// sequence — the same trust-but-verify contract as the merge joins.
    fn sorted_group_columns(
        &self,
        sorted_on: &[String],
        keys: &[String],
        input: &IdTable,
    ) -> Option<Vec<usize>> {
        if sorted_on.is_empty() {
            return None;
        }
        // Set equality with the keys (the optimizer guarantees it; a stale
        // or hand-built plan must not silently misgroup).
        if !keys.iter().all(|k| sorted_on.contains(k))
            || !sorted_on.iter().all(|v| keys.contains(v))
        {
            return None;
        }
        let cols: Vec<usize> = sorted_on
            .iter()
            .map(|v| input.column_index(v))
            .collect::<Option<Vec<_>>>()?;
        if cols.iter().any(|&c| !input.col(c).all_present()) {
            return None;
        }
        let sorted = (1..input.len()).all(|i| lex_cmp_prev(input, &cols, i) != Ordering::Greater);
        sorted.then_some(cols)
    }

    /// Is every bound value in the column a numeric literal (and no NaN,
    /// whose SPARQL ordering falls back to lexical comparison)? One linear
    /// id scan; terms are inspected by reference, never cloned.
    fn numeric_column(&self, col: &Column) -> bool {
        for i in 0..col.len() {
            if let Some(id) = col.get(i) {
                match self.pool.resolve(id) {
                    Term::Literal(l) => match l.parsed {
                        TypedValue::Integer(_) => {}
                        TypedValue::Double(d) if !d.is_nan() => {}
                        _ => return false,
                    },
                    _ => return false,
                }
            }
        }
        true
    }

    /// Compute the ORDER BY key terms for every row (the materialization
    /// boundary for sorting). Returns `(keys, original row index)` pairs;
    /// the row index doubles as the stability tie-break.
    fn keyed_rows(&mut self, table: &IdTable, keys: &[OrderKey]) -> Vec<KeyedRow> {
        let mut out = Vec::with_capacity(table.len());
        let pool = &self.pool;
        let caches = &mut self.caches;
        let buf = &mut self.scratch;
        for i in 0..table.len() {
            table.read_row(i, buf);
            let ctx = IdRowCtx {
                vars: &table.vars,
                row: buf,
                pool,
            };
            let computed: Vec<Option<Term>> = keys
                .iter()
                .map(|k| eval_expr(&k.expr, ctx, caches))
                .collect();
            out.push((computed, i));
        }
        out
    }

    fn sort_rows(&mut self, table: &mut IdTable, keys: &[OrderKey]) {
        if let Some(perm) = self.rank_sort_perm(table, keys, None) {
            *table = table.gather_rows(&perm);
            return;
        }
        let mut keyed = self.keyed_rows(table, keys);
        // (key, seq) is a total order equal to a stable sort on key alone.
        keyed.sort_unstable_by(|a, b| compare_keyed(keys, a, b));
        let perm: Vec<u32> = keyed.into_iter().map(|(_, i)| i as u32).collect();
        *table = table.gather_rows(&perm);
    }

    /// Bounded ORDER BY: select the first `k` rows of the sorted order
    /// without fully sorting the input (`Slice ∘ OrderBy` fusion). Produces
    /// exactly the rows a stable full sort followed by `truncate(k)` would.
    fn top_k(&mut self, table: &mut IdTable, keys: &[OrderKey], k: usize) {
        if k == 0 {
            *table = table.gather_rows(&[]);
            return;
        }
        if let Some(perm) = self.rank_sort_perm(table, keys, Some(k)) {
            *table = table.gather_rows(&perm);
            return;
        }
        let mut keyed = self.keyed_rows(table, keys);
        if keyed.len() > k {
            // O(n) partition around the k-th row, then sort only the prefix.
            keyed.select_nth_unstable_by(k - 1, |a, b| compare_keyed(keys, a, b));
            keyed.truncate(k);
        }
        keyed.sort_unstable_by(|a, b| compare_keyed(keys, a, b));
        let perm: Vec<u32> = keyed.into_iter().map(|(_, i)| i as u32).collect();
        *table = table.gather_rows(&perm);
    }

    /// `ORDER BY` over plain variables via the dataset's dictionary-rank
    /// permutation ([`rdf_model::TermRanks`]): every key becomes a column
    /// of `u32` ranks whose comparison reproduces [`Term::order_cmp`]
    /// exactly (equal-comparing terms share a rank), so the sort never
    /// materializes a key term. Returns the row permutation (bounded to the
    /// top `k` when given), or `None` when any key is a computed
    /// expression, any value lies outside the rank snapshot (query-local
    /// overflow terms), or the fast path is disabled — callers then fall
    /// back to the term-keyed sort, which produces the identical order.
    fn rank_sort_perm(
        &self,
        table: &IdTable,
        keys: &[OrderKey],
        k: Option<usize>,
    ) -> Option<Vec<u32>> {
        if !self.rank_sort || keys.is_empty() {
            return None;
        }
        // Every key must be a plain variable (absent variables sort as
        // all-unbound, like the term path).
        let cols: Vec<Option<usize>> = keys
            .iter()
            .map(|key| match &key.expr {
                Expr::Var(v) => Some(table.column_index(v)),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        // A cold rank cache costs a full O(dict · log dict) build; only pay
        // it when the result is big enough to plausibly amortize (the cache
        // then serves every later sort until the interner grows). Small
        // sorts on a cold cache stay on the term path.
        let ranks = match self.dataset.cached_term_ranks() {
            Some(ranks) => ranks,
            None if table.len() >= self.dataset.interner().len() / 16 => self.dataset.term_ranks(),
            None => return None,
        };
        // One rank column per key; bail on ids past the snapshot.
        let mut rank_cols: Vec<Option<Vec<Option<u32>>>> = Vec::with_capacity(keys.len());
        for col in cols {
            match col {
                None => rank_cols.push(None),
                Some(c) => {
                    let column = table.col(c);
                    let mut out = Vec::with_capacity(table.len());
                    for i in 0..table.len() {
                        match column.get(i) {
                            None => out.push(None),
                            Some(id) => out.push(Some(ranks.rank(id)?)),
                        }
                    }
                    rank_cols.push(Some(out));
                }
            }
        }
        let cmp = |a: u32, b: u32| -> Ordering {
            let (a, b) = (a as usize, b as usize);
            for (key, rc) in keys.iter().zip(&rank_cols) {
                let (x, y) = match rc {
                    Some(v) => (v[a], v[b]),
                    None => (None, None),
                };
                // Option's order (None first) matches the term path's
                // unbound-sorts-first; descending reverses both, exactly
                // like `compare_keyed`.
                let mut ord = x.cmp(&y);
                if !key.ascending {
                    ord = ord.reverse();
                }
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            // Original position: the stability tie-break.
            a.cmp(&b)
        };
        let mut perm: Vec<u32> = (0..table.len() as u32).collect();
        if let Some(k) = k {
            if perm.len() > k {
                perm.select_nth_unstable_by(k - 1, |&a, &b| cmp(a, b));
                perm.truncate(k);
            }
        }
        perm.sort_unstable_by(|&a, &b| cmp(a, b));
        Some(perm)
    }
}

/// A sort candidate: computed key terms and original row index (stability
/// tie-break).
type KeyedRow = (Vec<Option<Term>>, usize);

fn compare_keyed(keys: &[OrderKey], a: &KeyedRow, b: &KeyedRow) -> Ordering {
    for (key_spec, (x, y)) in keys.iter().zip(a.0.iter().zip(b.0.iter())) {
        let ord = match (x, y) {
            (None, None) => Ordering::Equal,
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(x), Some(y)) => x.order_cmp(y),
        };
        let ord = if key_spec.ascending {
            ord
        } else {
            ord.reverse()
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// One BGP extension pass over the input rows in `rows` for a single
/// pattern: refine the pattern's slots against each row, scan every graph's
/// access path, apply duplicate-variable and pushed-filter checks, and
/// append matches as a gather index (the *global* input row number) plus
/// one value per newly-bound slot.
///
/// Factored out of [`Evaluator::eval_bgp`] so the sequential path (whole
/// range, the evaluator's [`BudgetMeter`]) and each parallel chunk
/// (sub-range, a [`crate::budget::WorkerMeter`]) run the identical loop
/// body: concatenating chunk results in chunk order reproduces the
/// sequential match order exactly (gather indexes ascend within and across
/// chunks), and summing the returned scan counts reproduces `rows_scanned`
/// exactly (per-row scan work is independent of the partitioning).
#[allow(clippy::too_many_arguments)]
fn bgp_scan_rows<M: OpMeter>(
    rows: Range<usize>,
    pats: &[(&Graph, &GraphIdMap, [Slot; 3])],
    cur: &[Column],
    bound: &[bool],
    primaries: &[(usize, usize)],
    dup_checks: &[(usize, usize)],
    checks: &mut [(usize, PushedEval)],
    n_slots: usize,
    pool: &TermPool,
    caches: &mut EvalCaches,
    meter: &mut M,
) -> Result<(Vec<u32>, Vec<Vec<TermId>>, u64)> {
    let mut src: Vec<u32> = Vec::new();
    let mut vals: Vec<Vec<TermId>> = (0..n_slots).map(|_| Vec::new()).collect();
    let mut scanned = 0u64;
    for i in rows {
        let row_start = scanned;
        for (g, map, slots) in pats {
            // Refine slots against row `i`: an already-bound variable whose
            // global id has no local id in this graph can match nothing
            // here.
            let mut refined = [None; 3];
            let mut ok = true;
            for (pos, slot) in slots.iter().enumerate() {
                refined[pos] = match slot {
                    Slot::Bound(local) => Some(*local),
                    Slot::Var(col) if bound[*col] => match map.to_local(cur[*col].ids()[i]) {
                        Some(local) => Some(local),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    Slot::Var(_) => None,
                };
            }
            if !ok {
                continue;
            }
            let row = i as u32;
            scanned += g.for_each_match(refined[0], refined[1], refined[2], |ms, mp, mo| {
                let m = [ms, mp, mo];
                if dup_checks.iter().any(|&(a, b)| m[a] != m[b]) {
                    return;
                }
                // Translate newly-bound values first: pushed filters test
                // global ids, and a rejected candidate must touch no
                // buffer at all.
                let mut globals = [TermId(0); 3];
                for &(slot, pos) in primaries {
                    globals[slot] = map.to_global(m[pos]);
                }
                for (slot, pe) in checks.iter_mut() {
                    if !pe.test(globals[*slot], pool, caches) {
                        return;
                    }
                }
                src.push(row);
                for &(slot, _) in primaries {
                    vals[slot].push(globals[slot]);
                }
            });
        }
        // Budget checkpoint between rows: the scan work this row added,
        // plus (when the periodic poll fires) the match buffers' current
        // size. `for_each_match` has no early exit, so overshoot is
        // bounded by one row's matches per executing worker.
        if meter.charge_scan(scanned - row_start)? {
            let bytes = (src.len() as u64).saturating_mul(4).saturating_add(
                vals.iter()
                    .fold(0u64, |a, v| a.saturating_add(v.len() as u64 * 4)),
            );
            meter.charge_intermediate(src.len() as u64, bytes)?;
        }
    }
    Ok((src, vals, scanned))
}

/// Pattern-level binding of one triple position.
#[derive(Clone, Copy)]
enum Slot {
    /// Constant, resolved to the graph's local id.
    Bound(TermId),
    /// Variable at this column index (bound-ness is uniform per pattern).
    Var(usize),
}

/// A numeric value as SPARQL compares it: `i64` when both sides are
/// integers, `f64` otherwise. The column precheck guarantees no NaN.
#[derive(Debug, Clone, Copy)]
enum NumVal {
    I(i64),
    D(f64),
}

impl NumVal {
    fn as_f64(self) -> f64 {
        match self {
            NumVal::I(i) => i as f64,
            NumVal::D(d) => d,
        }
    }

    /// SPARQL numeric comparison (mirrors `Term::value_cmp` on two numeric
    /// literals, which `order_cmp` delegates to).
    fn cmp_sparql(self, other: NumVal) -> Ordering {
        match (self, other) {
            (NumVal::I(a), NumVal::I(b)) => a.cmp(&b),
            _ => self
                .as_f64()
                .partial_cmp(&other.as_f64())
                .expect("NaN excluded by numeric_column"),
        }
    }
}

/// Id-native accumulator for `SUM`/`AVG`/`MIN`/`MAX` over a numeric-literal
/// column. Mirrors [`AggState`]'s arithmetic exactly (wrapping integer sum,
/// `f64` shadow sum in row order, first-wins ties for MIN/MAX) but never
/// materializes a term: MIN/MAX track the winning *id*, which downstream
/// operators and the final projection resolve like any other binding.
struct NumericAccum {
    seen: Option<HashSet<TermId>>,
    count: usize,
    int_sum: i64,
    f_sum: f64,
    integral: bool,
    min: Option<(TermId, NumVal)>,
    max: Option<(TermId, NumVal)>,
}

impl NumericAccum {
    fn new(distinct: bool) -> Self {
        NumericAccum {
            seen: distinct.then(HashSet::new),
            count: 0,
            int_sum: 0,
            f_sum: 0.0,
            integral: true,
            min: None,
            max: None,
        }
    }

    fn push(&mut self, id: TermId, v: NumVal) {
        if let Some(seen) = &mut self.seen {
            if !seen.insert(id) {
                return;
            }
        }
        self.count += 1;
        match v {
            NumVal::I(i) => {
                self.int_sum = self.int_sum.wrapping_add(i);
                self.f_sum += i as f64;
            }
            NumVal::D(d) => {
                self.integral = false;
                self.f_sum += d;
            }
        }
        if self
            .min
            .is_none_or(|(_, m)| v.cmp_sparql(m) == Ordering::Less)
        {
            self.min = Some((id, v));
        }
        if self
            .max
            .is_none_or(|(_, m)| v.cmp_sparql(m) == Ordering::Greater)
        {
            self.max = Some((id, v));
        }
    }

    fn finish(self, op: AggOp, pool: &mut TermPool) -> Option<TermId> {
        match op {
            AggOp::Sum => Some(if self.integral {
                pool.intern(Term::integer(self.int_sum))
            } else {
                pool.intern(Term::Literal(Literal::double(self.f_sum)))
            }),
            AggOp::Avg => Some(if self.count == 0 {
                pool.intern(Term::integer(0))
            } else {
                pool.intern(Term::Literal(Literal::double(
                    self.f_sum / self.count as f64,
                )))
            }),
            AggOp::Min => self.min.map(|(id, _)| id),
            AggOp::Max => self.max.map(|(id, _)| id),
            _ => unreachable!("NumericCol only plans SUM/AVG/MIN/MAX"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JoinKind {
    Inner,
    Left,
}

/// Marker for "left row had no match" in the pair list of a left join.
const NO_MATCH: u32 = u32::MAX;

/// Columnar hash join with SPARQL compatibility semantics.
///
/// Key selection: the shared variables bound in *every* row of both inputs
/// (one bitmap popcount per column, no row scan) form the hash key;
/// remaining shared variables are checked per candidate pair with
/// unbound-is-compatible semantics. The match phase produces a `(left row,
/// right row)` pair list; output columns are then assembled by gathering
/// over it — shared columns take the left value when present and fall back
/// to the right side. Falls back to nested loop when no always-bound shared
/// variable exists.
///
/// The pair list is the allocation a cross-product-shaped join balloons
/// before any output column exists, so every probe strategy checks it
/// against the budget between left rows (overshoot bounded by one left
/// row's candidates).
///
/// With a parallel context, the single-key path runs partitioned: each
/// build chunk indexes its own right-row range, and each probe chunk walks
/// *all* chunk maps in chunk order — right-row indexes ascend within a
/// chunk map and across maps, so every left row sees its candidates in
/// exactly the sequential bucket order, and concatenating per-chunk pair
/// lists in chunk order reproduces the sequential pair list byte for byte.
fn join(
    left: IdTable,
    right: IdTable,
    kind: JoinKind,
    meter: &mut BudgetMeter,
    par: Option<&ParCtx>,
    par_stats: &mut ParStats,
) -> Result<IdTable> {
    let shape = JoinShape::new(&left, &right);

    // Positions (within the shared vars) usable as hash key.
    let key_positions: Vec<usize> = (0..shape.shared_len())
        .filter(|&k| {
            left.col(shape.l_idx[k]).all_present() && right.col(shape.r_idx[k]).all_present()
        })
        .collect();
    let l_idx = &shape.l_idx;
    let r_idx = &shape.r_idx;

    let compatible = |li: usize, ri: usize| -> bool { shape.compatible(&left, &right, li, ri) };

    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if key_positions.len() == 1 {
        // Single-column key (the common case): hash raw ids.
        let lk = left.col(l_idx[key_positions[0]]);
        let rk = right.col(r_idx[key_positions[0]]);
        let par_run = par.filter(|_| left.len() >= PAR_MIN_ROWS);
        if let Some(p) = par_run {
            // Partitioned build: each chunk indexes its right-row range.
            let build_chunk = par_chunk_size(right.len(), p.threads);
            let build = p.pool.run_chunks(right.len(), build_chunk, |_ci, range| {
                let mut m: HashMap<TermId, Vec<u32>> = HashMap::with_capacity(range.len());
                for ri in range {
                    m.entry(rk.ids()[ri]).or_default().push(ri as u32);
                }
                m
            });
            par_stats.chunks += build.chunks;
            par_stats.steals += build.steals;
            let maps = build.results;
            // Chunked probe: a left row probes every chunk map in chunk
            // order, seeing candidates in ascending right-row order — the
            // sequential bucket order.
            let probe_chunk = par_chunk_size(left.len(), p.threads);
            let n_chunks = left.len().div_ceil(probe_chunk);
            let shared = SharedMeter::new(meter, n_chunks);
            let maps_ref = &maps;
            let compatible_ref = &compatible;
            let probe = p.pool.run_chunks(left.len(), probe_chunk, |ci, range| {
                let mut wm = shared.worker(ci);
                let mut out: Vec<(u32, u32)> = Vec::new();
                for li in range {
                    let id = lk.ids()[li];
                    let mut matched = false;
                    for m in maps_ref {
                        if let Some(candidates) = m.get(&id) {
                            for &ri in candidates {
                                if compatible_ref(li, ri as usize) {
                                    out.push((li as u32, ri));
                                    matched = true;
                                }
                            }
                        }
                    }
                    if !matched && kind == JoinKind::Left {
                        out.push((li as u32, NO_MATCH));
                    }
                    wm.charge_intermediate(out.len() as u64, out.len() as u64 * 8)?;
                }
                Ok::<_, EngineError>(out)
            });
            par_stats.chunks += probe.chunks;
            par_stats.steals += probe.steals;
            let merge_start = Instant::now();
            let mut chunk_err: Option<EngineError> = None;
            for r in probe.results {
                match r {
                    Ok(mut v) => pairs.append(&mut v),
                    Err(e) => {
                        chunk_err.get_or_insert(e);
                    }
                }
            }
            par_stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
            shared.finish(meter)?;
            if let Some(e) = chunk_err {
                return Err(e);
            }
        } else {
            let mut table: HashMap<TermId, Vec<u32>> = HashMap::with_capacity(right.len());
            for (ri, &id) in rk.ids().iter().enumerate() {
                table.entry(id).or_default().push(ri as u32);
            }
            for (li, &id) in lk.ids().iter().enumerate() {
                let mut matched = false;
                if let Some(candidates) = table.get(&id) {
                    for &ri in candidates {
                        if compatible(li, ri as usize) {
                            pairs.push((li as u32, ri));
                            matched = true;
                        }
                    }
                }
                if !matched && kind == JoinKind::Left {
                    pairs.push((li as u32, NO_MATCH));
                }
                meter.charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
            }
        }
    } else if !key_positions.is_empty() || shape.shared_len() == 0 {
        // Multi-column (or empty = cross-product bucket) key.
        let mut table: HashMap<Vec<TermId>, Vec<u32>> = HashMap::with_capacity(right.len());
        for ri in 0..right.len() {
            let key: Vec<TermId> = key_positions
                .iter()
                .map(|&k| right.col(r_idx[k]).ids()[ri])
                .collect();
            table.entry(key).or_default().push(ri as u32);
        }
        for li in 0..left.len() {
            let key: Vec<TermId> = key_positions
                .iter()
                .map(|&k| left.col(l_idx[k]).ids()[li])
                .collect();
            let mut matched = false;
            if let Some(candidates) = table.get(&key) {
                for &ri in candidates {
                    if compatible(li, ri as usize) {
                        pairs.push((li as u32, ri));
                        matched = true;
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                pairs.push((li as u32, NO_MATCH));
            }
            meter.charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
        }
    } else {
        // Nested loop with compatibility semantics.
        for li in 0..left.len() {
            let mut matched = false;
            for ri in 0..right.len() {
                if compatible(li, ri) {
                    pairs.push((li as u32, ri as u32));
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                pairs.push((li as u32, NO_MATCH));
            }
            meter.charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
        }
    }

    Ok(assemble_join(&left, &right, shape.out_vars, &pairs))
}

/// Join-shape setup shared by the hash and merge join implementations —
/// the shared-variable column indexes, the output schema, and the per-pair
/// compatibility check — so the two paths cannot drift apart (the merge
/// rewrite's whole contract is producing row-for-row what the hash join
/// would).
struct JoinShape {
    /// Output schema: left vars, then right-only vars.
    out_vars: Vec<String>,
    /// Shared vars' column indexes in the left input.
    l_idx: Vec<usize>,
    /// Shared vars' column indexes in the right input (parallel to `l_idx`).
    r_idx: Vec<usize>,
}

impl JoinShape {
    fn new(left: &IdTable, right: &IdTable) -> Self {
        let shared: Vec<&String> = left
            .vars
            .iter()
            .filter(|v| right.vars.contains(v))
            .collect();
        let mut out_vars = left.vars.clone();
        for v in &right.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        let l_idx: Vec<usize> = shared
            .iter()
            .map(|v| left.column_index(v).expect("shared var in left"))
            .collect();
        let r_idx: Vec<usize> = shared
            .iter()
            .map(|v| right.column_index(v).expect("shared var in right"))
            .collect();
        JoinShape {
            out_vars,
            l_idx,
            r_idx,
        }
    }

    fn shared_len(&self) -> usize {
        self.l_idx.len()
    }

    /// SPARQL compatibility: every shared variable bound on both sides must
    /// agree; unbound is compatible with anything.
    fn compatible(&self, left: &IdTable, right: &IdTable, li: usize, ri: usize) -> bool {
        for k in 0..self.shared_len() {
            if let (Some(a), Some(b)) = (left.get(li, self.l_idx[k]), right.get(ri, self.r_idx[k]))
            {
                if a != b {
                    return false;
                }
            }
        }
        true
    }
}

/// Order-preserving merge join (inner or left): both inputs sorted
/// non-decreasing on their key column (all slots bound — verified by the
/// caller). Emits pairs in exactly the order the hash join produces — left
/// rows in input order, each one's matches in ascending right-row order,
/// and (for the left flavor) an unmatched-left marker in place — so the
/// rewrite is invisible to everything downstream, including the
/// differential oracles. Remaining shared variables get the same per-pair
/// compatibility check the hash join applies (same [`JoinShape`]): a left
/// row whose key-run candidates all fail it counts as unmatched, exactly
/// like the hash join's bucket probe.
fn merge_join(
    left: IdTable,
    right: IdTable,
    l_key: usize,
    r_key: usize,
    kind: JoinKind,
    meter: &mut BudgetMeter,
) -> Result<IdTable> {
    let shape = JoinShape::new(&left, &right);
    let compatible = |li: usize, ri: usize| -> bool { shape.compatible(&left, &right, li, ri) };

    let lk = left.col(l_key).ids();
    let rk = right.col(r_key).ids();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    // `run` marks the start of the right-side run for the current left key;
    // both sides ascend, so it only ever moves forward.
    let mut run = 0usize;
    for (li, &key) in lk.iter().enumerate() {
        while run < rk.len() && rk[run] < key {
            run += 1;
        }
        let mut ri = run;
        let mut matched = false;
        while ri < rk.len() && rk[ri] == key {
            if compatible(li, ri) {
                pairs.push((li as u32, ri as u32));
                matched = true;
            }
            ri += 1;
        }
        if !matched && kind == JoinKind::Left {
            pairs.push((li as u32, NO_MATCH));
        }
        meter.charge_intermediate(pairs.len() as u64, pairs.len() as u64 * 8)?;
    }
    Ok(assemble_join(&left, &right, shape.out_vars, &pairs))
}

/// Body of [`Plan::Project`] over an owned table: move projected columns
/// out instead of cloning id vectors and bitmaps. Pure column shuffling —
/// the streaming pipeline applies it per batch.
fn project_table(vars: &[String], t: IdTable) -> IdTable {
    let rows = t.len();
    let (t_vars, t_cols, _) = t.into_parts();
    let mut pool: Vec<Option<Column>> = t_cols.into_iter().map(Some).collect();
    let mut out_cols: Vec<Column> = Vec::with_capacity(vars.len());
    for (k, v) in vars.iter().enumerate() {
        let col = if let Some(prev) = vars[..k].iter().position(|x| x == v) {
            // `SELECT ?x ?x`: second occurrence clones the
            // already-projected column.
            out_cols[prev].clone()
        } else if let Some(i) = t_vars.iter().position(|x| x == v) {
            pool[i].take().expect("first projection of this var")
        } else {
            Column::absent(rows)
        };
        out_cols.push(col);
    }
    IdTable::from_columns(vars.to_vec(), out_cols, rows)
}

/// Hash-based DISTINCT (keeps first occurrences): the general path, and the
/// fallback when a [`Plan::SortedDistinct`] claim fails at run time.
fn hash_distinct(mut t: IdTable) -> IdTable {
    let width = t.vars.len();
    let mut keep = Vec::with_capacity(t.len());
    if width == 1 {
        // Single column: dedup on bare u64 codes, no row keys.
        let mut seen: HashSet<u64> = HashSet::with_capacity(t.len());
        let col = t.col(0);
        for i in 0..t.len() {
            keep.push(seen.insert(col.hash_code(i)));
        }
    } else {
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(t.len());
        for i in 0..t.len() {
            let key: Vec<u64> = (0..width).map(|c| t.col(c).hash_code(i)).collect();
            keep.push(seen.insert(key));
        }
    }
    t.filter_mask(&keep);
    t
}

/// Linear run-detection DISTINCT over a table claimed sorted on `order`.
///
/// Eligibility is re-verified here, not trusted: every order variable must
/// be a column, every column must appear in the order (otherwise rows equal
/// on the order columns could still differ and run detection would
/// over-delete), every order column must be fully bound, and the rows must
/// actually be lexicographically non-decreasing on the order sequence. The
/// sortedness check and the dedup are one fused pass: a strictly greater
/// neighbor starts a new run (keep), an equal neighbor is a duplicate
/// (drop — order covers all columns, so order-equal means row-equal), and
/// an out-of-order neighbor aborts to `None` (hash fallback).
fn sorted_distinct_mask(t: &IdTable, order: &[String]) -> Option<Vec<bool>> {
    let cols: Vec<usize> = order
        .iter()
        .map(|v| t.column_index(v))
        .collect::<Option<Vec<_>>>()?;
    // Coverage: duplicate-named columns are clones by construction
    // (projection copies the first occurrence), so name coverage is column
    // coverage.
    if !t.vars.iter().all(|v| order.contains(v)) {
        return None;
    }
    if cols.iter().any(|&c| !t.col(c).all_present()) {
        return None;
    }
    let mut keep = Vec::with_capacity(t.len());
    if !t.is_empty() {
        keep.push(true);
    }
    for i in 1..t.len() {
        match lex_cmp_prev(t, &cols, i) {
            Ordering::Greater => return None, // claim was wrong: fall back
            Ordering::Less => keep.push(true),
            Ordering::Equal => keep.push(false),
        }
    }
    Some(keep)
}

/// Compare rows `i-1` and `i` lexicographically on `cols` by raw id (the
/// one comparator behind every run-time sortedness check and run
/// detection — callers must have verified the columns fully bound).
#[inline]
fn lex_cmp_prev(t: &IdTable, cols: &[usize], i: usize) -> Ordering {
    for &c in cols {
        let ids = t.col(c).ids();
        let ord = ids[i - 1].cmp(&ids[i]);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Emit join output columns by gathering over a `(left row, right row)`
/// pair list (`NO_MATCH` right = unmatched left row of a left join).
fn assemble_join(
    left: &IdTable,
    right: &IdTable,
    out_vars: Vec<String>,
    pairs: &[(u32, u32)],
) -> IdTable {
    let mut cols: Vec<Column> = Vec::with_capacity(out_vars.len());
    for v in &out_vars {
        let mut col = Column::with_capacity(pairs.len());
        match (left.column_index(v), right.column_index(v)) {
            (Some(lc), Some(rc)) => {
                // Shared: left value when present, else the right side's.
                for &(li, ri) in pairs {
                    let value = match left.get(li as usize, lc) {
                        Some(x) => Some(x),
                        None if ri != NO_MATCH => right.get(ri as usize, rc),
                        None => None,
                    };
                    col.push(value);
                }
            }
            (Some(lc), None) => {
                for &(li, _) in pairs {
                    col.push(left.get(li as usize, lc));
                }
            }
            (None, Some(rc)) => {
                for &(_, ri) in pairs {
                    col.push(if ri == NO_MATCH {
                        None
                    } else {
                        right.get(ri as usize, rc)
                    });
                }
            }
            (None, None) => unreachable!("out var comes from one side"),
        }
        cols.push(col);
    }
    let rows = pairs.len();
    IdTable::from_columns(out_vars, cols, rows)
}

/// Bag union with schema alignment (column-at-a-time concatenation).
fn union(left: IdTable, right: IdTable) -> IdTable {
    let mut vars = left.vars.clone();
    for v in &right.vars {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let total = left.len() + right.len();
    let mut cols = Vec::with_capacity(vars.len());
    for v in &vars {
        let mut col = Column::with_capacity(total);
        match left.column_index(v) {
            Some(lc) => {
                for i in 0..left.len() {
                    col.push(left.get(i, lc));
                }
            }
            None => {
                for _ in 0..left.len() {
                    col.push(None);
                }
            }
        }
        match right.column_index(v) {
            Some(rc) => {
                for i in 0..right.len() {
                    col.push(right.get(i, rc));
                }
            }
            None => {
                for _ in 0..right.len() {
                    col.push(None);
                }
            }
        }
        cols.push(col);
    }
    IdTable::from_columns(vars, cols, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tbl(vars: &[&str], rows: Vec<Vec<Option<TermId>>>) -> IdTable {
        let mut t = IdTable::with_vars(vars.iter().map(|s| s.to_string()).collect());
        for row in rows {
            t.push_row(&row);
        }
        t
    }

    fn i(v: u32) -> Option<TermId> {
        Some(TermId(v))
    }

    fn rows_of(t: &IdTable) -> Vec<Vec<Option<TermId>>> {
        (0..t.len())
            .map(|r| (0..t.vars.len()).map(|c| t.get(r, c)).collect())
            .collect()
    }

    #[test]
    fn inner_join_on_shared() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(10)], vec![i(2), i(20)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)], vec![i(3), i(300)]]);
        let j = join(
            a,
            b,
            JoinKind::Inner,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        assert_eq!(j.vars, vec!["x", "y", "z"]);
        assert_eq!(rows_of(&j), vec![vec![i(1), i(10), i(100)]]);
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["x", "z"], vec![vec![i(1), i(100)]]);
        let j = join(
            a,
            b,
            JoinKind::Left,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(rows_of(&j)[1], vec![i(2), None]);
    }

    #[test]
    fn join_with_partially_unbound_shared_var() {
        // 'g' is shared but sometimes unbound on the left (e.g. OPTIONAL
        // output): unbound is compatible with anything.
        let a = tbl(&["x", "g"], vec![vec![i(1), None], vec![i(2), i(9)]]);
        let b = tbl(&["x", "g"], vec![vec![i(1), i(7)], vec![i(2), i(8)]]);
        let j = join(
            a,
            b,
            JoinKind::Inner,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        // Row (1, None) joins (1, 7) → (1, 7); row (2, 9) vs (2, 8) clash.
        assert_eq!(rows_of(&j), vec![vec![i(1), i(7)]]);
    }

    #[test]
    fn cross_product_when_no_shared() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let b = tbl(&["y"], vec![vec![i(3)]]);
        let j = join(
            a,
            b,
            JoinKind::Inner,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn union_aligns_schemas() {
        let a = tbl(&["x", "y"], vec![vec![i(1), i(2)]]);
        let b = tbl(&["y", "z"], vec![vec![i(5), i(6)]]);
        let u = union(a, b);
        assert_eq!(u.vars, vec!["x", "y", "z"]);
        assert_eq!(rows_of(&u)[0], vec![i(1), i(2), None]);
        assert_eq!(rows_of(&u)[1], vec![None, i(5), i(6)]);
    }

    #[test]
    fn bag_semantics_preserved() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let b = tbl(&["x"], vec![vec![i(1)], vec![i(1)]]);
        let j = join(
            a,
            b,
            JoinKind::Inner,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        // 2 × 2 duplicates → 4 rows.
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn unit_table_is_join_identity() {
        let a = tbl(&["x"], vec![vec![i(1)], vec![i(2)]]);
        let j = join(
            IdTable::unit(),
            a,
            JoinKind::Inner,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        assert_eq!(j.vars, vec!["x"]);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn merge_left_join_matches_hash_left_join() {
        // Sorted key columns; left rows 1..4, right matches for 1 (two,
        // one incompatible on the extra shared var), none for 2, one for 4.
        let left = tbl(
            &["x", "g"],
            vec![vec![i(1), i(7)], vec![i(2), i(7)], vec![i(4), None]],
        );
        let right = tbl(
            &["x", "g", "z"],
            vec![
                vec![i(1), i(7), i(100)],
                vec![i(1), i(8), i(101)], // clashes on ?g → incompatible
                vec![i(4), i(9), i(102)], // joins the unbound-?g left row
            ],
        );
        let via_hash = join(
            left.clone(),
            right.clone(),
            JoinKind::Left,
            &mut BudgetMeter::unlimited(),
            None,
            &mut ParStats::default(),
        )
        .unwrap();
        let via_merge = merge_join(
            left,
            right,
            0,
            0,
            JoinKind::Left,
            &mut BudgetMeter::unlimited(),
        )
        .unwrap();
        assert_eq!(rows_of(&via_hash), rows_of(&via_merge));
        assert_eq!(via_hash.vars, via_merge.vars);
        // Row 2 (x=2) must appear unmatched, in place.
        assert_eq!(rows_of(&via_merge)[1], vec![i(2), i(7), None]);
    }

    #[test]
    fn sorted_distinct_mask_checks_its_claims() {
        let order: Vec<String> = vec!["a".into(), "b".into()];
        // Sorted with duplicates: run detection keeps first occurrences.
        let t = tbl(
            &["a", "b"],
            vec![
                vec![i(1), i(5)],
                vec![i(1), i(5)],
                vec![i(1), i(6)],
                vec![i(2), i(3)],
                vec![i(2), i(3)],
            ],
        );
        assert_eq!(
            sorted_distinct_mask(&t, &order),
            Some(vec![true, false, true, true, false])
        );
        // Out-of-order rows: the claim is rejected (hash fallback).
        let unsorted = tbl(&["a", "b"], vec![vec![i(2), i(1)], vec![i(1), i(1)]]);
        assert_eq!(sorted_distinct_mask(&unsorted, &order), None);
        // A column the order does not cover: rejected.
        let extra = tbl(&["a", "c"], vec![vec![i(1), i(1)]]);
        assert_eq!(sorted_distinct_mask(&extra, &order), None);
        // An unbound slot in an order column: rejected.
        let unbound = tbl(&["a", "b"], vec![vec![i(1), None]]);
        assert_eq!(sorted_distinct_mask(&unbound, &order), None);
        // Empty input is trivially sorted.
        let empty = tbl(&["a", "b"], vec![]);
        assert_eq!(sorted_distinct_mask(&empty, &order), Some(vec![]));
    }

    #[test]
    fn numeric_accum_matches_agg_state() {
        use crate::ast::AggOp;
        use rdf_model::Interner;

        // SUM/AVG/MIN/MAX over mixed int/double values, with and without
        // DISTINCT, must agree with the term-based AggState.
        let mut interner = Interner::new();
        let values = [
            Term::integer(5),
            Term::integer(5),
            Term::Literal(Literal::double(2.5)),
            Term::integer(-3),
            Term::Literal(Literal::double(5.0)),
        ];
        let ids: Vec<TermId> = values.iter().map(|t| interner.intern(t.clone())).collect();
        for op in [AggOp::Sum, AggOp::Avg, AggOp::Min, AggOp::Max] {
            for distinct in [false, true] {
                let mut pool = TermPool::new(&interner);
                let mut fast = NumericAccum::new(distinct);
                let mut slow = AggState::new(op, distinct);
                for (t, &id) in values.iter().zip(&ids) {
                    let v = match t {
                        Term::Literal(l) => match l.parsed {
                            TypedValue::Integer(x) => NumVal::I(x),
                            TypedValue::Double(d) => NumVal::D(d),
                            _ => unreachable!(),
                        },
                        _ => unreachable!(),
                    };
                    fast.push(id, v);
                    slow.push(Some(t.clone()));
                }
                let fast_term = fast
                    .finish(op, &mut pool)
                    .map(|id| pool.resolve(id).clone());
                assert_eq!(fast_term, slow.finish(), "{op:?} distinct={distinct}");
            }
        }
    }
}
