//! Recursive-descent parser for the SPARQL SELECT subset.
//!
//! Parses the queries RDFFrames generates plus the expert-written baselines:
//! prologue with `PREFIX`, `SELECT [DISTINCT] (expr AS ?v | ?v | *)`,
//! `FROM`, group graph patterns with triples blocks (`;` and `,`
//! abbreviations, `a` keyword), `FILTER`, `OPTIONAL`, `UNION`, `GRAPH`,
//! `BIND`, nested `SELECT` subqueries, `GROUP BY`, `HAVING`, `ORDER BY`,
//! `LIMIT`, `OFFSET`, and the full expression grammar with aggregates.

use rdf_model::{Literal, PrefixMap, Term};

use crate::ast::*;
use crate::error::{EngineError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a SPARQL SELECT query.
pub fn parse_query(input: &str) -> Result<SelectQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: PrefixMap::with_defaults(),
    };
    p.parse_prologue()?;
    let q = p.parse_select_query(true)?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a standalone SPARQL boolean/value expression (as written inside
/// `FILTER ( ... )`) against an explicit prefix map.
///
/// This is the one string entry point the embedded execution path keeps:
/// RDFFrames' `filter_raw` escape hatch hands the engine raw SPARQL
/// expression text, which compiles through here instead of a full
/// query-render/parse round trip. The default `rdf:`/`rdfs:`/`xsd:`
/// prefixes are always in scope, exactly as in [`parse_query`].
pub fn parse_expression_with_prefixes(input: &str, prefixes: &PrefixMap) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut map = PrefixMap::with_defaults();
    for (p, ns) in prefixes.iter() {
        map.declare(p, ns);
    }
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: map,
    };
    let expr = p.parse_expr()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: PrefixMap,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn err(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            position: self.position(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn eat_word(&mut self, kw: &str) -> bool {
        if self.peek().is_word(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, kw: &str) -> Result<()> {
        if self.eat_word(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        // Allow a trailing semicolon some clients append.
        while matches!(self.peek(), TokenKind::Semicolon) {
            self.bump();
        }
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing content: {:?}", self.peek())))
        }
    }

    fn parse_prologue(&mut self) -> Result<()> {
        while self.peek().is_word("PREFIX") {
            self.bump();
            let (prefix, local) = match self.bump() {
                TokenKind::PName(p, l) => (p, l),
                other => return Err(self.err(format!("expected prefix name, found {other:?}"))),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.bump() {
                TokenKind::IriRef(i) => i,
                other => return Err(self.err(format!("expected IRI, found {other:?}"))),
            };
            self.prefixes.declare(prefix, iri);
        }
        Ok(())
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String> {
        match self.prefixes.namespace(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(self.err(format!("unknown prefix '{prefix}'"))),
        }
    }

    fn parse_select_query(&mut self, top_level: bool) -> Result<SelectQuery> {
        self.expect_word("SELECT")?;
        let distinct = self.eat_word("DISTINCT");
        // REDUCED treated as a no-op modifier.
        self.eat_word("REDUCED");

        let projection = if matches!(self.peek(), TokenKind::Star) {
            self.bump();
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                match self.peek().clone() {
                    TokenKind::Var(v) => {
                        self.bump();
                        items.push(SelectItem::Var(v));
                    }
                    TokenKind::LParen => {
                        self.bump();
                        let expr = self.parse_expr()?;
                        self.expect_word("AS")?;
                        let alias = match self.bump() {
                            TokenKind::Var(v) => v,
                            other => {
                                return Err(self.err(format!("expected variable, got {other:?}")))
                            }
                        };
                        self.expect(&TokenKind::RParen)?;
                        items.push(SelectItem::Expr { expr, alias });
                    }
                    // Bare aggregate without parens, e.g. `COUNT(?x) as ?c`
                    // (Virtuoso extension used in the paper's naive queries).
                    TokenKind::Word(w)
                        if matches!(
                            w.as_str(),
                            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "SAMPLE"
                        ) =>
                    {
                        let expr = self.parse_primary()?;
                        self.expect_word("AS")?;
                        let alias = match self.bump() {
                            TokenKind::Var(v) => v,
                            other => {
                                return Err(self.err(format!("expected variable, got {other:?}")))
                            }
                        };
                        items.push(SelectItem::Expr { expr, alias });
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.err("empty SELECT clause"));
            }
            Projection::Items(items)
        };

        let mut from = Vec::new();
        while self.peek().is_word("FROM") {
            if !top_level {
                return Err(self.err("FROM is only allowed at the top level"));
            }
            self.bump();
            // FROM NAMED treated like FROM.
            self.eat_word("NAMED");
            match self.bump() {
                TokenKind::IriRef(i) => from.push(i),
                TokenKind::PName(p, l) => from.push(self.resolve_pname(&p, &l)?),
                other => return Err(self.err(format!("expected graph IRI, found {other:?}"))),
            }
        }

        self.eat_word("WHERE");
        let pattern = self.parse_ggp()?;

        let mut group_by = Vec::new();
        if self.peek().is_word("GROUP") {
            self.bump();
            self.expect_word("BY")?;
            while let TokenKind::Var(v) = self.peek().clone() {
                self.bump();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY requires at least one variable"));
            }
        }

        let mut having = Vec::new();
        while self.peek().is_word("HAVING") {
            self.bump();
            self.expect(&TokenKind::LParen)?;
            having.push(self.parse_expr()?);
            self.expect(&TokenKind::RParen)?;
        }

        let mut order_by = Vec::new();
        if self.peek().is_word("ORDER") {
            self.bump();
            self.expect_word("BY")?;
            loop {
                let (ascending, need_paren) = if self.eat_word("ASC") {
                    (true, true)
                } else if self.eat_word("DESC") {
                    (false, true)
                } else {
                    (true, false)
                };
                if need_paren {
                    self.expect(&TokenKind::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    order_by.push(OrderKey { expr, ascending });
                } else if let TokenKind::Var(v) = self.peek().clone() {
                    self.bump();
                    order_by.push(OrderKey {
                        expr: Expr::Var(v),
                        ascending,
                    });
                } else {
                    break;
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY requires at least one key"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.peek().is_word("LIMIT") {
                self.bump();
                match self.bump() {
                    TokenKind::Integer(n) if n >= 0 => limit = Some(n as usize),
                    other => return Err(self.err(format!("bad LIMIT: {other:?}"))),
                }
            } else if self.peek().is_word("OFFSET") {
                self.bump();
                match self.bump() {
                    TokenKind::Integer(n) if n >= 0 => offset = Some(n as usize),
                    other => return Err(self.err(format!("bad OFFSET: {other:?}"))),
                }
            } else {
                break;
            }
        }

        Ok(SelectQuery {
            distinct,
            projection,
            from,
            pattern,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_ggp(&mut self) -> Result<GroupGraphPattern> {
        self.expect(&TokenKind::LBrace)?;
        let mut elems = Vec::new();
        loop {
            // Stray dots between elements are permitted.
            while matches!(self.peek(), TokenKind::Dot) {
                self.bump();
            }
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.bump();
                    return Ok(GroupGraphPattern { elems });
                }
                TokenKind::Word(w) if w == "SELECT" => {
                    let q = self.parse_select_query(false)?;
                    elems.push(PatternElem::SubSelect(Box::new(q)));
                }
                TokenKind::LBrace => {
                    // Group or UNION chain.
                    let first = self.parse_ggp()?;
                    if self.peek().is_word("UNION") {
                        let mut branches = vec![first];
                        while self.eat_word("UNION") {
                            branches.push(self.parse_ggp()?);
                        }
                        elems.push(PatternElem::Union(branches));
                    } else if first.elems.len() == 1
                        && matches!(first.elems[0], PatternElem::SubSelect(_))
                    {
                        // `{ SELECT ... }` is a subquery, not a group.
                        elems.push(first.elems.into_iter().next().expect("one elem"));
                    } else {
                        elems.push(PatternElem::Group(first));
                    }
                }
                TokenKind::Word(w) if w == "FILTER" => {
                    self.bump();
                    let expr = if matches!(self.peek(), TokenKind::LParen) {
                        self.bump();
                        let e = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        e
                    } else {
                        // FILTER regex(...) / FILTER isIRI(...) forms.
                        self.parse_primary()?
                    };
                    elems.push(PatternElem::Filter(expr));
                }
                TokenKind::Word(w) if w == "OPTIONAL" => {
                    self.bump();
                    let inner = self.parse_ggp()?;
                    elems.push(PatternElem::Optional(inner));
                }
                TokenKind::Word(w) if w == "GRAPH" => {
                    self.bump();
                    let uri = match self.bump() {
                        TokenKind::IriRef(i) => i,
                        TokenKind::PName(p, l) => self.resolve_pname(&p, &l)?,
                        TokenKind::Var(_) => {
                            return Err(self.err("GRAPH variables are not supported"))
                        }
                        other => return Err(self.err(format!("bad GRAPH target: {other:?}"))),
                    };
                    let inner = self.parse_ggp()?;
                    elems.push(PatternElem::Graph(uri, inner));
                }
                TokenKind::Word(w) if w == "BIND" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect_word("AS")?;
                    let var = match self.bump() {
                        TokenKind::Var(v) => v,
                        other => return Err(self.err(format!("expected variable: {other:?}"))),
                    };
                    self.expect(&TokenKind::RParen)?;
                    elems.push(PatternElem::Bind(expr, var));
                }
                TokenKind::Word(w) if w == "VALUES" || w == "MINUS" || w == "SERVICE" => {
                    return Err(self.err(format!("{w} is not supported")));
                }
                _ => {
                    // Triples block.
                    self.parse_triples_block(&mut elems)?;
                }
            }
        }
    }

    fn parse_triples_block(&mut self, elems: &mut Vec<PatternElem>) -> Result<()> {
        let subject = self.parse_pattern_term(false)?;
        loop {
            // Predicate-object list for this subject.
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_pattern_term(true)?;
                elems.push(PatternElem::Triple(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                )));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            if matches!(self.peek(), TokenKind::Semicolon) {
                self.bump();
                // Trailing ';' before '.' or '}' is legal.
                if matches!(self.peek(), TokenKind::Dot | TokenKind::RBrace) {
                    break;
                }
            } else {
                break;
            }
        }
        // Optional terminating dot is consumed by the caller's loop.
        Ok(())
    }

    fn parse_predicate(&mut self) -> Result<PatternTerm> {
        match self.peek().clone() {
            TokenKind::A => {
                self.bump();
                Ok(PatternTerm::Const(Term::iri(rdf_model::vocab::rdf::TYPE)))
            }
            _ => self.parse_pattern_term(false),
        }
    }

    fn parse_pattern_term(&mut self, allow_literal: bool) -> Result<PatternTerm> {
        match self.bump() {
            TokenKind::Var(v) => Ok(PatternTerm::Var(v)),
            TokenKind::IriRef(i) => Ok(PatternTerm::Const(Term::iri(i))),
            TokenKind::PName(p, l) => {
                Ok(PatternTerm::Const(Term::iri(self.resolve_pname(&p, &l)?)))
            }
            TokenKind::BlankLabel(b) => Ok(PatternTerm::Const(Term::blank(b))),
            TokenKind::String(s) if allow_literal => {
                Ok(PatternTerm::Const(self.finish_literal(s)?))
            }
            TokenKind::Integer(n) if allow_literal => Ok(PatternTerm::Const(Term::integer(n))),
            TokenKind::Decimal(d) if allow_literal => {
                Ok(PatternTerm::Const(Term::Literal(Literal::double(d))))
            }
            TokenKind::Word(w) if allow_literal && w == "TRUE" => {
                Ok(PatternTerm::Const(Term::Literal(Literal::boolean(true))))
            }
            TokenKind::Word(w) if allow_literal && w == "FALSE" => {
                Ok(PatternTerm::Const(Term::Literal(Literal::boolean(false))))
            }
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    /// After a string token, apply an attached language tag or `^^datatype`.
    fn finish_literal(&mut self, body: String) -> Result<Term> {
        match self.peek().clone() {
            TokenKind::LangTag(lang) => {
                self.bump();
                Ok(Term::Literal(Literal::lang_string(body, lang)))
            }
            TokenKind::HatHat => {
                self.bump();
                let dt = match self.bump() {
                    TokenKind::IriRef(i) => i,
                    TokenKind::PName(p, l) => self.resolve_pname(&p, &l)?,
                    other => return Err(self.err(format!("expected datatype, got {other:?}"))),
                };
                Ok(Term::Literal(Literal::typed(body, dt)))
            }
            _ => Ok(Term::string(body)),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), TokenKind::OrOr) {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_relational()?;
        while matches!(self.peek(), TokenKind::AndAnd) {
            self.bump();
            let right = self.parse_relational()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(CmpOp::Eq),
            TokenKind::Neq => Some(CmpOp::Neq),
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        if self.peek().is_word("IN") {
            self.bump();
            let list = self.parse_expr_list()?;
            return Ok(Expr::In {
                expr: Box::new(left),
                list,
                negated: false,
            });
        }
        if self.peek().is_word("NOT") && self.peek2().is_word("IN") {
            self.bump();
            self.bump();
            let list = self.parse_expr_list()?;
            return Ok(Expr::In {
                expr: Box::new(left),
                list,
                negated: true,
            });
        }
        Ok(left)
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut list = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                list.push(self.parse_expr()?);
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(list)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            TokenKind::Plus => {
                self.bump();
                self.parse_unary()
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Var(v) => Ok(Expr::Var(v)),
            TokenKind::Integer(n) => Ok(Expr::Const(Term::integer(n))),
            TokenKind::Decimal(d) => Ok(Expr::Const(Term::Literal(Literal::double(d)))),
            TokenKind::String(s) => Ok(Expr::Const(self.finish_literal(s)?)),
            TokenKind::IriRef(i) => self.maybe_cast_call(i),
            TokenKind::PName(p, l) => {
                let iri = self.resolve_pname(&p, &l)?;
                self.maybe_cast_call(iri)
            }
            TokenKind::Word(w) => self.parse_word_primary(&w),
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }

    /// An IRI in expression position: either a constant or, when followed by
    /// `(`, a datatype-cast call like `xsd:dateTime(?d)`.
    fn maybe_cast_call(&mut self, iri: String) -> Result<Expr> {
        if matches!(self.peek(), TokenKind::LParen) {
            let args = self.parse_expr_list()?;
            Ok(Expr::Call(Func::Cast(iri), args))
        } else {
            Ok(Expr::Const(Term::iri(iri)))
        }
    }

    fn parse_word_primary(&mut self, word: &str) -> Result<Expr> {
        match word {
            "TRUE" => return Ok(Expr::Const(Term::Literal(Literal::boolean(true)))),
            "FALSE" => return Ok(Expr::Const(Term::Literal(Literal::boolean(false)))),
            _ => {}
        }
        if let Some(op) = match word {
            "COUNT" => Some(AggOp::Count),
            "SUM" => Some(AggOp::Sum),
            "AVG" => Some(AggOp::Avg),
            "MIN" => Some(AggOp::Min),
            "MAX" => Some(AggOp::Max),
            "SAMPLE" => Some(AggOp::Sample),
            _ => None,
        } {
            self.expect(&TokenKind::LParen)?;
            let distinct = self.eat_word("DISTINCT");
            let expr = if matches!(self.peek(), TokenKind::Star) {
                self.bump();
                None
            } else {
                Some(Box::new(self.parse_expr()?))
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Aggregate { op, distinct, expr });
        }
        let func = match word {
            "STR" => Func::Str,
            "LANG" => Func::Lang,
            "DATATYPE" => Func::Datatype,
            "BOUND" => Func::Bound,
            "ISIRI" | "ISURI" => Func::IsIri,
            "ISLITERAL" => Func::IsLiteral,
            "ISBLANK" => Func::IsBlank,
            "REGEX" => Func::Regex,
            "YEAR" => Func::Year,
            "MONTH" => Func::Month,
            "DAY" => Func::Day,
            other => return Err(self.err(format!("unknown function {other}"))),
        };
        let args = self.parse_expr_list()?;
        Ok(Expr::Call(func, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://x/T> . }").unwrap();
        assert_eq!(q.projected_vars(), vec!["x"]);
        assert_eq!(q.pattern.elems.len(), 1);
        match &q.pattern.elems[0] {
            PatternElem::Triple(t) => {
                assert_eq!(t.subject, PatternTerm::Var("x".into()));
                assert_eq!(
                    t.predicate,
                    PatternTerm::Const(Term::iri(rdf_model::vocab::rdf::TYPE))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prefixes_resolved() {
        let q = parse_query(
            "PREFIX dbpp: <http://dbpedia.org/property/>\n\
             SELECT * WHERE { ?movie dbpp:starring ?actor }",
        )
        .unwrap();
        match &q.pattern.elems[0] {
            PatternElem::Triple(t) => assert_eq!(
                t.predicate,
                PatternTerm::Const(Term::iri("http://dbpedia.org/property/starring"))
            ),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn semicolon_and_comma_abbreviations() {
        let q = parse_query(
            "SELECT * WHERE { ?a <http://p> ?b ; <http://q> ?c , ?d . ?e <http://r> ?f }",
        )
        .unwrap();
        let triples: Vec<_> = q
            .pattern
            .elems
            .iter()
            .filter(|e| matches!(e, PatternElem::Triple(_)))
            .collect();
        assert_eq!(triples.len(), 4);
    }

    #[test]
    fn filter_having_group() {
        let q = parse_query(
            "SELECT DISTINCT ?actor (COUNT(DISTINCT ?movie) AS ?movie_count) \
             WHERE { ?movie <http://p/starring> ?actor . \
                     FILTER ( ?c = <http://r/USA> ) } \
             GROUP BY ?actor \
             HAVING ( COUNT(DISTINCT ?movie) >= 50 )",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.group_by, vec!["actor"]);
        assert_eq!(q.having.len(), 1);
        assert!(q.having[0].has_aggregate());
        assert!(q.is_aggregated());
    }

    #[test]
    fn optional_union_subquery() {
        let q = parse_query(
            "SELECT * WHERE { \
               { SELECT ?a WHERE { ?a <http://p> ?b } } \
               OPTIONAL { ?a <http://q> ?c } \
               { ?a <http://r> ?d } UNION { ?a <http://s> ?e } \
             }",
        )
        .unwrap();
        assert_eq!(q.pattern.elems.len(), 3);
        assert!(matches!(q.pattern.elems[0], PatternElem::SubSelect(_)));
        assert!(matches!(q.pattern.elems[1], PatternElem::Optional(_)));
        assert!(matches!(q.pattern.elems[2], PatternElem::Union(ref b) if b.len() == 2));
    }

    #[test]
    fn from_and_modifiers() {
        let q = parse_query(
            "SELECT ?x FROM <http://dbpedia.org> WHERE { ?x <http://p> ?y } \
             ORDER BY DESC(?x) LIMIT 10 OFFSET 20",
        )
        .unwrap();
        assert_eq!(q.from, vec!["http://dbpedia.org"]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(20));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].ascending);
    }

    #[test]
    fn filter_builtin_without_parens() {
        let q = parse_query("SELECT * WHERE { ?s ?p ?c FILTER regex(str(?c), \"USA\") }").unwrap();
        let filter = q
            .pattern
            .elems
            .iter()
            .find_map(|e| match e {
                PatternElem::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert!(matches!(filter, Expr::Call(Func::Regex, _)));
    }

    #[test]
    fn in_expression() {
        let q = parse_query(
            "PREFIX c: <http://conf/>\n\
             SELECT * WHERE { ?p <http://series> ?conf \
             FILTER ( ?conf IN (c:vldb, c:sigmod) ) }",
        )
        .unwrap();
        let filter = q
            .pattern
            .elems
            .iter()
            .find_map(|e| match e {
                PatternElem::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert!(matches!(filter, Expr::In { negated: false, list, .. } if list.len() == 2));
    }

    #[test]
    fn cast_call() {
        let q = parse_query(
            "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             SELECT * WHERE { ?p <http://d> ?date \
             FILTER ( year(xsd:dateTime(?date)) >= 2005 ) }",
        )
        .unwrap();
        let filter = q
            .pattern
            .elems
            .iter()
            .find_map(|e| match e {
                PatternElem::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        // year(cast(?date)) >= 2005
        match filter {
            Expr::Cmp(CmpOp::Ge, lhs, _) => match lhs.as_ref() {
                Expr::Call(Func::Year, args) => {
                    assert!(matches!(&args[0], Expr::Call(Func::Cast(dt), _)
                        if dt == rdf_model::vocab::xsd::DATE_TIME));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn graph_clause() {
        let q = parse_query("SELECT * WHERE { GRAPH <http://yago> { ?a <http://p> ?b } }").unwrap();
        assert!(matches!(
            &q.pattern.elems[0],
            PatternElem::Graph(uri, _) if uri == "http://yago"
        ));
    }

    #[test]
    fn nested_unions_three_way() {
        let q = parse_query(
            "SELECT * WHERE { { ?a <http://p> ?b } UNION { ?a <http://q> ?b } UNION { ?a <http://r> ?b } }",
        )
        .unwrap();
        assert!(matches!(&q.pattern.elems[0], PatternElem::Union(b) if b.len() == 3));
    }

    #[test]
    fn errors_reported() {
        assert!(parse_query("SELECT WHERE { }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://p> }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x nope:y ?z }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://p> ?y } VALUES ?x {}").is_err());
    }

    #[test]
    fn select_star_scope() {
        let q = parse_query(
            "SELECT * WHERE { ?movie <http://p> ?actor OPTIONAL { ?actor <http://q> ?award } }",
        )
        .unwrap();
        assert_eq!(q.projected_vars(), vec!["movie", "actor", "award"]);
    }
}
