//! The evaluator's term pool: the dataset's global id space plus a
//! query-local overflow for computed values.
//!
//! The id-native evaluator keeps every binding as a [`TermId`]. Stored terms
//! already have global ids in the dataset interner; expression evaluation
//! (`BIND`, aggregates) can produce *new* terms (e.g. `?x + 1`). A
//! [`TermPool`] layers a query-local, append-only overflow interner on top
//! of the read-only dataset interner so computed terms get ids too — while
//! preserving the invariant that two ids are equal iff their terms are equal
//! (a computed term equal to a stored term resolves to the stored id).

use std::collections::HashMap;
use std::sync::Arc;

use rdf_model::{Interner, Term, TermId};

/// Dataset interner + query-local overflow for computed terms.
///
/// Like [`Interner`], each overflow term is stored once behind an
/// `Arc<Term>` shared by the id→term table and the term→id map.
#[derive(Debug)]
pub struct TermPool<'a> {
    base: &'a Interner,
    base_len: usize,
    extra: Vec<Arc<Term>>,
    extra_ids: HashMap<Arc<Term>, TermId>,
}

impl<'a> TermPool<'a> {
    /// Pool over a dataset interner.
    pub fn new(base: &'a Interner) -> Self {
        TermPool {
            base,
            base_len: base.len(),
            extra: Vec::new(),
            extra_ids: HashMap::new(),
        }
    }

    /// Resolve any id this pool has handed out.
    ///
    /// # Panics
    /// Panics if the id came from neither the base interner nor this pool.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &Term {
        if id.index() < self.base_len {
            self.base.resolve(id)
        } else {
            self.extra[id.index() - self.base_len].as_ref()
        }
    }

    /// Id for a term, interning into the overflow if it is neither stored in
    /// the dataset nor already overflowed.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(id) = self.base.get(&term) {
            return id;
        }
        if let Some(&id) = self.extra_ids.get(&term) {
            return id;
        }
        let id = TermId(
            u32::try_from(self.base_len + self.extra.len())
                .expect("term pool overflow: more than 2^32 terms"),
        );
        let shared = Arc::new(term);
        self.extra.push(Arc::clone(&shared));
        self.extra_ids.insert(shared, id);
        id
    }

    /// Id for a term without interning (`None` if unseen).
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.base
            .get(term)
            .or_else(|| self.extra_ids.get(term).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_term_equal_to_stored_reuses_stored_id() {
        let mut base = Interner::new();
        let stored = base.intern(Term::integer(42));
        let mut pool = TermPool::new(&base);
        assert_eq!(pool.intern(Term::integer(42)), stored);
        let fresh = pool.intern(Term::integer(43));
        assert_ne!(fresh, stored);
        assert_eq!(pool.resolve(fresh), &Term::integer(43));
        assert_eq!(pool.resolve(stored), &Term::integer(42));
        // Idempotent on the overflow side too.
        assert_eq!(pool.intern(Term::integer(43)), fresh);
        assert_eq!(pool.lookup(&Term::integer(43)), Some(fresh));
        assert_eq!(pool.lookup(&Term::integer(44)), None);
    }
}
