//! Statistics-driven plan optimization.
//!
//! The optimizer reorders the triple patterns inside each basic graph
//! pattern greedily by estimated cardinality, propagating which variables
//! are bound by earlier patterns (index-nested-loop order). This mirrors
//! what production RDF engines do with flat queries — and what they *cannot*
//! do across subquery boundaries, which is why the paper's naive
//! one-subquery-per-operator generation is slow.

use std::collections::HashSet;

use rdf_model::{Dataset, GraphStats, TermId};

use crate::algebra::{GraphRef, Plan};
use crate::ast::{PatternTerm, TriplePattern};

/// Placeholder id used to mark "this position will be bound at runtime" for
/// cardinality estimation (the estimator only checks bound-ness).
const BOUND_MARK: TermId = TermId(0);

/// Reorders BGPs in `plan` using statistics from `dataset`. `default_graphs`
/// names the graphs a [`GraphRef::Default`] BGP matches.
pub struct Optimizer<'a> {
    dataset: &'a Dataset,
    default_graphs: &'a [String],
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer for a dataset.
    pub fn new(dataset: &'a Dataset, default_graphs: &'a [String]) -> Self {
        Optimizer {
            dataset,
            default_graphs,
        }
    }

    /// Optimize a plan in place.
    pub fn optimize(&mut self, plan: &mut Plan) {
        match plan {
            Plan::Bgp { patterns, graph } => {
                let graph = graph.clone();
                self.reorder_bgp(patterns, &graph);
            }
            Plan::Join(a, b) => {
                self.optimize(a);
                self.optimize(b);
            }
            Plan::LeftJoin(a, b) => {
                self.optimize(a);
                self.optimize(b);
            }
            Plan::Union(a, b) => {
                self.optimize(a);
                self.optimize(b);
            }
            Plan::Filter(_, p)
            | Plan::Extend(_, _, p)
            | Plan::Project(_, p)
            | Plan::Distinct(p)
            | Plan::OrderBy(_, p) => self.optimize(p),
            Plan::Group { input, .. } => self.optimize(input),
            Plan::TopK { input, .. } => self.optimize(input),
            Plan::Slice {
                limit,
                offset,
                input,
            } => {
                if let Some(l) = limit {
                    fuse_order_by_limit(input, l.saturating_add(*offset));
                }
                self.optimize(input);
            }
            Plan::Unit => {}
        }
    }

    fn graph_uris(&self, graph: &GraphRef) -> Vec<String> {
        match graph {
            GraphRef::Default => self.default_graphs.to_vec(),
            GraphRef::Named(uri) => vec![uri.clone()],
        }
    }

    fn stats_for(&self, uri: &str) -> Option<&GraphStats> {
        // Statistics are computed once when a graph enters the dataset, so
        // per-query optimization never rescans the store.
        self.dataset.graph_stats(uri).map(|s| s.as_ref())
    }

    /// Estimate the matches of one pattern, treating variables in `bound` as
    /// bound positions.
    fn estimate_pattern(
        &mut self,
        pattern: &TriplePattern,
        bound: &HashSet<String>,
        graph: &GraphRef,
    ) -> f64 {
        let uris = self.graph_uris(graph);
        let resolve = |dataset: &Dataset, uri: &str, t: &PatternTerm| -> Option<Option<TermId>> {
            // Outer None = constant not in graph (pattern matches nothing);
            // inner None = unbound position.
            match t {
                PatternTerm::Var(v) => {
                    if bound.contains(v) {
                        Some(Some(BOUND_MARK))
                    } else {
                        Some(None)
                    }
                }
                PatternTerm::Const(term) => dataset.graph(uri).and_then(|g| g.term_id(term)).map(Some),
            }
        };
        let mut total = 0.0;
        for uri in &uris {
            let (s, p, o) = (
                resolve(self.dataset, uri, &pattern.subject),
                resolve(self.dataset, uri, &pattern.predicate),
                resolve(self.dataset, uri, &pattern.object),
            );
            let (Some(s), Some(p), Some(o)) = (s, p, o) else {
                continue; // constant absent from this graph: contributes 0
            };
            if let Some(stats) = self.stats_for(uri) {
                total += stats.estimate(s, p, o);
            }
        }
        total
    }

    /// Greedy reorder: repeatedly pick the cheapest pattern given variables
    /// bound so far, heavily penalizing Cartesian products.
    fn reorder_bgp(&mut self, patterns: &mut Vec<TriplePattern>, graph: &GraphRef) {
        if patterns.len() <= 1 {
            return;
        }
        let mut remaining: Vec<TriplePattern> = std::mem::take(patterns);
        let mut bound: HashSet<String> = HashSet::new();
        let mut ordered = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best_idx = 0;
            let mut best_cost = f64::INFINITY;
            for (i, pat) in remaining.iter().enumerate() {
                let mut cost = self.estimate_pattern(pat, &bound, graph);
                let connected =
                    bound.is_empty() || pat.variables().any(|v| bound.contains(v));
                if !connected {
                    // Disconnected pattern → Cartesian product. Defer.
                    cost = cost * 1e6 + 1e6;
                }
                if cost < best_cost {
                    best_cost = cost;
                    best_idx = i;
                }
            }
            let chosen = remaining.swap_remove(best_idx);
            for v in chosen.variables() {
                bound.insert(v.to_string());
            }
            ordered.push(chosen);
        }
        *patterns = ordered;
    }
}

/// Fuse `Slice { limit } ∘ [Project…] ∘ OrderBy` into a bounded
/// [`Plan::TopK`] with `k = limit + offset`: only the first `k` rows of the
/// sort order are ever observable through the slice, so the evaluator can
/// select top-k instead of fully sorting. The rewrite looks through
/// `Project` (order- and cardinality-preserving) but deliberately **not**
/// through `Distinct`, which must deduplicate *before* the cut.
fn fuse_order_by_limit(node: &mut Plan, k: usize) {
    match node {
        Plan::Project(_, inner) => fuse_order_by_limit(inner, k),
        Plan::OrderBy(..) => {
            // Take ownership of the OrderBy to rebuild it as TopK.
            if let Plan::OrderBy(keys, input) = std::mem::replace(node, Plan::Unit) {
                *node = Plan::TopK { keys, k, input };
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(s.to_string())
    }

    fn build_dataset() -> Dataset {
        let mut g = Graph::new();
        // Common predicate: 1000 label triples; rare predicate: 2 award triples.
        for i in 0..1000 {
            g.insert(&Triple::new(
                iri(&format!("http://x/e{i}")),
                iri("http://x/label"),
                Term::string(format!("entity {i}")),
            ));
        }
        for i in 0..2 {
            g.insert(&Triple::new(
                iri(&format!("http://x/e{i}")),
                iri("http://x/award"),
                iri("http://x/oscar"),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        ds
    }

    fn var(v: &str) -> PatternTerm {
        PatternTerm::Var(v.to_string())
    }

    fn konst(s: &str) -> PatternTerm {
        PatternTerm::Const(iri(s))
    }

    #[test]
    fn selective_pattern_moves_first() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("e"), konst("http://x/label"), var("l")),
            TriplePattern::new(var("e"), konst("http://x/award"), var("a")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        // The rare award pattern should be evaluated first.
        assert_eq!(patterns[0].predicate, konst("http://x/award"));
    }

    #[test]
    fn disconnected_patterns_deferred() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("x"), konst("http://x/label"), var("l")),
            // Unrelated to ?x/?l; even though award is rarer, keeping the
            // join connected matters more once the first pick is made.
            TriplePattern::new(var("y"), konst("http://x/award"), var("a")),
            TriplePattern::new(var("x"), konst("http://x/award"), var("a2")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        // The two rare award patterns come first; the big label scan is
        // deferred to last, where it joins on an already-bound ?x.
        assert_eq!(
            patterns[2].predicate,
            konst("http://x/label"),
            "order was {patterns:?}"
        );
    }

    #[test]
    fn slice_over_order_by_fuses_to_top_k() {
        use crate::ast::{Expr, OrderKey};
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let bgp = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l"),
            )],
            graph: GraphRef::Default,
        };
        let keys = vec![OrderKey {
            expr: Expr::Var("l".into()),
            ascending: true,
        }];
        // Slice(limit 2, offset 1) ∘ Project ∘ OrderBy → TopK with k = 3.
        let mut plan = Plan::Slice {
            limit: Some(2),
            offset: 1,
            input: Box::new(Plan::Project(
                vec!["l".into()],
                Box::new(Plan::OrderBy(keys.clone(), Box::new(bgp.clone()))),
            )),
        };
        opt.optimize(&mut plan);
        let Plan::Slice { input, .. } = &plan else {
            panic!("slice survives: {plan:?}")
        };
        let Plan::Project(_, inner) = &**input else {
            panic!("project survives: {input:?}")
        };
        assert!(
            matches!(&**inner, Plan::TopK { k: 3, .. }),
            "expected TopK, got {inner:?}"
        );

        // Distinct between Slice and OrderBy blocks the fusion: the cut
        // must apply to deduplicated rows.
        let mut plan = Plan::Slice {
            limit: Some(2),
            offset: 0,
            input: Box::new(Plan::Distinct(Box::new(Plan::OrderBy(
                keys,
                Box::new(bgp),
            )))),
        };
        opt.optimize(&mut plan);
        let Plan::Slice { input, .. } = &plan else {
            panic!("slice survives: {plan:?}")
        };
        assert!(
            matches!(&**input, Plan::Distinct(inner) if matches!(&**inner, Plan::OrderBy(..))),
            "distinct must not fuse: {input:?}"
        );
    }

    #[test]
    fn absent_constant_estimates_zero_and_goes_first() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("e"), konst("http://x/label"), var("l")),
            TriplePattern::new(var("e"), konst("http://x/missing"), var("m")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        assert_eq!(patterns[0].predicate, konst("http://x/missing"));
    }
}
