//! Statistics-driven plan optimization.
//!
//! Three passes run over the translated plan, in order:
//!
//! 1. **BGP reordering** permutes the triple patterns inside each basic
//!    graph pattern greedily by estimated cardinality, propagating which
//!    variables are bound by earlier patterns (index-nested-loop order),
//!    and fuses `Slice ∘ OrderBy` into bounded [`Plan::TopK`]. This mirrors
//!    what production RDF engines do with flat queries — and what they
//!    *cannot* do across subquery boundaries, which is why the paper's
//!    naive one-subquery-per-operator generation is slow.
//! 2. **FILTER pushdown** splits conjunctive filters and sinks
//!    single-variable conjuncts into the BGP that binds their variable
//!    ([`crate::algebra::PushedFilter`]), through joins, the *left* side of
//!    left joins, other filters, and non-shadowing extends. Rows failing a
//!    pushed predicate die inside the BGP extension loop, before later
//!    patterns scan for them.
//! 3. **Interesting-order tracking + order-aware rewrites** computes,
//!    bottom-up, the *full* variable sequence each node's output is sorted
//!    by (ascending global id order — see [`Optimizer::bgp_order`] for
//!    where order originates) and spends it four ways:
//!
//!    - [`Plan::Join`] → [`Plan::MergeJoin`] when both inputs arrive
//!      sorted on the same leading shared variable;
//!    - [`Plan::LeftJoin`] → [`Plan::MergeLeftJoin`] under the same
//!      condition (the merge emits unmatched left rows in place, exactly
//!      like the hash left join);
//!    - [`Plan::Distinct`] → [`Plan::SortedDistinct`] annotated with the
//!      input's order sequence, so the evaluator can deduplicate by run
//!      detection when the sequence covers every output column;
//!    - [`Plan::Group`] gets its `sorted_on` field filled when the
//!      grouping keys are exactly a *prefix* of the input order (in any
//!      key order — prefix equality is set-wise), so grouping degenerates
//!      to run detection. This is where secondary sort orders pay off:
//!      a BGP sorted on `[?a, ?b]` serves `GROUP BY ?a` and
//!      `DISTINCT ?a ?b` alike.
//!
//! Passes 2 and 3 are pure physical rewrites: results are identical with
//! them on or off (property-tested), only the work done changes. Every
//! order claim is re-verified at run time by the columnar evaluator (one
//! linear pass) with a hash fallback, so this analysis only has to be
//! precise, not paranoid.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rdf_model::{Dataset, GraphStats, TermId};

use crate::algebra::{GraphRef, Plan, PushedFilter};
use crate::ast::{Expr, PatternTerm, TriplePattern};
use crate::expr::single_filter_var;

/// Placeholder id used to mark "this position will be bound at runtime" for
/// cardinality estimation (the estimator only checks bound-ness).
const BOUND_MARK: TermId = TermId(0);

/// Reorders BGPs in `plan` using statistics from `dataset`. `default_graphs`
/// names the graphs a [`GraphRef::Default`] BGP matches.
pub struct Optimizer<'a> {
    dataset: &'a Dataset,
    default_graphs: &'a [String],
    filter_pushdown: bool,
    merge_joins: bool,
    merge_left_joins: bool,
    sorted_distinct: bool,
    sorted_group_by: bool,
    /// Per-query cache of graph statistics handles (the dataset's accessor
    /// is generation-checked and lock-guarded; fetch each graph's snapshot
    /// once per optimization).
    stats_cache: HashMap<String, Option<Arc<GraphStats>>>,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer for a dataset (all rewrite passes enabled).
    pub fn new(dataset: &'a Dataset, default_graphs: &'a [String]) -> Self {
        Optimizer {
            dataset,
            default_graphs,
            filter_pushdown: true,
            merge_joins: true,
            merge_left_joins: true,
            sorted_distinct: true,
            sorted_group_by: true,
            stats_cache: HashMap::new(),
        }
    }

    /// Enable or disable the FILTER-pushdown pass.
    pub fn with_filter_pushdown(mut self, on: bool) -> Self {
        self.filter_pushdown = on;
        self
    }

    /// Enable or disable the inner-join merge rewrite.
    pub fn with_merge_joins(mut self, on: bool) -> Self {
        self.merge_joins = on;
        self
    }

    /// Enable or disable the left-join merge rewrite.
    pub fn with_merge_left_joins(mut self, on: bool) -> Self {
        self.merge_left_joins = on;
        self
    }

    /// Enable or disable the sorted-DISTINCT rewrite.
    pub fn with_sorted_distinct(mut self, on: bool) -> Self {
        self.sorted_distinct = on;
        self
    }

    /// Enable or disable the sorted-GROUP BY rewrite.
    pub fn with_sorted_group_by(mut self, on: bool) -> Self {
        self.sorted_group_by = on;
        self
    }

    /// Optimize a plan in place (all configured passes).
    pub fn optimize(&mut self, plan: &mut Plan) {
        self.reorder(plan);
        if self.filter_pushdown {
            push_filters(plan);
        }
        if self.merge_joins || self.merge_left_joins || self.sorted_distinct || self.sorted_group_by
        {
            self.plan_order_rewrites(plan);
        }
    }

    /// Pass 1: statistics-driven BGP reordering + TopK fusion.
    fn reorder(&mut self, plan: &mut Plan) {
        match plan {
            Plan::Bgp {
                patterns, graph, ..
            } => {
                let graph = graph.clone();
                self.reorder_bgp(patterns, &graph);
            }
            Plan::Join(a, b) | Plan::LeftJoin(a, b) | Plan::Union(a, b) => {
                self.reorder(a);
                self.reorder(b);
            }
            Plan::MergeJoin { left, right, .. } | Plan::MergeLeftJoin { left, right, .. } => {
                self.reorder(left);
                self.reorder(right);
            }
            Plan::Filter(_, p)
            | Plan::Extend(_, _, p)
            | Plan::Project(_, p)
            | Plan::Distinct(p)
            | Plan::SortedDistinct { input: p, .. }
            | Plan::OrderBy(_, p) => self.reorder(p),
            Plan::Group { input, .. } => self.reorder(input),
            Plan::TopK { input, .. } => self.reorder(input),
            Plan::Slice {
                limit,
                offset,
                input,
            } => {
                if let Some(l) = limit {
                    fuse_order_by_limit(input, l.saturating_add(*offset));
                }
                self.reorder(input);
            }
            Plan::Unit => {}
        }
    }

    fn graph_uris(&self, graph: &GraphRef) -> Vec<String> {
        match graph {
            GraphRef::Default => self.default_graphs.to_vec(),
            GraphRef::Named(uri) => vec![uri.clone()],
        }
    }

    /// The graphs a BGP will actually scan, mirroring the evaluators'
    /// resolution: an empty `FROM` list means the whole dataset.
    fn effective_graphs(&self, graph: &GraphRef) -> Vec<String> {
        match graph {
            GraphRef::Default if self.default_graphs.is_empty() => {
                self.dataset.graph_uris().map(str::to_string).collect()
            }
            _ => self.graph_uris(graph),
        }
    }

    fn stats_for(&mut self, uri: &str) -> Option<Arc<GraphStats>> {
        if !self.stats_cache.contains_key(uri) {
            let stats = self.dataset.graph_stats(uri);
            self.stats_cache.insert(uri.to_string(), stats);
        }
        self.stats_cache[uri].clone()
    }

    /// Estimate the matches of one pattern, treating variables in `bound` as
    /// bound positions.
    fn estimate_pattern(
        &mut self,
        pattern: &TriplePattern,
        bound: &HashSet<String>,
        graph: &GraphRef,
    ) -> f64 {
        let uris = self.graph_uris(graph);
        let resolve = |dataset: &Dataset, uri: &str, t: &PatternTerm| -> Option<Option<TermId>> {
            // Outer None = constant not in graph (pattern matches nothing);
            // inner None = unbound position.
            match t {
                PatternTerm::Var(v) => {
                    if bound.contains(v) {
                        Some(Some(BOUND_MARK))
                    } else {
                        Some(None)
                    }
                }
                PatternTerm::Const(term) => {
                    dataset.graph(uri).and_then(|g| g.term_id(term)).map(Some)
                }
            }
        };
        let mut total = 0.0;
        for uri in &uris {
            let (s, p, o) = (
                resolve(self.dataset, uri, &pattern.subject),
                resolve(self.dataset, uri, &pattern.predicate),
                resolve(self.dataset, uri, &pattern.object),
            );
            let (Some(s), Some(p), Some(o)) = (s, p, o) else {
                continue; // constant absent from this graph: contributes 0
            };
            if let Some(stats) = self.stats_for(uri) {
                total += stats.estimate(s, p, o);
            }
        }
        total
    }

    /// Pass 3: bottom-up interesting-order tracking; spends the orders on
    /// merge joins (inner and left) and sorted DISTINCT/GROUP BY. Returns
    /// the variable sequence this node's output is sorted by (ascending
    /// global id; `[]` = unknown/unsorted). Every propagated order variable
    /// is always-bound in its node's output (orders originate from
    /// BGP-bound columns and only flow through operators that carry those
    /// columns unchanged); the evaluator re-verifies boundness and
    /// sortedness at run time before committing to any order-based
    /// execution.
    fn plan_order_rewrites(&mut self, plan: &mut Plan) -> Vec<String> {
        match plan {
            Plan::Unit => Vec::new(),
            Plan::Bgp {
                patterns, graph, ..
            } => {
                let graph = graph.clone();
                self.bgp_order(patterns, &graph)
            }
            Plan::Join(a, b) => {
                let left_order = self.plan_order_rewrites(a);
                let right_order = self.plan_order_rewrites(b);
                let mergeable = self.merge_joins
                    && matches!(
                        (left_order.first(), right_order.first()),
                        (Some(l), Some(r)) if l == r
                    );
                if mergeable {
                    let key = left_order[0].clone();
                    // Rebuild the node as a merge join; the boxes move over.
                    if let Plan::Join(left, right) = std::mem::replace(plan, Plan::Unit) {
                        *plan = Plan::MergeJoin { left, right, key };
                    }
                }
                // Both join flavors emit pairs left-major (each left row in
                // input order, its matches in right-row order), so the
                // left input's order survives.
                left_order
            }
            Plan::MergeJoin { left, right, .. } | Plan::MergeLeftJoin { left, right, .. } => {
                let left_order = self.plan_order_rewrites(left);
                self.plan_order_rewrites(right);
                left_order
            }
            Plan::LeftJoin(a, b) => {
                let left_order = self.plan_order_rewrites(a);
                let right_order = self.plan_order_rewrites(b);
                // Left-major emission; unmatched left rows stay in place —
                // which is exactly why the merge variant can preserve
                // OPTIONAL semantics: the merge walks left rows in order
                // and emits the no-match row at the same position the hash
                // join would.
                let mergeable = self.merge_left_joins
                    && matches!(
                        (left_order.first(), right_order.first()),
                        (Some(l), Some(r)) if l == r
                    );
                if mergeable {
                    let key = left_order[0].clone();
                    if let Plan::LeftJoin(left, right) = std::mem::replace(plan, Plan::Unit) {
                        *plan = Plan::MergeLeftJoin { left, right, key };
                    }
                }
                left_order
            }
            Plan::Union(a, b) => {
                self.plan_order_rewrites(a);
                self.plan_order_rewrites(b);
                Vec::new() // concatenation interleaves nothing — but the
                           // boundary between the halves breaks sortedness
            }
            Plan::Filter(_, p) => self.plan_order_rewrites(p),
            Plan::Distinct(p) => {
                let order = self.plan_order_rewrites(p);
                // Dedup keeps first occurrences in input order, so the
                // order survives — and when one is known, the evaluator can
                // dedup by run detection (it checks coverage of the output
                // schema and actual sortedness itself).
                if self.sorted_distinct && !order.is_empty() {
                    if let Plan::Distinct(input) = std::mem::replace(plan, Plan::Unit) {
                        *plan = Plan::SortedDistinct {
                            order: order.clone(),
                            input,
                        };
                    }
                }
                order
            }
            Plan::SortedDistinct { order, input } => {
                // Already rewritten (re-optimization): refresh the claim.
                let fresh = self.plan_order_rewrites(input);
                *order = fresh.clone();
                fresh
            }
            Plan::Extend(var, _, p) => {
                let mut order = self.plan_order_rewrites(p);
                // Rebinding an order variable overwrites the sorted column.
                if let Some(i) = order.iter().position(|v| v == var) {
                    order.truncate(i);
                }
                order
            }
            Plan::Project(vars, p) => {
                let mut order = self.plan_order_rewrites(p);
                // Only the prefix that survives projection stays meaningful.
                if let Some(i) = order.iter().position(|v| !vars.contains(v)) {
                    order.truncate(i);
                }
                order
            }
            Plan::Slice { input, .. } => self.plan_order_rewrites(input),
            Plan::Group {
                keys,
                input,
                sorted_on,
                ..
            } => {
                let input_order = self.plan_order_rewrites(input);
                sorted_on.clear();
                if self.sorted_group_by && !keys.is_empty() {
                    // The keys must be exactly a *prefix* of the input
                    // order, set-wise: rows equal on an order prefix are
                    // adjacent, so run boundaries on the prefix columns are
                    // group boundaries. Key order within the prefix is
                    // irrelevant (equality is symmetric); duplicate keys
                    // (GROUP BY ?a ?a) collapse.
                    let mut distinct_keys: Vec<&String> = Vec::new();
                    for k in keys.iter() {
                        if !distinct_keys.contains(&k) {
                            distinct_keys.push(k);
                        }
                    }
                    let n = distinct_keys.len();
                    if n <= input_order.len()
                        && distinct_keys.iter().all(|k| input_order[..n].contains(k))
                    {
                        *sorted_on = input_order[..n].to_vec();
                    }
                }
                // Groups are emitted in first-occurrence order; over an
                // input sorted on the key prefix that *is* ascending prefix
                // order, so the annotation doubles as the output order.
                // (If the run-time check falls back to hashing, any
                // consumer of this claim re-verifies at run time too.)
                sorted_on.clone()
            }
            // ORDER BY sorts by *term* order, which is not global-id order.
            Plan::OrderBy(_, p) => {
                self.plan_order_rewrites(p);
                Vec::new()
            }
            Plan::TopK { input, .. } => {
                self.plan_order_rewrites(input);
                Vec::new()
            }
        }
    }

    /// The variable sequence a BGP's output is sorted by: the free-variable
    /// order of its *first* pattern's index scan. Subsequent patterns
    /// extend rows in ascending input-row order, so the first scan's order
    /// survives as the output's primary (prefix) order.
    ///
    /// Valid only when the BGP scans a single graph whose local→global id
    /// translation is order-preserving ([`rdf_model::GraphIdMap`]): slabs
    /// deliver triples sorted by *local* id, and a monotone map carries
    /// that to the global ids stored in the output columns. (Delta-resident
    /// triples merge in the same local order, so storage state is
    /// irrelevant.) The evaluator re-verifies sortedness at run time before
    /// committing to a merge, so this analysis only has to be precise, not
    /// paranoid.
    fn bgp_order(&mut self, patterns: &[TriplePattern], graph: &GraphRef) -> Vec<String> {
        let uris = self.effective_graphs(graph);
        let [uri] = uris.as_slice() else {
            return Vec::new(); // multi-graph scans interleave per row
        };
        let order_preserving = self
            .dataset
            .id_map(uri)
            .is_some_and(|map| map.order_preserving());
        if !order_preserving {
            return Vec::new();
        }
        let Some(first) = patterns.first() else {
            return Vec::new();
        };
        // A repeated variable (`?x ?p ?x`) filters the scan; the order
        // claim would still hold but the slot bookkeeping wouldn't, so bail.
        {
            let mut seen: Vec<&str> = Vec::new();
            for v in first.variables() {
                if seen.contains(&v) {
                    return Vec::new();
                }
                seen.push(v);
            }
        }
        // The store itself says which position order its chosen index
        // emits for this bound-ness shape (kept adjacent to
        // `Graph::access_path` and property-tested there, so this cannot
        // silently drift from scan reality).
        let terms = [&first.subject, &first.predicate, &first.object];
        let bound = |t: &PatternTerm| matches!(t, PatternTerm::Const(_));
        rdf_model::Graph::scan_free_order(bound(terms[0]), bound(terms[1]), bound(terms[2]))
            .iter()
            .map(|&pos| {
                terms[pos]
                    .as_var()
                    .expect("free position is a variable")
                    .to_string()
            })
            .collect()
    }

    /// Greedy reorder: repeatedly pick the cheapest pattern given variables
    /// bound so far, heavily penalizing Cartesian products.
    fn reorder_bgp(&mut self, patterns: &mut Vec<TriplePattern>, graph: &GraphRef) {
        if patterns.len() <= 1 {
            return;
        }
        let mut remaining: Vec<TriplePattern> = std::mem::take(patterns);
        let mut bound: HashSet<String> = HashSet::new();
        let mut ordered = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best_idx = 0;
            let mut best_cost = f64::INFINITY;
            for (i, pat) in remaining.iter().enumerate() {
                let mut cost = self.estimate_pattern(pat, &bound, graph);
                let connected = bound.is_empty() || pat.variables().any(|v| bound.contains(v));
                if !connected {
                    // Disconnected pattern → Cartesian product. Defer.
                    cost = cost * 1e6 + 1e6;
                }
                if cost < best_cost {
                    best_cost = cost;
                    best_idx = i;
                }
            }
            let chosen = remaining.swap_remove(best_idx);
            for v in chosen.variables() {
                bound.insert(v.to_string());
            }
            ordered.push(chosen);
        }
        *patterns = ordered;
    }
}

/// Pass 2: split conjunctive FILTERs and sink single-variable conjuncts
/// into the BGP that binds their variable. Conjuncts that find no home (or
/// reference several variables, or contain aggregates) stay in a residual
/// `Filter`; a fully-absorbed filter node disappears.
fn push_filters(plan: &mut Plan) {
    match plan {
        Plan::Join(a, b) | Plan::LeftJoin(a, b) | Plan::Union(a, b) => {
            push_filters(a);
            push_filters(b);
        }
        Plan::MergeJoin { left, right, .. } | Plan::MergeLeftJoin { left, right, .. } => {
            push_filters(left);
            push_filters(right);
        }
        Plan::Extend(_, _, p)
        | Plan::Project(_, p)
        | Plan::Distinct(p)
        | Plan::SortedDistinct { input: p, .. }
        | Plan::OrderBy(_, p) => push_filters(p),
        Plan::Group { input, .. } | Plan::TopK { input, .. } | Plan::Slice { input, .. } => {
            push_filters(input)
        }
        Plan::Bgp { .. } | Plan::Unit => {}
        Plan::Filter(..) => {
            let Plan::Filter(expr, input) = plan else {
                unreachable!()
            };
            push_filters(input);
            let mut conjuncts = Vec::new();
            split_and(expr, &mut conjuncts);
            let total = conjuncts.len();
            let mut residual: Vec<Expr> = Vec::new();
            for conjunct in conjuncts {
                let pushed = single_filter_var(&conjunct)
                    .is_some_and(|var| try_push(input, &var, &conjunct));
                if !pushed {
                    residual.push(conjunct);
                }
            }
            if residual.is_empty() {
                // Every conjunct was absorbed: the filter node dissolves.
                *plan = std::mem::replace(input.as_mut(), Plan::Unit);
            } else if residual.len() < total {
                *expr = rejoin_and(residual);
            }
            // else: nothing moved, leave the expression tree untouched.
        }
    }
}

/// Flatten an `&&` tree into its conjuncts (source order preserved).
fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::And(a, b) => {
            split_and(a, out);
            split_and(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Rebuild a conjunction from its parts (left-leaning, like the parser).
fn rejoin_and(mut parts: Vec<Expr>) -> Expr {
    let first = parts.remove(0);
    parts
        .into_iter()
        .fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e)))
}

/// Sink one single-variable conjunct towards a BGP that binds `var`.
///
/// Descent is restricted to positions where "filter above" and "filter
/// inside" provably coincide: both sides of an inner join (a BGP that
/// mentions `var` binds it in every row, so filtering that side filters the
/// join), the *left* input of a left join (filtering the right side would
/// resurrect rows the filter should have killed as unbound), other filters,
/// and extends that do not rebind `var`. Everything else — unions, slices,
/// grouping, sorting — blocks the descent.
fn try_push(plan: &mut Plan, var: &str, conjunct: &Expr) -> bool {
    match plan {
        Plan::Bgp {
            patterns, filters, ..
        } if patterns.iter().any(|p| p.variables().any(|v| v == var)) => {
            filters.push(PushedFilter {
                var: var.to_string(),
                expr: conjunct.clone(),
            });
            true
        }
        Plan::Bgp { .. } => false,
        Plan::Join(a, b) => try_push(a, var, conjunct) || try_push(b, var, conjunct),
        Plan::MergeJoin { left, right, .. } => {
            try_push(left, var, conjunct) || try_push(right, var, conjunct)
        }
        // Left joins (merge or hash): *left* side only — an absorbed filter
        // on the optional side would resurrect rows it should kill.
        Plan::LeftJoin(a, _) | Plan::MergeLeftJoin { left: a, .. } => try_push(a, var, conjunct),
        Plan::Filter(_, p) => try_push(p, var, conjunct),
        Plan::Extend(bound, _, p) if bound != var => try_push(p, var, conjunct),
        _ => false,
    }
}

/// Fuse `Slice { limit } ∘ [Project…] ∘ OrderBy` into a bounded
/// [`Plan::TopK`] with `k = limit + offset`: only the first `k` rows of the
/// sort order are ever observable through the slice, so the evaluator can
/// select top-k instead of fully sorting. The rewrite looks through
/// `Project` (order- and cardinality-preserving) but deliberately **not**
/// through `Distinct`, which must deduplicate *before* the cut.
fn fuse_order_by_limit(node: &mut Plan, k: usize) {
    match node {
        Plan::Project(_, inner) => fuse_order_by_limit(inner, k),
        Plan::OrderBy(..) => {
            // Take ownership of the OrderBy to rebuild it as TopK.
            if let Plan::OrderBy(keys, input) = std::mem::replace(node, Plan::Unit) {
                *node = Plan::TopK { keys, k, input };
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf_model::{Graph, Term, Triple};

    fn iri(s: &str) -> Term {
        Term::iri(s.to_string())
    }

    fn build_dataset() -> Dataset {
        let mut g = Graph::new();
        // Common predicate: 1000 label triples; rare predicate: 2 award triples.
        for i in 0..1000 {
            g.insert(&Triple::new(
                iri(&format!("http://x/e{i}")),
                iri("http://x/label"),
                Term::string(format!("entity {i}")),
            ));
        }
        for i in 0..2 {
            g.insert(&Triple::new(
                iri(&format!("http://x/e{i}")),
                iri("http://x/award"),
                iri("http://x/oscar"),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://g", g);
        ds
    }

    fn var(v: &str) -> PatternTerm {
        PatternTerm::Var(v.to_string())
    }

    fn konst(s: &str) -> PatternTerm {
        PatternTerm::Const(iri(s))
    }

    #[test]
    fn selective_pattern_moves_first() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("e"), konst("http://x/label"), var("l")),
            TriplePattern::new(var("e"), konst("http://x/award"), var("a")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        // The rare award pattern should be evaluated first.
        assert_eq!(patterns[0].predicate, konst("http://x/award"));
    }

    #[test]
    fn disconnected_patterns_deferred() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("x"), konst("http://x/label"), var("l")),
            // Unrelated to ?x/?l; even though award is rarer, keeping the
            // join connected matters more once the first pick is made.
            TriplePattern::new(var("y"), konst("http://x/award"), var("a")),
            TriplePattern::new(var("x"), konst("http://x/award"), var("a2")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        // The two rare award patterns come first; the big label scan is
        // deferred to last, where it joins on an already-bound ?x.
        assert_eq!(
            patterns[2].predicate,
            konst("http://x/label"),
            "order was {patterns:?}"
        );
    }

    #[test]
    fn slice_over_order_by_fuses_to_top_k() {
        use crate::ast::{Expr, OrderKey};
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let bgp = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let keys = vec![OrderKey {
            expr: Expr::Var("l".into()),
            ascending: true,
        }];
        // Slice(limit 2, offset 1) ∘ Project ∘ OrderBy → TopK with k = 3.
        let mut plan = Plan::Slice {
            limit: Some(2),
            offset: 1,
            input: Box::new(Plan::Project(
                vec!["l".into()],
                Box::new(Plan::OrderBy(keys.clone(), Box::new(bgp.clone()))),
            )),
        };
        opt.optimize(&mut plan);
        let Plan::Slice { input, .. } = &plan else {
            panic!("slice survives: {plan:?}")
        };
        let Plan::Project(_, inner) = &**input else {
            panic!("project survives: {input:?}")
        };
        assert!(
            matches!(&**inner, Plan::TopK { k: 3, .. }),
            "expected TopK, got {inner:?}"
        );

        // Distinct between Slice and OrderBy blocks the fusion: the cut
        // must apply to deduplicated rows.
        let mut plan = Plan::Slice {
            limit: Some(2),
            offset: 0,
            input: Box::new(Plan::Distinct(Box::new(Plan::OrderBy(keys, Box::new(bgp))))),
        };
        opt.optimize(&mut plan);
        let Plan::Slice { input, .. } = &plan else {
            panic!("slice survives: {plan:?}")
        };
        assert!(
            matches!(&**input, Plan::Distinct(inner) if matches!(&**inner, Plan::OrderBy(..))),
            "distinct must not fuse: {input:?}"
        );
    }

    #[test]
    fn conjunctive_filter_splits_and_sinks_into_binding_bgp() {
        use crate::ast::{CmpOp, Expr};
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let bgp = Plan::Bgp {
            patterns: vec![
                TriplePattern::new(var("e"), konst("http://x/label"), var("l")),
                TriplePattern::new(var("e"), konst("http://x/award"), var("a")),
            ],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        // ( ?a = <oscar> && ?l < ?a ): first conjunct is single-var and
        // sinks; the second references two vars and must stay behind.
        let pushable = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(iri("http://x/oscar"))),
        );
        let residual_expr = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Var("l".into())),
            Box::new(Expr::Var("a".into())),
        );
        let mut plan = Plan::Filter(
            Expr::And(Box::new(pushable.clone()), Box::new(residual_expr.clone())),
            Box::new(bgp),
        );
        opt.optimize(&mut plan);
        let Plan::Filter(expr, input) = &plan else {
            panic!("residual filter survives: {plan:?}")
        };
        assert_eq!(expr, &residual_expr);
        let Plan::Bgp { filters, .. } = &**input else {
            panic!("bgp survives: {input:?}")
        };
        assert_eq!(filters.len(), 1);
        assert_eq!(filters[0].var, "a");
        assert_eq!(filters[0].expr, pushable);

        // A fully-absorbed filter node dissolves.
        let mut plan = Plan::Filter(
            pushable.clone(),
            Box::new(Plan::Bgp {
                patterns: vec![TriplePattern::new(
                    var("e"),
                    konst("http://x/award"),
                    var("a"),
                )],
                graph: GraphRef::Default,
                filters: Vec::new(),
            }),
        );
        opt.optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::Bgp { filters, .. } if filters.len() == 1),
            "filter node should dissolve into the BGP: {plan:?}"
        );
    }

    #[test]
    fn filter_does_not_sink_into_left_join_right_side() {
        use crate::ast::{CmpOp, Expr};
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let left = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let right = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/award"),
                var("a"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        // ?a is bound only by the OPTIONAL side: pushing would let
        // unmatched left rows (unbound ?a) survive a filter that must
        // reject them. The conjunct has to stay above the left join.
        let cond = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(iri("http://x/oscar"))),
        );
        let mut plan = Plan::Filter(
            cond.clone(),
            Box::new(Plan::LeftJoin(Box::new(left), Box::new(right))),
        );
        opt.optimize(&mut plan);
        let Plan::Filter(expr, input) = &plan else {
            panic!("filter must stay above the left join: {plan:?}")
        };
        assert_eq!(expr, &cond);
        assert!(matches!(&**input, Plan::LeftJoin(..)));
    }

    #[test]
    fn sorted_star_join_rewrites_to_merge_join() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        // Both sides: (?e <p> <o>) shapes — POS with (p, o) bound scans in
        // subject order, and the single graph's id map is monotone, so both
        // outputs are sorted on ?e.
        let side = |p: &str, o: &str, v: &str| Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst(p),
                PatternTerm::Const(iri(o)),
            )]
            .into_iter()
            .chain(std::iter::once(TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var(v),
            )))
            .collect(),
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let mut plan = Plan::Join(
            Box::new(side("http://x/award", "http://x/oscar", "l1")),
            Box::new(side("http://x/inCountry", "http://x/usa", "l2")),
        );
        let before = plan.clone();
        opt.optimize(&mut plan);
        match &plan {
            Plan::MergeJoin { key, .. } => assert_eq!(key, "e"),
            other => panic!("expected merge join, got {other:?}\nfrom {before:?}"),
        }

        // Leading order vars differ (object-bound vs subject-bound shape):
        // no rewrite.
        let unsorted_side = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l3"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let mut plan = Plan::Join(
            Box::new(side("http://x/award", "http://x/oscar", "l1")),
            Box::new(unsorted_side),
        );
        opt.optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::Join(..)),
            "object-leading order must not merge on ?e: {plan:?}"
        );
    }

    #[test]
    fn sorted_left_join_rewrites_to_merge_left_join() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let side = |p: &str, o: &str| Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst(p),
                PatternTerm::Const(iri(o)),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let mut plan = Plan::LeftJoin(
            Box::new(side("http://x/award", "http://x/oscar")),
            Box::new(side("http://x/inCountry", "http://x/usa")),
        );
        opt.optimize(&mut plan);
        match &plan {
            Plan::MergeLeftJoin { key, .. } => assert_eq!(key, "e"),
            other => panic!("expected merge left join, got {other:?}"),
        }

        // Toggled off: the left join stays a hash join.
        let mut opt = Optimizer::new(&ds, &graphs).with_merge_left_joins(false);
        let mut plan = Plan::LeftJoin(
            Box::new(side("http://x/award", "http://x/oscar")),
            Box::new(side("http://x/inCountry", "http://x/usa")),
        );
        opt.optimize(&mut plan);
        assert!(matches!(&plan, Plan::LeftJoin(..)), "toggle off: {plan:?}");

        // Unsorted right side (subject-bound shape leads with the object
        // variable): no rewrite.
        let mut opt = Optimizer::new(&ds, &graphs);
        let unsorted = Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let mut plan = Plan::LeftJoin(
            Box::new(side("http://x/award", "http://x/oscar")),
            Box::new(unsorted),
        );
        opt.optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::LeftJoin(..)),
            "unsorted side: {plan:?}"
        );
    }

    #[test]
    fn sorted_distinct_and_group_annotations() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        // (?e <label> ?l): predicate-bound POS scan → order [?l, ?e].
        let bgp = || Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("e"),
                konst("http://x/label"),
                var("l"),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };

        // DISTINCT over a sorted input is annotated with the full sequence.
        let mut plan = Plan::Distinct(Box::new(bgp()));
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        match &plan {
            Plan::SortedDistinct { order, .. } => assert_eq!(order, &["l", "e"]),
            other => panic!("expected sorted distinct, got {other:?}"),
        }
        // Toggled off: plain Distinct survives.
        let mut plan = Plan::Distinct(Box::new(bgp()));
        Optimizer::new(&ds, &graphs)
            .with_sorted_distinct(false)
            .optimize(&mut plan);
        assert!(matches!(&plan, Plan::Distinct(..)));

        // GROUP BY the *leading* order var: keys are an order prefix.
        let group = |keys: Vec<&str>| Plan::Group {
            keys: keys.into_iter().map(str::to_string).collect(),
            aggs: Vec::new(),
            input: Box::new(bgp()),
            sorted_on: Vec::new(),
        };
        let mut plan = group(vec!["l"]);
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        match &plan {
            Plan::Group { sorted_on, .. } => assert_eq!(sorted_on, &["l"]),
            other => panic!("{other:?}"),
        }
        // Both order vars, written in *reverse* key order: still a prefix
        // (set-wise), so the annotation carries the order sequence.
        let mut plan = group(vec!["e", "l"]);
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        match &plan {
            Plan::Group { sorted_on, .. } => assert_eq!(sorted_on, &["l", "e"]),
            other => panic!("{other:?}"),
        }
        // GROUP BY the secondary var alone: not a prefix → no annotation.
        let mut plan = group(vec!["e"]);
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        match &plan {
            Plan::Group { sorted_on, .. } => assert!(sorted_on.is_empty(), "{sorted_on:?}"),
            other => panic!("{other:?}"),
        }
        // Toggled off: no annotation even for a perfect prefix.
        let mut plan = group(vec!["l"]);
        Optimizer::new(&ds, &graphs)
            .with_sorted_group_by(false)
            .optimize(&mut plan);
        match &plan {
            Plan::Group { sorted_on, .. } => assert!(sorted_on.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn filter_does_not_sink_into_merge_left_join_right_side() {
        use crate::ast::{CmpOp, Expr};
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let side = |p: &str, o: &str, extra: Option<(&str, &str)>| {
            let mut patterns = vec![TriplePattern::new(
                var("e"),
                konst(p),
                PatternTerm::Const(iri(o)),
            )];
            if let Some((p2, v)) = extra {
                patterns.push(TriplePattern::new(var("e"), konst(p2), var(v)));
            }
            Plan::Bgp {
                patterns,
                graph: GraphRef::Default,
                filters: Vec::new(),
            }
        };
        // ?a is bound only on the OPTIONAL (right) side; the filter must
        // stay above even once the left join is merge-rewritten.
        let cond = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Const(iri("http://x/oscar"))),
        );
        let mut plan = Plan::Filter(
            cond.clone(),
            Box::new(Plan::MergeLeftJoin {
                left: Box::new(side("http://x/award", "http://x/oscar", None)),
                right: Box::new(side(
                    "http://x/inCountry",
                    "http://x/usa",
                    Some(("http://x/award", "a")),
                )),
                key: "e".into(),
            }),
        );
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        let Plan::Filter(expr, input) = &plan else {
            panic!("filter must stay above the merge left join: {plan:?}")
        };
        assert_eq!(expr, &cond);
        assert!(matches!(&**input, Plan::MergeLeftJoin { .. }));
    }

    #[test]
    fn merge_join_requires_order_preserving_id_map() {
        // Two graphs sharing terms: the second graph's map is non-monotone,
        // so its scans are not globally sorted and the rewrite must not
        // fire for BGPs over it.
        let mut g1 = Graph::new();
        g1.insert(&Triple::new(
            iri("http://x/e1"),
            iri("http://x/p"),
            iri("http://x/v1"),
        ));
        g1.insert(&Triple::new(
            iri("http://x/e2"),
            iri("http://x/p"),
            iri("http://x/v2"),
        ));
        let mut g2 = Graph::new();
        // Interns v2 before e1/e2 → local order diverges from global.
        g2.insert(&Triple::new(
            iri("http://x/v2"),
            iri("http://x/q"),
            iri("http://x/e1"),
        ));
        g2.insert(&Triple::new(
            iri("http://x/e1"),
            iri("http://x/q"),
            iri("http://x/e2"),
        ));
        let mut ds = Dataset::new();
        ds.insert_graph("http://a", g1);
        ds.insert_graph("http://b", g2);
        assert!(!ds.id_map("http://b").unwrap().order_preserving());

        let graphs = vec!["http://b".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let side = |o: &str| Plan::Bgp {
            patterns: vec![TriplePattern::new(
                var("s"),
                konst("http://x/q"),
                PatternTerm::Const(iri(o)),
            )],
            graph: GraphRef::Default,
            filters: Vec::new(),
        };
        let mut plan = Plan::Join(Box::new(side("http://x/e1")), Box::new(side("http://x/e2")));
        opt.optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::Join(..)),
            "non-monotone map must block the merge rewrite: {plan:?}"
        );
    }

    #[test]
    fn append_that_breaks_id_order_stops_merge_join_planning() {
        // Regression for the incremental id-map extension: planning merge
        // joins over a graph is only sound while its map is monotone. An
        // append that pulls in a term another graph interned earlier breaks
        // monotonicity; `GraphIdMap::extend_from` must flip the flag so the
        // optimizer stops planning merges (a stale flag would plan them,
        // and the run-time check would silently eat the rewrite forever).
        let mut g = Graph::new();
        for i in 0..3 {
            g.insert(&Triple::new(
                iri(&format!("http://x/e{i}")),
                iri("http://x/p"),
                iri(&format!("http://x/v{i}")),
            ));
        }
        let mut ds = Dataset::new();
        ds.insert_graph("http://a", g);
        // A second graph interns a fresh term the append will reuse.
        let mut other = Graph::new();
        other.insert(&Triple::new(
            iri("http://y/s"),
            iri("http://y/q"),
            iri("http://y/o"),
        ));
        ds.insert_graph("http://b", other);

        let graphs = vec!["http://a".to_string()];
        let side = |o: &str| {
            Plan::Join(
                Box::new(Plan::Bgp {
                    patterns: vec![TriplePattern::new(var("s"), konst("http://x/p"), konst(o))],
                    graph: GraphRef::Default,
                    filters: Vec::new(),
                }),
                Box::new(Plan::Bgp {
                    patterns: vec![TriplePattern::new(
                        var("s"),
                        konst("http://x/p"),
                        konst("http://x/v1"),
                    )],
                    graph: GraphRef::Default,
                    filters: Vec::new(),
                }),
            )
        };

        let mut plan = side("http://x/v0");
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::MergeJoin { .. }),
            "monotone map: merge join planned ({plan:?})"
        );

        // Append a triple whose object is graph B's term: its global id is
        // below A's maximum, so A's scans are no longer globally sorted.
        ds.append_triples(
            "http://a",
            vec![Triple::new(
                iri("http://x/e9"),
                iri("http://x/p"),
                iri("http://y/o"),
            )],
        )
        .unwrap();
        assert!(!ds.id_map("http://a").unwrap().order_preserving());
        let mut plan = side("http://x/v0");
        Optimizer::new(&ds, &graphs).optimize(&mut plan);
        assert!(
            matches!(&plan, Plan::Join(..)),
            "non-monotone map after append: merge join must not be planned ({plan:?})"
        );
    }

    #[test]
    fn absent_constant_estimates_zero_and_goes_first() {
        let ds = build_dataset();
        let graphs = vec!["http://g".to_string()];
        let mut opt = Optimizer::new(&ds, &graphs);
        let mut patterns = vec![
            TriplePattern::new(var("e"), konst("http://x/label"), var("l")),
            TriplePattern::new(var("e"), konst("http://x/missing"), var("m")),
        ];
        let graph = GraphRef::Default;
        opt.reorder_bgp(&mut patterns, &graph);
        assert_eq!(patterns[0].predicate, konst("http://x/missing"));
    }
}
