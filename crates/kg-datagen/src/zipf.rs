//! Zipf-distributed sampling for skewed degree distributions.

use rand::Rng;

/// A precomputed Zipf distribution over ranks `0..n`.
///
/// Rank `k` has probability proportional to `1/(k+1)^s`. Knowledge-graph
/// degree distributions (movies per actor, papers per author) are heavily
/// skewed; `s ≈ 1` reproduces the long tail the paper's "prolific actor"
/// thresholds rely on.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no ranks (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 5);
        assert!(counts[0] > counts[500] * 50);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "counts {counts:?}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
