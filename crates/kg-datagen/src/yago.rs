//! YAGO-like synthetic graph: overlaps with the DBpedia-like graph on a
//! subset of actor URIs (RDF's global identifiers make cross-graph joins
//! work by construction — the property-graph comparison in the paper's
//! Section 2). Used by the Q4/Q11 cross-graph queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::vocab::rdf;
use rdf_model::{Graph, Term, Triple};

use crate::vocab::{dbp, yago};

/// Configuration for the YAGO-like generator.
#[derive(Debug, Clone)]
pub struct YagoConfig {
    /// Number of DBpedia actors that also appear in YAGO (by URI).
    pub shared_actors: usize,
    /// Total DBpedia actor population (shared actors are drawn from
    /// `0..dbpedia_actors`).
    pub dbpedia_actors: usize,
    /// YAGO-only actors.
    pub native_actors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            shared_actors: 2_000,
            dbpedia_actors: 10_000,
            native_actors: 5_000,
            seed: 11,
        }
    }
}

impl YagoConfig {
    /// Config matched to a DBpedia config of the given scale.
    pub fn for_dbpedia_scale(scale: usize) -> Self {
        YagoConfig {
            shared_actors: scale / 5,
            dbpedia_actors: scale,
            native_actors: scale / 2,
            ..Default::default()
        }
    }
}

/// Generate the YAGO-like graph.
pub fn generate_yago(config: &YagoConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();
    let type_p = Term::iri(rdf::TYPE);
    let actor_class = Term::iri(format!("{}Actor", yago::RES));
    let acted_in = Term::iri(format!("{}actedIn", yago::RES));
    let citizen_of = Term::iri(format!("{}isCitizenOf", yago::RES));
    let usa = Term::iri(format!("{}United_States", yago::RES));

    // Shared actors: same URIs as the DBpedia graph's actors.
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < config.shared_actors.min(config.dbpedia_actors) {
        chosen.insert(rng.gen_range(0..config.dbpedia_actors));
    }
    for a in chosen {
        let actor = Term::iri(format!("{}Actor_{a}", dbp::RES));
        g.insert(&Triple::new(
            actor.clone(),
            type_p.clone(),
            actor_class.clone(),
        ));
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            let m = rng.gen_range(0..config.dbpedia_actors * 2);
            g.insert(&Triple::new(
                actor.clone(),
                acted_in.clone(),
                Term::iri(format!("{}Movie_{m}", yago::RES)),
            ));
        }
        if rng.gen_bool(0.3) {
            g.insert(&Triple::new(actor, citizen_of.clone(), usa.clone()));
        }
    }
    // Native YAGO actors (no DBpedia counterpart).
    for a in 0..config.native_actors {
        let actor = Term::iri(format!("{}YActor_{a}", yago::RES));
        g.insert(&Triple::new(
            actor.clone(),
            type_p.clone(),
            actor_class.clone(),
        ));
        if rng.gen_bool(0.3) {
            g.insert(&Triple::new(actor, citizen_of.clone(), usa.clone()));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_uris_match_dbpedia_namespace() {
        let g = generate_yago(&YagoConfig {
            shared_actors: 50,
            dbpedia_actors: 100,
            native_actors: 20,
            seed: 1,
        });
        let actor_class = Term::iri(format!("{}Actor", yago::RES));
        let class_id = g.term_id(&actor_class).unwrap();
        let typed = g.count_pattern(None, None, Some(class_id));
        assert_eq!(typed, 70); // 50 shared + 20 native
                               // At least one shared actor keeps its DBpedia URI.
        let shared = g
            .iter_triples()
            .filter(|t| t.subject.str_value().starts_with(dbp::RES))
            .count();
        assert!(shared > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate_yago(&YagoConfig::default());
        let b = generate_yago(&YagoConfig::default());
        assert_eq!(a.len(), b.len());
    }
}
