//! DBLP-like synthetic bibliography: dense, structured, with conference
//! series and publication years — the substrate for the paper's topic
//! modeling and knowledge-graph-embedding case studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::vocab::{rdf, xsd};
use rdf_model::{Graph, Literal, Term, Triple};

use crate::names;
use crate::vocab::dblp;
use crate::zipf::Zipf;

/// Configuration for the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of papers.
    pub papers: usize,
    /// Number of authors.
    pub authors: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zipf exponent for author productivity.
    pub skew: f64,
    /// Publication year range (inclusive).
    pub year_range: (i64, i64),
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            papers: 20_000,
            authors: 4_000,
            seed: 7,
            skew: 0.9,
            year_range: (1990, 2019),
        }
    }
}

impl DblpConfig {
    /// A small config for unit tests.
    pub fn tiny() -> Self {
        DblpConfig {
            papers: 600,
            authors: 120,
            ..Default::default()
        }
    }

    /// Scale both papers and authors by a factor of the default ratio.
    pub fn with_papers(papers: usize) -> Self {
        DblpConfig {
            papers,
            authors: (papers / 5).max(10),
            ..Default::default()
        }
    }
}

const CONFERENCES: &[&str] = &[
    "vldb", "sigmod", "icde", "edbt", "kdd", "www", "aaai", "nips", "icml", "acl",
];

/// Generate the DBLP-like graph.
pub fn generate_dblp(config: &DblpConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();

    let type_p = Term::iri(rdf::TYPE);
    let in_proceedings = Term::iri(format!("{}InProceedings", dblp::SWRC));
    let creator = Term::iri(format!("{}creator", dblp::DC));
    let issued = Term::iri(format!("{}issued", dblp::DCTERM));
    let series = Term::iri(format!("{}series", dblp::SWRC));
    let title_p = Term::iri(format!("{}title", dblp::DC));

    let conferences: Vec<Term> = CONFERENCES
        .iter()
        .map(|c| Term::iri(format!("{}{c}", dblp::CONF)))
        .collect();
    let authors: Vec<Term> = (0..config.authors)
        .map(|i| Term::iri(format!("{}author_{i}", dblp::AUTHOR)))
        .collect();
    let author_zipf = Zipf::new(config.authors, config.skew);
    // Productive database authors publish disproportionately at VLDB and
    // SIGMOD; model a home-venue bias so "thought leader" thresholds find a
    // real head.
    let home_conf: Vec<usize> = (0..config.authors)
        .map(|_| rng.gen_range(0..conferences.len()))
        .collect();

    for p in 0..config.papers {
        let paper = Term::iri(format!("{}paper_{p}", dblp::PAPER));
        g.insert(&Triple::new(
            paper.clone(),
            type_p.clone(),
            in_proceedings.clone(),
        ));

        let n_authors = rng.gen_range(1..=4);
        let first_author = author_zipf.sample(&mut rng);
        for k in 0..n_authors {
            let a = if k == 0 {
                first_author
            } else {
                author_zipf.sample(&mut rng)
            };
            g.insert(&Triple::new(
                paper.clone(),
                creator.clone(),
                authors[a].clone(),
            ));
        }

        // 70% at the first author's home venue, else anywhere.
        let conf = if rng.gen_bool(0.7) {
            home_conf[first_author]
        } else {
            rng.gen_range(0..conferences.len())
        };
        g.insert(&Triple::new(
            paper.clone(),
            series.clone(),
            conferences[conf].clone(),
        ));

        let (lo, hi) = config.year_range;
        let year = rng.gen_range(lo..=hi);
        let month = rng.gen_range(1..=12);
        g.insert(&Triple::new(
            paper.clone(),
            issued.clone(),
            Term::Literal(Literal::typed(
                format!("{year}-{month:02}-01"),
                xsd::DATE.to_string(),
            )),
        ));

        let words = rng.gen_range(4..9);
        let t = names::title(&mut rng, words);
        g.insert(&Triple::new(paper, title_p.clone(), Term::string(t)));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_dense_and_complete() {
        let g = generate_dblp(&DblpConfig::tiny());
        // Every paper has type, ≥1 creator, series, issued, title.
        let type_id = g.term_id(&Term::iri(rdf::TYPE)).unwrap();
        let papers = g.count_pattern(None, Some(type_id), None);
        assert_eq!(papers, 600);
        for pred in ["creator", "title"] {
            let id = g
                .term_id(&Term::iri(format!("{}{pred}", dblp::DC)))
                .unwrap();
            assert!(g.count_pattern(None, Some(id), None) >= 600, "{pred}");
        }
    }

    #[test]
    fn vldb_and_sigmod_exist() {
        let g = generate_dblp(&DblpConfig::tiny());
        for conf in ["vldb", "sigmod"] {
            let t = Term::iri(format!("{}{conf}", dblp::CONF));
            let id = g.term_id(&t).unwrap_or_else(|| panic!("{conf} missing"));
            assert!(g.count_pattern(None, None, Some(id)) > 0);
        }
    }

    #[test]
    fn years_within_range() {
        let cfg = DblpConfig {
            year_range: (2000, 2005),
            ..DblpConfig::tiny()
        };
        let g = generate_dblp(&cfg);
        let issued = g
            .term_id(&Term::iri(format!("{}issued", dblp::DCTERM)))
            .unwrap();
        for (_, _, o) in g.match_pattern(None, Some(issued), None) {
            let lit = g.term(o).as_literal().unwrap();
            let year: i64 = lit.lexical[..4].parse().unwrap();
            assert!((2000..=2005).contains(&year), "{}", lit.lexical);
        }
    }

    #[test]
    fn author_productivity_skewed() {
        let g = generate_dblp(&DblpConfig::tiny());
        let creator = g
            .term_id(&Term::iri(format!("{}creator", dblp::DC)))
            .unwrap();
        let mut counts = std::collections::HashMap::new();
        for (_, _, o) in g.match_pattern(None, Some(creator), None) {
            *counts.entry(o).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let mean = counts.values().sum::<usize>() / counts.len();
        assert!(max > mean * 3, "max {max}, mean {mean}");
    }
}
