//! Deterministic pseudo-name generation for entities and titles.

use rand::Rng;

const SYLLABLES: &[&str] = &[
    "an", "bel", "cor", "dan", "el", "fir", "gal", "har", "il", "jor", "kel", "lor", "mar", "nor",
    "ol", "per", "quin", "ros", "sal", "tor", "ul", "ver", "wil", "xan", "yor", "zel",
];

const TITLE_WORDS: &[&str] = &[
    "query",
    "graph",
    "learning",
    "scalable",
    "distributed",
    "efficient",
    "adaptive",
    "streaming",
    "transactional",
    "indexing",
    "join",
    "optimization",
    "knowledge",
    "embedding",
    "relational",
    "parallel",
    "storage",
    "processing",
    "analytics",
    "inference",
    "neural",
    "semantic",
    "caching",
    "approximate",
    "incremental",
];

/// A capitalized pseudo-name of 2–3 syllables.
pub fn person_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(2..=3);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => s,
    }
}

/// A paper/movie title of `words` words.
pub fn title<R: Rng + ?Sized>(rng: &mut R, words: usize) -> String {
    let mut parts = Vec::with_capacity(words);
    for _ in 0..words {
        parts.push(TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())]);
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_capitalized_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let n = person_name(&mut rng);
            assert!(!n.is_empty());
            assert!(n.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn titles_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = title(&mut rng, 5);
        assert_eq!(t.split(' ').count(), 5);
    }
}
