//! Vocabulary IRIs for the synthetic graphs (mirroring the namespaces used
//! in the paper's queries).

/// DBpedia-like namespaces.
pub mod dbp {
    /// Graph URI.
    pub const GRAPH: &str = "http://dbpedia.org";
    /// `dbpp:` property namespace.
    pub const PROP: &str = "http://dbpedia.org/property/";
    /// `dbpo:` ontology namespace.
    pub const ONTO: &str = "http://dbpedia.org/ontology/";
    /// `dbpr:` resource namespace.
    pub const RES: &str = "http://dbpedia.org/resource/";
    /// `dcterms:` namespace.
    pub const DCTERMS: &str = "http://purl.org/dc/terms/";
}

/// DBLP-like namespaces.
pub mod dblp {
    /// Graph URI.
    pub const GRAPH: &str = "http://dblp.l3s.de";
    /// `swrc:` ontology.
    pub const SWRC: &str = "http://swrc.ontoware.org/ontology#";
    /// `dc:` elements.
    pub const DC: &str = "http://purl.org/dc/elements/1.1/";
    /// `dcterm:` terms.
    pub const DCTERM: &str = "http://purl.org/dc/terms/";
    /// Conference resources.
    pub const CONF: &str = "http://dblp.l3s.de/d2r/resource/conferences/";
    /// Author resources.
    pub const AUTHOR: &str = "http://dblp.l3s.de/d2r/resource/authors/";
    /// Paper resources.
    pub const PAPER: &str = "http://dblp.l3s.de/d2r/resource/publications/";
}

/// YAGO-like namespaces.
pub mod yago {
    /// Graph URI.
    pub const GRAPH: &str = "http://yago-knowledge.org";
    /// Resource namespace.
    pub const RES: &str = "http://yago-knowledge.org/resource/";
}
