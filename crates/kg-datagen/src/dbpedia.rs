//! DBpedia-like synthetic graph: a heterogeneous, multi-topic knowledge
//! graph with skewed degree distributions and sparse optional predicates.
//!
//! Topics generated (matching what the paper's case study 1 and the Q1–Q15
//! synthetic workload touch):
//!
//! - **Films**: `dbpp:starring` (Zipf-skewed actors), labels, subjects,
//!   production country, sparse `dbpo:genre`, director/producer/language/
//!   studio/runtime/story for the film queries.
//! - **Actors**: birth place (a configurable fraction American), labels,
//!   sparse `dbpp:academyAward`.
//! - **Basketball**: players with teams/nationality/birth data; teams with
//!   sparse sponsor/president and names (Q1, Q2, Q3, Q6, Q7, Q12).
//! - **Athletes**: a superclass population for Q10.
//! - **Books**: authors with birth place/country/sparse education; books
//!   with title/subject and sparse country/publisher (Q15).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::vocab::{rdf, rdfs, xsd};
use rdf_model::{Graph, Literal, Term, Triple};

use crate::names;
use crate::vocab::dbp;
use crate::zipf::Zipf;

/// Configuration for the DBpedia-like generator.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// Master size knob: the number of film actors; all other entity
    /// counts are fixed ratios of it (movies 2×, players ×0.1, ...).
    pub scale: usize,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
    /// Probability a movie has a `dbpo:genre` (the paper's optional
    /// predicate).
    pub genre_probability: f64,
    /// Probability an actor holds an academy award.
    pub award_probability: f64,
    /// Fraction of actors born in the United States.
    pub american_fraction: f64,
    /// Zipf exponent for actor filmography skew.
    pub skew: f64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            scale: 10_000,
            seed: 42,
            genre_probability: 0.4,
            award_probability: 0.05,
            american_fraction: 0.3,
            skew: 1.0,
        }
    }
}

impl DbpediaConfig {
    /// A small config for unit tests.
    pub fn tiny() -> Self {
        DbpediaConfig {
            scale: 300,
            ..Default::default()
        }
    }

    /// Scale with all ratios kept (convenience for sweeps).
    pub fn with_scale(scale: usize) -> Self {
        DbpediaConfig {
            scale,
            ..Default::default()
        }
    }
}

const COUNTRY_NAMES: &[&str] = &[
    "United_States",
    "United_Kingdom",
    "India",
    "France",
    "Germany",
    "Italy",
    "Spain",
    "Canada",
    "Australia",
    "Japan",
    "Brazil",
    "Mexico",
    "Egypt",
    "Nigeria",
    "Sweden",
    "Norway",
    "Poland",
    "Greece",
    "Turkey",
    "Argentina",
];

const GENRES: &[&str] = &[
    "Film_score",
    "Soundtrack",
    "Rock_music",
    "House_music",
    "Dubstep",
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Documentary",
];

const LANGUAGES: &[&str] = &[
    "English_language",
    "Hindi_language",
    "French_language",
    "Spanish_language",
    "German_language",
    "Japanese_language",
];

struct Ctx {
    rng: StdRng,
    graph: Graph,
}

impl Ctx {
    fn add(&mut self, s: Term, p: &str, o: Term) {
        self.graph.insert(&Triple::new(s, Term::iri(p), o));
    }

    fn res(&self, name: &str) -> Term {
        Term::iri(format!("{}{name}", dbp::RES))
    }
}

fn prop(name: &str) -> String {
    format!("{}{name}", dbp::PROP)
}

fn onto(name: &str) -> String {
    format!("{}{name}", dbp::ONTO)
}

/// Generate the DBpedia-like graph.
pub fn generate_dbpedia(config: &DbpediaConfig) -> Graph {
    let mut ctx = Ctx {
        rng: StdRng::seed_from_u64(config.seed),
        graph: Graph::new(),
    };
    let starring = prop("starring");
    let birth_place = prop("birthPlace");
    let academy_award = prop("academyAward");
    let country_p = prop("country");
    let subject_p = format!("{}subject", dbp::DCTERMS);
    let genre_p = onto("genre");
    let type_p = rdf::TYPE.to_string();
    let label_p = rdfs::LABEL.to_string();

    let n_actors = config.scale.max(10);
    let n_movies = n_actors * 2;
    let n_subjects = (n_actors / 50).max(5);
    let n_studios = (n_actors / 200).max(5);
    let n_players = (n_actors / 10).max(10);
    let n_teams = (n_players / 20).max(3);
    let n_athletes_extra = n_players / 2;
    let n_authors = (n_actors / 40).max(5);
    let n_books = n_authors * 4;

    let countries: Vec<Term> = (0..COUNTRY_NAMES.len())
        .map(|i| ctx.res(COUNTRY_NAMES[i]))
        .collect();
    let usa = countries[0].clone();

    // ---- actors -------------------------------------------------------
    for a in 0..n_actors {
        let actor = ctx.res(&format!("Actor_{a}"));
        let place = if ctx.rng.gen_bool(config.american_fraction) {
            usa.clone()
        } else {
            countries[ctx.rng.gen_range(1..countries.len())].clone()
        };
        ctx.add(actor.clone(), &birth_place, place);
        let name = names::person_name(&mut ctx.rng);
        ctx.add(actor.clone(), &label_p, Term::string(name));
        if ctx.rng.gen_bool(config.award_probability) {
            let k = ctx.rng.gen_range(0..8);
            let award = ctx.res(&format!("Academy_Award_{k}"));
            ctx.add(actor.clone(), &academy_award, award);
        }
        ctx.add(actor, &type_p, ctx.res("Actor"));
    }

    // ---- movies ---------------------------------------------------------
    let actor_zipf = Zipf::new(n_actors, config.skew);
    for m in 0..n_movies {
        let movie = ctx.res(&format!("Movie_{m}"));
        ctx.add(movie.clone(), &type_p, ctx.res("Film"));
        let cast = ctx.rng.gen_range(1..=4);
        for _ in 0..cast {
            let a = actor_zipf.sample(&mut ctx.rng);
            ctx.add(movie.clone(), &starring, ctx.res(&format!("Actor_{a}")));
        }
        let title = names::title(&mut ctx.rng, 3);
        ctx.add(movie.clone(), &label_p, Term::string(title));
        let subj = ctx.rng.gen_range(0..n_subjects);
        ctx.add(
            movie.clone(),
            &subject_p,
            ctx.res(&format!("Category_{subj}")),
        );
        let c = ctx.rng.gen_range(0..countries.len());
        ctx.add(movie.clone(), &country_p, countries[c].clone());
        if ctx.rng.gen_bool(config.genre_probability) {
            let g = GENRES[ctx.rng.gen_range(0..GENRES.len())];
            ctx.add(movie.clone(), &genre_p, ctx.res(g));
        }
        // Film-query attributes (Q5, Q8, Q9, Q13, Q14).
        let director = ctx.rng.gen_range(0..n_actors);
        ctx.add(
            movie.clone(),
            &onto("director"),
            ctx.res(&format!("Actor_{director}")),
        );
        if ctx.rng.gen_bool(0.8) {
            let producer = ctx.rng.gen_range(0..n_actors);
            ctx.add(
                movie.clone(),
                &prop("producer"),
                ctx.res(&format!("Actor_{producer}")),
            );
        }
        let lang = LANGUAGES[ctx.rng.gen_range(0..LANGUAGES.len())];
        ctx.add(movie.clone(), &prop("language"), ctx.res(lang));
        let studio = if ctx.rng.gen_bool(0.05) {
            ctx.res("Eskay_Movies")
        } else {
            let s = ctx.rng.gen_range(0..n_studios);
            ctx.res(&format!("Studio_{s}"))
        };
        ctx.add(movie.clone(), &prop("studio"), studio);
        let runtime = ctx.rng.gen_range(60..240);
        ctx.add(
            movie.clone(),
            &prop("runtime"),
            Term::Literal(Literal::integer(runtime)),
        );
        if ctx.rng.gen_bool(0.5) {
            let story = ctx.rng.gen_range(0..n_actors);
            ctx.add(
                movie.clone(),
                &prop("story"),
                ctx.res(&format!("Actor_{story}")),
            );
        }
        if ctx.rng.gen_bool(0.9) {
            let t = names::title(&mut ctx.rng, 2);
            ctx.add(movie.clone(), &prop("title"), Term::string(t));
        }
    }

    // ---- basketball ------------------------------------------------------
    for t in 0..n_teams {
        let team = ctx.res(&format!("Team_{t}"));
        ctx.add(team.clone(), &type_p, ctx.res("BasketballTeam"));
        ctx.add(
            team.clone(),
            &prop("name"),
            Term::string(format!("Team {t}")),
        );
        // Team 0 always carries both sparse attributes so queries joining on
        // sponsor ∧ president have a witness at every scale and seed.
        if t == 0 || ctx.rng.gen_bool(0.7) {
            let s = ctx.rng.gen_range(0..n_studios.max(3));
            ctx.add(
                team.clone(),
                &prop("sponsor"),
                ctx.res(&format!("Sponsor_{s}")),
            );
        }
        if t == 0 || ctx.rng.gen_bool(0.6) {
            let p = names::person_name(&mut ctx.rng);
            ctx.add(team.clone(), &prop("president"), Term::string(p));
        }
    }
    for p in 0..n_players {
        let player = ctx.res(&format!("Player_{p}"));
        ctx.add(player.clone(), &type_p, ctx.res("BasketballPlayer"));
        ctx.add(player.clone(), &type_p, ctx.res("Athlete"));
        let team = ctx.rng.gen_range(0..n_teams);
        ctx.add(
            player.clone(),
            &prop("team"),
            ctx.res(&format!("Team_{team}")),
        );
        let c = ctx.rng.gen_range(0..countries.len());
        ctx.add(player.clone(), &prop("nationality"), countries[c].clone());
        let bp = ctx.rng.gen_range(0..countries.len());
        ctx.add(player.clone(), &birth_place, countries[bp].clone());
        let year = ctx.rng.gen_range(1960..2003);
        ctx.add(
            player.clone(),
            &prop("birthDate"),
            Term::Literal(Literal::typed(
                format!("{year}-01-15"),
                xsd::DATE.to_string(),
            )),
        );
    }
    for a in 0..n_athletes_extra {
        let athlete = ctx.res(&format!("Athlete_{a}"));
        ctx.add(athlete.clone(), &type_p, ctx.res("Athlete"));
        let bp = ctx.rng.gen_range(0..countries.len());
        ctx.add(athlete.clone(), &birth_place, countries[bp].clone());
    }

    // ---- books ---------------------------------------------------------
    for a in 0..n_authors {
        let author = ctx.res(&format!("Author_{a}"));
        ctx.add(author.clone(), &type_p, ctx.res("Writer"));
        // Author 0 is the Zipf head (most books) and always American, so
        // "prolific American author" queries have a witness at every scale
        // and seed.
        let place = if a == 0 || ctx.rng.gen_bool(config.american_fraction) {
            usa.clone()
        } else {
            countries[ctx.rng.gen_range(1..countries.len())].clone()
        };
        ctx.add(author.clone(), &birth_place, place.clone());
        ctx.add(author.clone(), &prop("country"), place);
        if ctx.rng.gen_bool(0.5) {
            let e = ctx.rng.gen_range(0..10);
            ctx.add(
                author.clone(),
                &prop("education"),
                ctx.res(&format!("University_{e}")),
            );
        }
    }
    let author_zipf = Zipf::new(n_authors, config.skew);
    for b in 0..n_books {
        let book = ctx.res(&format!("Book_{b}"));
        ctx.add(book.clone(), &type_p, ctx.res("Book"));
        let a = author_zipf.sample(&mut ctx.rng);
        ctx.add(
            book.clone(),
            &onto("author"),
            ctx.res(&format!("Author_{a}")),
        );
        let t = names::title(&mut ctx.rng, 4);
        ctx.add(book.clone(), &prop("title"), Term::string(t));
        let subj = ctx.rng.gen_range(0..n_subjects);
        ctx.add(
            book.clone(),
            &subject_p,
            ctx.res(&format!("Category_{subj}")),
        );
        if ctx.rng.gen_bool(0.6) {
            let c = ctx.rng.gen_range(0..countries.len());
            ctx.add(book.clone(), &country_p, countries[c].clone());
        }
        if ctx.rng.gen_bool(0.7) {
            let p = ctx.rng.gen_range(0..12);
            ctx.add(
                book.clone(),
                &prop("publisher"),
                ctx.res(&format!("Publisher_{p}")),
            );
        }
    }

    ctx.graph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        generate_dbpedia(&DbpediaConfig::tiny())
    }

    #[test]
    fn deterministic() {
        let a = generate_dbpedia(&DbpediaConfig::tiny());
        let b = generate_dbpedia(&DbpediaConfig::tiny());
        assert_eq!(a.len(), b.len());
        let ta: Vec<_> = a.iter_triples().collect();
        let tb: Vec<_> = b.iter_triples().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn has_all_topic_predicates() {
        let g = tiny();
        for p in [
            "http://dbpedia.org/property/starring",
            "http://dbpedia.org/property/birthPlace",
            "http://dbpedia.org/property/team",
            "http://dbpedia.org/property/sponsor",
            "http://dbpedia.org/ontology/genre",
            "http://dbpedia.org/ontology/author",
            "http://dbpedia.org/property/publisher",
        ] {
            let id = g
                .term_id(&Term::iri(p))
                .unwrap_or_else(|| panic!("missing {p}"));
            assert!(g.count_pattern(None, Some(id), None) > 0, "{p}");
        }
    }

    #[test]
    fn genre_is_sparse() {
        let g = tiny();
        let genre = g
            .term_id(&Term::iri("http://dbpedia.org/ontology/genre"))
            .unwrap();
        let label = g.term_id(&Term::iri(rdfs::LABEL)).unwrap();
        let genres = g.count_pattern(None, Some(genre), None);
        let labels = g.count_pattern(None, Some(label), None);
        assert!(genres * 2 < labels, "genre should be optional-sparse");
    }

    #[test]
    fn starring_is_skewed() {
        let g = generate_dbpedia(&DbpediaConfig {
            scale: 1000,
            ..Default::default()
        });
        let starring = g
            .term_id(&Term::iri("http://dbpedia.org/property/starring"))
            .unwrap();
        // Count movies per actor; the head actor should dominate the median.
        let mut counts = std::collections::HashMap::new();
        for (_, _, o) in g.match_pattern(None, Some(starring), None) {
            *counts.entry(o).or_insert(0usize) += 1;
        }
        let mut values: Vec<usize> = counts.values().copied().collect();
        values.sort_unstable();
        let max = *values.last().unwrap();
        let median = values[values.len() / 2];
        assert!(max >= median * 10, "max {max} median {median}");
    }

    #[test]
    fn scale_grows_graph() {
        let small = generate_dbpedia(&DbpediaConfig::with_scale(300)).len();
        let large = generate_dbpedia(&DbpediaConfig::with_scale(900)).len();
        assert!(large > small * 2, "{small} -> {large}");
    }
}
