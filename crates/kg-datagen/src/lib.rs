//! Synthetic knowledge-graph generators.
//!
//! The paper evaluates on DBpedia (1B triples), DBLP (88M), and YAGO3
//! (1.6B) — datasets we substitute with structurally faithful synthetic
//! graphs at configurable scale (see DESIGN.md). The generators reproduce
//! the properties the experiments exercise:
//!
//! - **Heterogeneity** ([`dbpedia`]): one graph with several mixed topics —
//!   films, basketball players/teams, athletes, books — so topic-focused
//!   extraction is non-trivial.
//! - **Skew**: actor/author productivity follows a Zipf distribution
//!   ([`zipf`]), so "prolific actor" thresholds select a small head.
//! - **Sparsity / optional predicates**: genre, awards, publishers, etc.
//!   exist only for a fraction of entities, exercising `OPTIONAL`.
//! - **Dense structured bibliography** ([`dblp`]): papers, authors,
//!   conferences, years.
//! - **Cross-graph overlap** ([`yago`]): a second graph sharing a subset of
//!   DBpedia's actors by URI, for the cross-graph join queries.
//!
//! All generators are deterministic given a seed.

pub mod dblp;
pub mod dbpedia;
pub mod names;
pub mod vocab;
pub mod yago;
pub mod zipf;

pub use dblp::{generate_dblp, DblpConfig};
pub use dbpedia::{generate_dbpedia, DbpediaConfig};
pub use yago::{generate_yago, YagoConfig};
